//! Offline shim of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the only shape this workspace
//! derives on: non-generic structs with named fields. The expansion targets
//! the `serde` shim's single-method trait, so no `syn`/`quote` dependency is
//! needed — the struct is parsed with a small token walk.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (shim): serializes each named field in
/// declaration order into a `serde::json::Value::Object`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Locate `struct <Name> { ... }`, skipping attributes and visibility.
    let mut name = None;
    let mut body = None;
    let mut iter = tokens.iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = tt {
            if id.to_string() == "struct" {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = Some(n.to_string());
                }
                for rest in iter.by_ref() {
                    if let TokenTree::Group(g) = rest {
                        if g.delimiter() == Delimiter::Brace {
                            body = Some(g.stream());
                            break;
                        }
                    }
                }
                break;
            }
        }
    }
    let (name, body) = match (name, body) {
        (Some(n), Some(b)) => (n, b),
        _ => {
            return "compile_error!(\"serde shim: #[derive(Serialize)] supports only \
                    named-field structs\");"
                .parse()
                .unwrap()
        }
    };

    // Field names: the identifier directly before each top-level `:`,
    // honouring `,` as the field separator and skipping `#[...]` attributes.
    let mut fields = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut seen_colon_in_field = false;
    for tt in body {
        match tt {
            TokenTree::Ident(id) if !seen_colon_in_field => {
                last_ident = Some(id.to_string());
            }
            TokenTree::Punct(p) if p.as_char() == ':' && !seen_colon_in_field => {
                if let Some(f) = last_ident.take() {
                    fields.push(f);
                }
                seen_colon_in_field = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                seen_colon_in_field = false;
                last_ident = None;
            }
            _ => {}
        }
    }

    let pushes: String = fields
        .iter()
        .map(|f| {
            format!(
                "fields.push((\"{f}\".to_string(), \
                 serde::Serialize::to_json_value(&self.{f})));"
            )
        })
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> serde::json::Value {{\n\
                 let mut fields: Vec<(String, serde::json::Value)> = Vec::new();\n\
                 {pushes}\n\
                 serde::json::Value::Object(fields)\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
