//! Offline shim for `serde`'s `Serialize` half.
//!
//! The real serde is a visitor framework; this workspace only ever
//! serializes plain record structs to JSON, so the shim collapses the
//! design to one trait producing a [`json::Value`] tree. The derive macro
//! (`#[derive(Serialize)]`, re-exported from the sibling `serde_derive`
//! shim) emits field-by-field `Value::Object` construction. `serde_json`
//! renders/parses the tree.

// Let the derive's `serde::`-prefixed expansion resolve inside this crate
// too (the in-crate tests derive on local structs).
extern crate self as serde;

pub use serde_derive::Serialize;

/// Minimal JSON value tree shared by the `serde` and `serde_json` shims.
pub mod json {
    /// A JSON document node. Object fields keep insertion order so emitted
    /// documents are deterministic.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Member lookup on objects (`None` for other node kinds).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }

        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Number(n)
                    if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
                {
                    Some(*n as i64)
                }
                _ => None,
            }
        }

        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }
    }
}

use json::Value;

/// Conversion into the JSON value tree (stand-in for `serde::Serialize`).
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(1u64.to_json_value(), Value::Number(1.0));
        assert_eq!("x".to_json_value(), Value::String("x".into()));
        assert_eq!(
            vec![1u8, 2].to_json_value(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
        assert_eq!(None::<u8>.to_json_value(), Value::Null);
        assert_eq!(
            (1u8, "a".to_string()).to_json_value(),
            Value::Array(vec![Value::Number(1.0), Value::String("a".into())])
        );
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("k".into(), Value::Number(3.0))]);
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Number(1.5).as_u64(), None);
        assert_eq!(Value::Number(1.5).as_f64(), Some(1.5));
    }

    #[test]
    fn derive_emits_object() {
        #[derive(Serialize)]
        struct Rec {
            name: String,
            n: u64,
            xs: Vec<f64>,
        }
        let v = Rec {
            name: "a".into(),
            n: 7,
            xs: vec![0.5],
        }
        .to_json_value();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("a"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(
            v.get("xs").and_then(Value::as_array).map(|a| a.len()),
            Some(1)
        );
    }
}
