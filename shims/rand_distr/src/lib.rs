//! Offline shim for the `rand_distr` crate: `Normal` and `LogNormal`
//! sampled via Box–Muller, behind the upstream `Distribution` trait shape.

use rand::{Rng, RngCore};

/// Error building a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// Subset of `rand_distr::Distribution`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Gaussian distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error);
        }
        Ok(Self { mean, std_dev })
    }
}

fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; u1 nudged away from zero so ln() stays finite.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(Error);
        }
        Ok(Self { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{SeedableRng, StdRng};

    #[test]
    fn normal_moments() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(43);
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "log-normal must be right-skewed");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
    }
}
