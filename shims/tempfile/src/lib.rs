//! Offline shim of `tempfile`: just `tempdir()`/`TempDir`, which is all the
//! workspace's tests use. Directories are created under the system temp dir
//! and removed on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{env, fs, io, process};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory deleted (recursively) when the handle drops.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consume without deleting.
    pub fn into_path(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            let _ = fs::remove_dir_all(&self.path);
        }
    }
}

/// Create a fresh uniquely-named temporary directory.
pub fn tempdir() -> io::Result<TempDir> {
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let path = env::temp_dir().join(format!("tmpshim-{}-{id}", process::id()));
    fs::create_dir_all(&path)?;
    Ok(TempDir { path })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let kept_path;
        {
            let d = tempdir().unwrap();
            kept_path = d.path().to_path_buf();
            fs::write(d.path().join("f"), b"x").unwrap();
            assert!(kept_path.exists());
        }
        assert!(!kept_path.exists(), "dropped TempDir must be removed");
    }

    #[test]
    fn distinct_paths() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
