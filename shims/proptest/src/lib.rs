//! Offline shim of `proptest`.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro (with `#![proptest_config(...)]`), range and `any::<T>()`
//! strategies, tuples, `prop_map`, `prop_oneof!`, `prop::collection::vec`,
//! `proptest::collection::btree_set`, `prop::sample::select`, and the
//! `prop_assert!`/`prop_assert_eq!` macros with `TestCaseError`.
//!
//! Differences from upstream: case generation is seeded deterministically
//! from the test name (stable across runs — good for CI), and failing cases
//! are reported but **not shrunk**.

use std::ops::{Range, RangeInclusive};

// ------------------------------------------------------------------ runtime

pub mod test_runner {
    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Runner configuration (`cases` is the only knob this shim honours).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
        /// Accepted for struct-update compatibility; unused by the shim.
        pub max_shrink_iters: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic RNG driving case generation (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a over the test name: a stable per-test seed.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

pub use test_runner::Config as ProptestConfig;
pub use test_runner::{TestCaseError, TestRng};

// ---------------------------------------------------------------- strategy

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of test-case values. Object-safe; combinators are
    /// `Sized`-gated defaults.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of strategies over one value type (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate(rng);
                }
                pick -= *w as u64;
            }
            self.arms.last().unwrap().1.generate(rng)
        }
    }

    /// Constant strategy (`Just`).
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub use strategy::{BoxedStrategy, Just, Strategy};

// Range strategies.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T` (full domain for integers).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// -------------------------------------------------------------- collection

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::SizeRange;
    use std::collections::BTreeSet;

    /// `Vec<T>` strategy with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `BTreeSet<T>` strategy: distinct elements, size drawn from `size`
    /// (best-effort when the element domain is nearly exhausted).
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::btree_set(elem, len_range)`.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(10) + 100 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// A collection size specification (`usize` range in practice).
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_exclusive - self.lo).max(1) as u64;
        self.lo + rng.below(span) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end().saturating_add(1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

// ------------------------------------------------------------------ sample

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform choice from a fixed set of values.
    pub struct Select<T: Clone>(Vec<T>);

    /// `prop::sample::select(values)`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select() needs at least one value");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// The `prop::` namespace (`use proptest::prelude::*` exposes this).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, ProptestConfig};
}

// ------------------------------------------------------------------ macros

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// The test-defining macro. Each contained `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr)
        $( $(#[$meta:meta])* fn $name:ident(
            $($arg:ident in $strat:expr),+ $(,)?
        ) $body:block )*
    ) => {
        $(
            // The captured metas include the `#[test]` attribute the
            // proptest! convention requires on each contained fn.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let seed = $crate::test_runner::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::seed_from_u64(
                        seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    let result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match result {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {}/{} failed (seed {:#x}): {}",
                                case + 1, config.cases, seed, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in 0.25f64..0.75, b in 1u8..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((1..=3).contains(&b));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0u64..100, any::<u8>()), 1..20),
            pick in prop::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|(k, _)| *k < 100));
            prop_assert!(["a", "b", "c"].contains(&pick));
        }

        #[test]
        fn oneof_and_map(op in prop_oneof![
            3 => (0u64..10).prop_map(|k| ("put", k)),
            1 => (0u64..10).prop_map(|k| ("del", k)),
        ]) {
            prop_assert!(op.0 == "put" || op.0 == "del");
            prop_assert!(op.1 < 10);
        }

        #[test]
        fn btree_set_distinct(s in prop::collection::btree_set(0u64..1000, 1..50)) {
            prop_assert!(!s.is_empty());
            let v: Vec<u64> = s.iter().copied().collect();
            prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::seed_from_u64(9);
        let mut b = crate::test_runner::TestRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn prop_assert_returns_err() {
        fn inner() -> Result<(), crate::TestCaseError> {
            crate::prop_assert!(false, "boom {}", 42);
            Ok(())
        }
        match inner() {
            Err(crate::test_runner::TestCaseError::Fail(m)) => assert_eq!(m, "boom 42"),
            other => panic!("expected failure, got {other:?}"),
        }
    }
}
