//! Offline shim of `serde_json`: renders the `serde` shim's [`Value`] tree
//! as JSON text (`to_string`/`to_string_pretty`) and parses JSON documents
//! back into it (`from_str`).

pub use serde::json::Value;
use serde::Serialize;

/// Serialization / parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------------ emitter

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_value(v: &Value, out: &mut String, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(*n)),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(if pretty { ": " } else { ":" });
                write_value(val, out, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, 0, false);
    Ok(out)
}

/// Human-readable two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, 0, true);
    Ok(out)
}

// ------------------------------------------------------------------- parser

/// Types constructible from a parsed [`Value`] (stand-in for `Deserialize`).
pub trait FromJson: Sized {
    fn from_json(value: Value) -> Result<Self>;
}

impl FromJson for Value {
    fn from_json(value: Value) -> Result<Self> {
        Ok(value)
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: Value) -> Result<Self> {
        match value {
            Value::Array(items) => items.into_iter().map(T::from_json).collect(),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }
}

impl FromJson for f64 {
    fn from_json(value: Value) -> Result<Self> {
        value
            .as_f64()
            .ok_or_else(|| Error("expected number".into()))
    }
}

impl FromJson for u64 {
    fn from_json(value: Value) -> Result<Self> {
        value
            .as_u64()
            .ok_or_else(|| Error("expected unsigned integer".into()))
    }
}

impl FromJson for String {
    fn from_json(value: Value) -> Result<Self> {
        match value {
            Value::String(s) => Ok(s),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(_) => self.parse_number(),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return self.err(&format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Copy the full UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parse a JSON document.
pub fn from_str<T: FromJson>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    T::from_json(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("a\"b".into())),
            ("n".into(), Value::Number(128.0)),
            (
                "xs".into(),
                Value::Array(vec![Value::Number(1.5), Value::Null]),
            ),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"n\": 128"), "{text}");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_typical_report_array() {
        let text = r#"[{"index":"PGM","position_boundary":64,"avg_latency_us":2.25},
                       {"index":"FT","position_boundary":8,"avg_latency_us":1.5}]"#;
        let records: Vec<Value> = from_str(text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].get("index").and_then(Value::as_str), Some("PGM"));
        assert_eq!(
            records[1].get("position_boundary").and_then(Value::as_u64),
            Some(8)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let back: Value = from_str("\"caf\\u00e9 ☕\"").unwrap();
        assert_eq!(back, Value::String("café ☕".into()));
    }
}
