//! Offline shim for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the API subset it uses: `StdRng` (a deterministic xoshiro256**),
//! `SeedableRng::seed_from_u64`, the `Rng` extension trait
//! (`gen`, `gen_range`, `gen_bool`) and `seq::SliceRandom`
//! (`shuffle`, `choose`). Output streams do not bit-match upstream `rand`;
//! every consumer in this workspace only relies on determinism and
//! statistical quality, not on exact values.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::*;

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be degenerate; splitmix cannot produce it
            // for all four words, but guard anyway.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range in gen_range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range in gen_range");
                let span = ((end as $u).wrapping_sub(start as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f32::from_rng(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{uniform_below, RngCore};

    /// Slice helpers (`rand::seq::SliceRandom` subset).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i: u8 = r.gen_range(1u8..=255);
            assert!(i >= 1);
        }
    }

    #[test]
    fn gen_unit_f64() {
        let mut r = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02, "mean off: {sum}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut r = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut r).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "{hits}");
    }
}
