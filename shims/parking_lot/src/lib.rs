//! Offline shim for the `parking_lot` crate: the subset of its API this
//! workspace uses (`Mutex`, `RwLock` with guard-returning, non-poisoning
//! `lock`/`read`/`write`), implemented over `std::sync`. The build
//! environment has no registry access, so the workspace vendors the small
//! API surface it needs instead of the real crate.

use std::sync;

/// Non-poisoning mutex with `parking_lot`'s `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-blocking acquire: `None` when the lock is held elsewhere
    /// (`parking_lot` returns `Option`, not `std`'s `TryLockResult`).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock with `parking_lot`'s API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire a read guard without blocking, or `None` if the lock is
    /// write-held (real `parking_lot`'s `try_read`).
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
