//! Offline shim of `criterion`.
//!
//! Implements the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group` with `sample_size`/`throughput`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a plain
//! wall-clock sampler reporting the median ns/iteration; no statistics
//! engine, plots, or saved baselines. Set `CRITERION_SHIM_SAMPLES` to
//! override the per-benchmark sample count.
//!
//! Two CI affordances mirror real criterion:
//!
//! * **`--test` mode** (`cargo bench --bench x -- --test`): every
//!   benchmark closure runs exactly once, untimed-in-spirit (one sample,
//!   no warm-up) — the smoke mode CI uses so benches can't silently rot.
//! * **JSON output**: when `CRITERION_SHIM_JSON_DIR` is set, each
//!   benchmark group writes `<dir>/<group>.json` with its per-benchmark
//!   median ns and throughput — the artifact CI uploads to track a perf
//!   trajectory across commits.

use std::fmt::Display;
use std::io::Write as _;
use std::time::Instant;

/// Re-export of the standard black box under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<u64>,
    iters_per_sample: u64,
    target_samples: usize,
    warmup: bool,
}

impl Bencher {
    /// Run `f` repeatedly, recording wall time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up pass, then timed samples of `iters_per_sample` calls.
        if self.warmup {
            black_box(f());
        }
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as u64 / self.iters_per_sample.max(1);
            self.samples.push(ns);
        }
    }

    /// Run `f` with an iteration count and record the `Duration` it
    /// reports — criterion's escape hatch for workloads whose real cost is
    /// not wall time alone (here: modeled device time on simulated
    /// storage, which the engine counts on a virtual clock).
    pub fn iter_custom<F: FnMut(u64) -> std::time::Duration>(&mut self, mut f: F) {
        if self.warmup {
            black_box(f(1));
        }
        for _ in 0..self.target_samples {
            let d = f(self.iters_per_sample);
            self.samples
                .push(d.as_nanos() as u64 / self.iters_per_sample.max(1));
        }
    }

    fn median_ns(&mut self) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SHIM_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

/// `cargo bench -- --test`: compile-and-run-once smoke mode.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// One finished benchmark within a group.
struct BenchResult {
    label: String,
    median_ns: u64,
    throughput: Option<Throughput>,
}

/// Minimal JSON string escape (labels are code-controlled identifiers).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Write a group's results to `$CRITERION_SHIM_JSON_DIR/<group>.json`
/// (silently skipped when the variable is unset; a write failure must not
/// fail the bench run).
fn write_group_json(group: &str, results: &[BenchResult]) {
    let Ok(dir) = std::env::var("CRITERION_SHIM_JSON_DIR") else {
        return;
    };
    if dir.is_empty() || std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let safe: String = group
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let mut body = String::new();
    body.push_str(&format!(
        "{{\n  \"group\": \"{}\",\n  \"test_mode\": {},\n  \"benchmarks\": [",
        json_escape(group),
        test_mode(),
    ));
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let (tp_kind, tp_n) = match r.throughput {
            Some(Throughput::Elements(n)) => ("\"elements\"", n),
            Some(Throughput::Bytes(n)) => ("\"bytes\"", n),
            None => ("null", 0),
        };
        body.push_str(&format!(
            "\n    {{\"id\": \"{}\", \"median_ns\": {}, \"throughput_kind\": {}, \"throughput_per_iter\": {}}}",
            json_escape(&r.label),
            r.median_ns,
            tp_kind,
            tp_n,
        ));
    }
    body.push_str("\n  ]\n}\n");
    let path = std::path::Path::new(&dir).join(format!("{safe}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(body.as_bytes());
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: default_samples(),
            throughput: None,
            results: Vec::new(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, mut f: F) {
        run_one(&name.to_string(), default_samples(), None, |b| f(b));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    results: Vec<BenchResult>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion insists on ≥10; the shim just takes what it gets (≥1).
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let r = run_one(&id.to_string(), self.sample_size, self.throughput, |b| f(b));
        self.results.push(r);
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let r = run_one(&id.to_string(), self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self.results.push(r);
    }

    pub fn finish(self) {
        write_group_json(&self.name, &self.results);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    tp: Option<Throughput>,
    mut f: F,
) -> BenchResult {
    // Smoke mode: one sample, no warm-up — the closure runs exactly once.
    let (samples, warmup) = if test_mode() {
        (1, false)
    } else {
        (samples, true)
    };
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        iters_per_sample: 1,
        target_samples: samples,
        warmup,
    };
    f(&mut b);
    let ns = b.median_ns();
    let extra = match tp {
        Some(Throughput::Elements(n)) if ns > 0 => {
            // `ns` is per iteration; one iteration processes `n` elements.
            format!("  ({:.2} Melem/s)", n as f64 * 1e3 / ns as f64)
        }
        Some(Throughput::Bytes(n)) if ns > 0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / (ns as f64 / 1e9) / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    let mode = if test_mode() {
        "  [test mode: 1 iteration]"
    } else {
        ""
    };
    println!("  {label:40} median {ns:>12} ns/iter{extra}{mode}");
    BenchResult {
        label: label.to_string(),
        median_ns: ns,
        throughput: tp,
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut count = 0u64;
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g2");
        g.sample_size(2).throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &21u64, |b, &v| {
            b.iter(|| assert_eq!(v * 2, 42))
        });
        g.finish();
    }
}
