//! Property tests for the core learned-index contract: for every index
//! family, every key distribution and every ε, the predicted position
//! boundary must contain the true position of present keys (and a usable
//! insertion point for absent ones).

use learned_index::{IndexConfig, IndexKind, SegmentIndex};
use lsm_workloads::Dataset;
use proptest::collection::btree_set;
use proptest::prelude::*;

fn sorted_keys() -> impl Strategy<Value = Vec<u64>> {
    btree_set(0u64..1 << 48, 1..600).prop_map(|s| s.into_iter().collect())
}

fn all_kinds() -> impl Strategy<Value = IndexKind> {
    prop::sample::select(IndexKind::ALL.to_vec())
}

fn build(kind: IndexKind, keys: &[u64], eps: usize) -> Box<dyn SegmentIndex> {
    let config = IndexConfig {
        epsilon: eps,
        ..IndexConfig::default()
    };
    kind.build(keys, &config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn present_keys_always_within_bound(
        keys in sorted_keys(),
        kind in all_kinds(),
        eps in 1usize..64,
    ) {
        let idx = build(kind, &keys, eps);
        for (pos, &k) in keys.iter().enumerate() {
            let b = idx.predict(k);
            prop_assert!(
                b.contains(pos),
                "{kind} eps={eps} key={k} pos={pos} bound={b:?}"
            );
        }
    }

    #[test]
    fn absent_keys_bound_covers_insertion_point(
        keys in sorted_keys(),
        kind in all_kinds(),
        eps in 1usize..64,
        probes in prop::collection::vec(0u64..1 << 48, 1..50),
    ) {
        let idx = build(kind, &keys, eps);
        for probe in probes {
            if keys.binary_search(&probe).is_ok() {
                continue;
            }
            let ip = keys.partition_point(|&k| k < probe);
            let b = idx.predict(probe);
            prop_assert!(
                b.lo <= ip && ip <= b.hi,
                "{kind} eps={eps} probe={probe} ip={ip} bound={b:?}"
            );
        }
    }

    #[test]
    fn bound_length_respects_boundary(
        keys in sorted_keys(),
        eps in 1usize..64,
    ) {
        // RMI is excluded: its error is recorded, not configured.
        for kind in [
            IndexKind::FencePointers,
            IndexKind::Plr,
            IndexKind::FitingTree,
            IndexKind::Pgm,
            IndexKind::RadixSpline,
            IndexKind::Plex,
        ] {
            let idx = build(kind, &keys, eps);
            for &k in keys.iter().step_by(7) {
                let b = idx.predict(k);
                // 2ε core + rounding slack (≤ 2 per side across families).
                prop_assert!(
                    b.len() <= 2 * eps + 5,
                    "{kind} eps={eps} bound too wide: {b:?}"
                );
            }
        }
    }

    #[test]
    fn encode_decode_preserves_predictions(
        keys in sorted_keys(),
        kind in all_kinds(),
        eps in 1usize..32,
    ) {
        let idx = build(kind, &keys, eps);
        let back = IndexKind::decode(&idx.encode()).unwrap();
        prop_assert_eq!(back.kind(), kind);
        prop_assert_eq!(back.segment_count(), idx.segment_count());
        prop_assert_eq!(back.key_count(), idx.key_count());
        for &k in keys.iter().step_by(3) {
            prop_assert_eq!(back.predict(k), idx.predict(k), "{} key={}", kind, k);
        }
    }

    #[test]
    fn segmentations_respect_epsilon(
        keys in sorted_keys(),
        eps in 1usize..64,
    ) {
        let greedy = learned_index::cone::segment_keys(&keys, eps);
        prop_assert!(learned_index::cone::max_error(&greedy, &keys) <= eps);

        let spline = learned_index::spline::build_spline(&keys, eps);
        prop_assert!(learned_index::spline::max_error(&spline, &keys) <= eps);

        let opt = learned_index::pgm::optimal_pla(&keys, eps);
        prop_assert!(
            opt.len() <= greedy.len(),
            "optimal ({}) must not exceed greedy ({})",
            opt.len(),
            greedy.len()
        );
    }
}

/// Deterministic sweep over the paper's seven datasets at a reduced scale:
/// every index kind must honour containment on every distribution.
#[test]
fn all_kinds_on_all_datasets() {
    for dataset in Dataset::ALL {
        let keys = dataset.generate(20_000, 0xbeef);
        for kind in IndexKind::ALL {
            for eps in [4usize, 32] {
                let idx = build(kind, &keys, eps);
                for (pos, &k) in keys.iter().enumerate().step_by(97) {
                    let b = idx.predict(k);
                    assert!(
                        b.contains(pos),
                        "{kind} on {dataset} eps={eps}: pos={pos} bound={b:?}"
                    );
                }
            }
        }
    }
}

/// The paper's Figure 6 memory ordering at a fixed boundary: fence pointers
/// must cost the most memory and PGM/RMI must be cheaper than FITing-Tree on
/// learnable data.
#[test]
fn memory_ordering_matches_paper() {
    let keys = Dataset::Wiki.generate(100_000, 7);
    let eps = 16;
    let size = |kind: IndexKind| build(kind, &keys, eps).size_bytes();
    let fp = size(IndexKind::FencePointers);
    let ft = size(IndexKind::FitingTree);
    let pgm = size(IndexKind::Pgm);
    let plr = size(IndexKind::Plr);
    assert!(fp > plr, "fence pointers ({fp}) should exceed PLR ({plr})");
    assert!(fp > pgm, "fence pointers ({fp}) should exceed PGM ({pgm})");
    assert!(ft > pgm, "FITing-Tree ({ft}) should exceed PGM ({pgm})");
}
