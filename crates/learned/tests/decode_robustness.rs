//! Decoder robustness: `IndexKind::decode` consumes bytes read straight off
//! disk, so it must reject arbitrary corruption with an error — never panic,
//! never loop, never allocate absurdly.

use learned_index::{IndexConfig, IndexKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary garbage must produce `Err`, not a panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = IndexKind::decode(&bytes);
    }

    /// Truncating a valid payload at any point must fail cleanly.
    #[test]
    fn truncated_payloads_fail_cleanly(
        cut_fraction in 0.0f64..1.0,
        kind in prop::sample::select(IndexKind::ALL.to_vec()),
    ) {
        let keys: Vec<u64> = (0..500u64).map(|i| i * 7 + 3).collect();
        let idx = kind.build(&keys, &IndexConfig { epsilon: 8, ..Default::default() });
        let full = idx.encode();
        let cut = ((full.len() as f64 * cut_fraction) as usize).min(full.len() - 1);
        prop_assert!(
            IndexKind::decode(&full[..cut]).is_err(),
            "{kind}: truncation at {cut}/{} must fail",
            full.len()
        );
    }

    /// Flipping one byte either fails or still yields a *usable* index
    /// (predictions in range) — silent nonsense is allowed only within the
    /// model parameters, never as a panic or out-of-bounds answer.
    #[test]
    fn single_byte_corruption_is_contained(
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
        kind in prop::sample::select(IndexKind::ALL.to_vec()),
    ) {
        let keys: Vec<u64> = (0..300u64).map(|i| i * 11).collect();
        let idx = kind.build(&keys, &IndexConfig { epsilon: 8, ..Default::default() });
        let mut bytes = idx.encode();
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] ^= xor;
        if let Ok(decoded) = IndexKind::decode(&bytes) {
            for probe in [0u64, 150 * 11, u64::MAX] {
                let b = decoded.predict(probe);
                prop_assert!(b.lo <= b.hi, "{kind}: inverted bound {b:?}");
                // Bounds may be wrong under corruption but must stay within
                // the advertised key count (reads past the data section are
                // the caller's corruption risk, not ours).
                prop_assert!(
                    b.hi <= decoded.key_count().max(keys.len()) + 1,
                    "{kind}: bound {b:?} beyond key count {}",
                    decoded.key_count()
                );
            }
        }
    }

    /// Appending trailing garbage to a valid payload must be rejected.
    #[test]
    fn trailing_garbage_rejected(
        extra in prop::collection::vec(any::<u8>(), 1..64),
        kind in prop::sample::select(IndexKind::ALL.to_vec()),
    ) {
        let keys: Vec<u64> = (0..200u64).map(|i| i * 3).collect();
        let idx = kind.build(&keys, &IndexConfig::default());
        let mut bytes = idx.encode();
        bytes.extend_from_slice(&extra);
        prop_assert!(IndexKind::decode(&bytes).is_err(), "{kind}");
    }
}
