//! Sanity harness: brute-force verifies the optimal-PLA error bound on every
//! dataset (run with --release; the library property tests cover this too).
use learned_index::pgm::optimal_pla;
use lsm_workloads::Dataset;

fn main() {
    let mut all_ok = true;
    for d in Dataset::ALL {
        let keys = d.generate(20_000, 0xbeef);
        for eps in [1usize, 4, 16] {
            let segs = optimal_pla(&keys, eps);
            let mut worst = 0f64;
            for (si, s) in segs.iter().enumerate() {
                let end = segs
                    .get(si + 1)
                    .map_or(keys.len(), |x| x.start_pos as usize);
                #[allow(clippy::needless_range_loop)] // pos arithmetic is the point
                for pos in s.start_pos as usize..end {
                    let k = keys[pos];
                    let dx = (k - s.first_key) as f64; // integer-exact delta
                    let pred = s.slope * dx + s.intercept;
                    worst = worst.max((pred - pos as f64).abs());
                }
            }
            let ok = worst <= eps as f64 + 1.0;
            all_ok &= ok;
            println!(
                "{d:10} eps={eps:3}: segs={:6} max_err={worst:8.2} {}",
                segs.len(),
                if ok { "OK" } else { "VIOLATION" }
            );
        }
    }
    assert!(all_ok, "optimal PLA violated its error bound");
}
