//! Two-level Recursive Model Index (paper Figure 2(F)).
//!
//! A root linear model routes each key to one of `L` second-level linear
//! models; each leaf model is least-squares-fit over its partition and its
//! *maximum absolute error is recorded at training time* — RMI's error is
//! empirical, not user-configured (Section 3.1). The position boundary is
//! tuned by varying `L`: more leaves, tighter errors, more memory. The paper
//! notes RMI can reach error 1 with a large second level, which is why it
//! dominates at very small position boundaries.

use crate::codec::{self, DecodeError, Reader};
use crate::linear::LinearModel;
use crate::{IndexKind, SearchBound, SegmentIndex};

/// One second-level model with its recorded error and partition start.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Leaf {
    model: LinearModel,
    /// Max |prediction − truth| over the leaf's training keys.
    err: u32,
    /// First position of the leaf's partition.
    start: u32,
}

impl Leaf {
    const ENCODED_LEN: usize = LinearModel::ENCODED_LEN + 8;
}

/// Two-level RMI.
#[derive(Debug, Clone)]
pub struct RmiIndex {
    root: LinearModel,
    leaves: Vec<Leaf>,
    n: u32,
}

impl RmiIndex {
    /// Build with an explicit second-level size `leaf_count`.
    pub fn build(keys: &[u64], leaf_count: usize) -> Self {
        let n = keys.len();
        let leaf_count = leaf_count.clamp(1, n.max(1));
        // Root: least-squares key→position over all keys, rescaled to route
        // into [0, leaf_count).
        let pos_model = LinearModel::fit(keys, 0);
        let scale = leaf_count as f64 / n.max(1) as f64;
        let root = LinearModel {
            anchor: pos_model.anchor,
            slope: pos_model.slope * scale,
            intercept: pos_model.intercept * scale,
        };

        // Partition keys by routed leaf (monotone since slope ≥ 0 on sorted
        // data), then fit each partition.
        let mut leaves = Vec::with_capacity(leaf_count);
        let mut start = 0usize;
        for leaf_id in 0..leaf_count {
            // End of this leaf's partition: first key routed past `leaf_id`.
            let mut end = start;
            while end < n && Self::route(&root, keys[end], leaf_count) <= leaf_id {
                end += 1;
            }
            let slice = &keys[start..end];
            let model = if slice.is_empty() {
                LinearModel::constant(0, start as f64)
            } else {
                LinearModel::fit(slice, start)
            };
            let err = model.max_error(slice, start) as u32;
            leaves.push(Leaf {
                model,
                err,
                start: start as u32,
            });
            start = end;
        }
        debug_assert_eq!(start, n, "partitions must cover all keys");
        Self {
            root,
            leaves,
            n: n as u32,
        }
    }

    /// Build targeting an error bound: the second-level size is searched so
    /// that the *recorded* error lands near `eps` — mirroring how the paper
    /// "adjusts the size of the second level, which in turn affects the
    /// position boundary". Doubling search: start with few leaves and grow
    /// until the size-weighted mean error drops to ≤ ε (or the second level
    /// saturates at one key per leaf, where RMI reaches error ≈ 1).
    pub fn build_for_epsilon(keys: &[u64], eps: usize) -> Self {
        let n = keys.len();
        if n == 0 {
            return Self::build(keys, 1);
        }
        let eps = eps.max(1);
        let mut leaf_count = (n / (64 * eps)).clamp(1, n);
        let mut best = Self::build(keys, leaf_count);
        while best.mean_recorded_error() > eps as f64 && leaf_count < n {
            leaf_count = (leaf_count * 2).min(n);
            best = Self::build(keys, leaf_count);
        }
        best
    }

    #[inline]
    fn route(root: &LinearModel, key: u64, leaf_count: usize) -> usize {
        let p = root.predict_f64(key);
        if p <= 0.0 {
            0
        } else {
            (p as usize).min(leaf_count - 1)
        }
    }

    /// Number of second-level models.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Maximum recorded leaf error (the achieved half-boundary).
    pub fn max_recorded_error(&self) -> usize {
        self.leaves
            .iter()
            .map(|l| l.err as usize)
            .max()
            .unwrap_or(0)
    }

    /// Mean recorded leaf error weighted by leaf size.
    pub fn mean_recorded_error(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as usize;
        let mut acc = 0.0;
        for (i, l) in self.leaves.iter().enumerate() {
            let end = self.leaves.get(i + 1).map_or(n, |nx| nx.start as usize);
            acc += l.err as f64 * (end - l.start as usize) as f64;
        }
        acc / n as f64
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.u32("rmi.n")?;
        let root = LinearModel::decode(r)?;
        let count = r.u32("rmi.leaf_count")? as usize;
        if count == 0 || count > (n as usize).max(1) || count * Leaf::ENCODED_LEN > r.remaining() {
            return Err(DecodeError::Corrupt("rmi.leaf_count"));
        }
        let mut leaves = Vec::with_capacity(count);
        for _ in 0..count {
            let model = LinearModel::decode(r)?;
            let err = r.u32("rmi.leaf.err")?;
            let start = r.u32("rmi.leaf.start")?;
            leaves.push(Leaf { model, err, start });
        }
        let well_formed = leaves.windows(2).all(|w| w[0].start <= w[1].start)
            && leaves.iter().all(|l| l.start <= n)
            && leaves.first().is_none_or(|l| l.start == 0);
        if !well_formed {
            return Err(DecodeError::Corrupt("rmi.leaf_starts"));
        }
        Ok(Self { root, leaves, n })
    }
}

impl SegmentIndex for RmiIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Rmi
    }

    fn predict(&self, key: u64) -> SearchBound {
        let n = self.n as usize;
        if n == 0 || self.leaves.is_empty() {
            return SearchBound { lo: 0, hi: 0 };
        }
        let leaf_id = Self::route(&self.root, key, self.leaves.len());
        let leaf = &self.leaves[leaf_id];
        let end = self
            .leaves
            .get(leaf_id + 1)
            .map_or(n, |nx| nx.start as usize)
            .max(leaf.start as usize + 1);
        let p = leaf.model.predict_f64(key);
        let lo_clamp = leaf.start as usize;
        let pred = if p <= lo_clamp as f64 {
            lo_clamp
        } else {
            (p as usize).min(end - 1)
        };
        // +1 slack for float rounding at partition edges.
        SearchBound::around(pred, leaf.err as usize + 1, n)
    }

    fn size_bytes(&self) -> usize {
        LinearModel::ENCODED_LEN
            + self.leaves.len() * Leaf::ENCODED_LEN
            + std::mem::size_of::<Self>()
    }

    fn segment_count(&self) -> usize {
        self.leaves.len()
    }

    fn key_count(&self) -> usize {
        self.n as usize
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u8(out, self.kind().tag());
        codec::put_u32(out, self.n);
        self.root.encode_into(out);
        codec::put_u32(out, self.leaves.len() as u32);
        for l in &self.leaves {
            l.model.encode_into(out);
            codec::put_u32(out, l.err);
            codec::put_u32(out, l.start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lumpy_keys(n: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).map(|i| i * 29 + (i % 113) * (i % 19)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn present_keys_within_recorded_bound() {
        let keys = lumpy_keys(30_000);
        for leaves in [16usize, 256, 4096] {
            let idx = RmiIndex::build(&keys, leaves);
            for (pos, &k) in keys.iter().enumerate().step_by(43) {
                let b = idx.predict(k);
                assert!(b.contains(pos), "leaves={leaves} pos={pos} b={b:?}");
            }
        }
    }

    #[test]
    fn more_leaves_tighter_errors() {
        let keys = lumpy_keys(50_000);
        let coarse = RmiIndex::build(&keys, 8);
        let fine = RmiIndex::build(&keys, 8192);
        assert!(
            fine.mean_recorded_error() < coarse.mean_recorded_error(),
            "fine={} coarse={}",
            fine.mean_recorded_error(),
            coarse.mean_recorded_error()
        );
        assert!(fine.size_bytes() > coarse.size_bytes());
    }

    #[test]
    fn linear_data_error_zero() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 7).collect();
        let idx = RmiIndex::build(&keys, 64);
        assert_eq!(idx.max_recorded_error(), 0);
        // One leaf per key region, still every prediction exact.
        for (pos, &k) in keys.iter().enumerate().step_by(111) {
            let b = idx.predict(k);
            assert!(b.contains(pos));
            assert!(b.len() <= 3, "error-0 leaf gives ±1 slack only");
        }
    }

    #[test]
    fn leaf_partitions_cover_and_are_sorted() {
        let keys = lumpy_keys(5_000);
        let idx = RmiIndex::build(&keys, 100);
        assert_eq!(idx.leaves[0].start, 0);
        assert!(idx.leaves.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn build_for_epsilon_scales_second_level() {
        let keys = lumpy_keys(20_000);
        let tight = RmiIndex::build_for_epsilon(&keys, 4);
        let loose = RmiIndex::build_for_epsilon(&keys, 128);
        assert!(tight.leaf_count() > loose.leaf_count());
    }

    #[test]
    fn empty_and_single() {
        let idx = RmiIndex::build(&[], 16);
        assert_eq!(idx.predict(1), SearchBound { lo: 0, hi: 0 });
        let idx = RmiIndex::build(&[42], 16);
        assert!(idx.predict(42).contains(0));
    }

    #[test]
    fn absent_keys_get_usable_bounds() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 10).collect();
        let idx = RmiIndex::build(&keys, 512);
        for probe in [5u64, 555, 99_995] {
            let ip = keys.partition_point(|&k| k < probe);
            let b = idx.predict(probe);
            assert!(b.lo <= ip && ip <= b.hi, "probe={probe} ip={ip} b={b:?}");
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let keys = lumpy_keys(10_000);
        let idx = RmiIndex::build(&keys, 333);
        let back = IndexKind::decode(&idx.encode()).unwrap();
        assert_eq!(back.kind(), IndexKind::Rmi);
        for &k in keys.iter().step_by(77) {
            assert_eq!(back.predict(k), idx.predict(k));
        }
    }
}
