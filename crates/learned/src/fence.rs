//! Classical fence pointers (paper Figure 1(B)): the baseline every learned
//! index is compared against.
//!
//! One pointer per fixed-width block of `2ε` entries, storing the block's
//! first key (full 24-byte key, as LevelDB materialises it) plus a block
//! handle. Lookup = binary search over pointers → exact block. The paper's
//! Figure 6 shows this is the *worst* memory-latency tradeoff: pointer count
//! is forced to `n / 2ε` regardless of how regular the data is, whereas
//! learned segments exploit regularity.

use crate::codec::{self, DecodeError, Reader};
use crate::{IndexKind, SearchBound, SegmentIndex};

/// Bytes charged per fence pointer: the paper's 24-byte key plus an 8-byte
/// block handle, as stored by LevelDB's index block.
pub const POINTER_BYTES: usize = 32;

/// Fence-pointer index over fixed-width entry blocks.
#[derive(Debug, Clone)]
pub struct FencePointerIndex {
    /// First key of each block.
    firsts: Vec<u64>,
    /// Entries per block (= position boundary = 2ε).
    block_len: u32,
    n: u32,
}

impl FencePointerIndex {
    /// Build over `keys` (sorted, distinct) with error bound `eps` — block
    /// width is the position boundary `2ε`.
    pub fn build(keys: &[u64], eps: usize) -> Self {
        let block_len = (2 * eps.max(1)) as u32;
        let firsts = keys.iter().step_by(block_len as usize).copied().collect();
        Self {
            firsts,
            block_len,
            n: keys.len() as u32,
        }
    }

    /// Entries per block.
    pub fn block_len(&self) -> usize {
        self.block_len as usize
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.u32("fp.n")?;
        let block_len = r.u32("fp.block_len")?;
        if block_len == 0 {
            return Err(DecodeError::Corrupt("fp.block_len"));
        }
        let firsts = r.u64_vec("fp.firsts")?;
        if !firsts.windows(2).all(|w| w[0] < w[1]) {
            return Err(DecodeError::Corrupt("fp.firsts_unsorted"));
        }
        Ok(Self {
            firsts,
            block_len,
            n,
        })
    }
}

impl SegmentIndex for FencePointerIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::FencePointers
    }

    fn predict(&self, key: u64) -> SearchBound {
        let n = self.n as usize;
        if n == 0 || self.firsts.is_empty() {
            return SearchBound { lo: 0, hi: 0 };
        }
        let block = self.firsts.partition_point(|&k| k <= key).saturating_sub(1);
        // Clamp into [0, n] so even corrupt block_len/n fields deserialized
        // from a damaged file cannot produce an out-of-range bound.
        let lo = (block * self.block_len as usize).min(n);
        let hi = (lo + self.block_len as usize).min(n);
        SearchBound { lo, hi: hi.max(lo) }
    }

    fn size_bytes(&self) -> usize {
        self.firsts.len() * POINTER_BYTES + std::mem::size_of::<Self>()
    }

    fn segment_count(&self) -> usize {
        self.firsts.len()
    }

    fn key_count(&self) -> usize {
        self.n as usize
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u8(out, self.kind().tag());
        codec::put_u32(out, self.n);
        codec::put_u32(out, self.block_len);
        codec::put_u64_slice(out, &self.firsts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_block_containment() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 3 + 1).collect();
        for eps in [1usize, 8, 128] {
            let idx = FencePointerIndex::build(&keys, eps);
            for (pos, &k) in keys.iter().enumerate() {
                let b = idx.predict(k);
                assert!(b.contains(pos), "eps={eps} pos={pos} b={b:?}");
                assert!(b.len() <= 2 * eps);
            }
        }
    }

    #[test]
    fn absent_keys_land_in_enclosing_block() {
        let keys: Vec<u64> = (0..1_000u64).map(|i| i * 10).collect();
        let idx = FencePointerIndex::build(&keys, 4);
        for probe in [5u64, 3_333, 9_995] {
            let ip = keys.partition_point(|&k| k < probe);
            let b = idx.predict(probe);
            assert!(b.lo <= ip && ip <= b.hi, "probe={probe} ip={ip} b={b:?}");
        }
    }

    #[test]
    fn pointer_count_is_forced_by_boundary() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 7).collect(); // perfectly linear
        let idx = FencePointerIndex::build(&keys, 8);
        // Even on trivially learnable data: n / 2ε pointers.
        assert_eq!(idx.segment_count(), 10_000usize.div_ceil(16));
    }

    #[test]
    fn memory_grows_inversely_with_boundary() {
        let keys: Vec<u64> = (0..100_000u64).collect();
        let small = FencePointerIndex::build(&keys, 4);
        let large = FencePointerIndex::build(&keys, 128);
        assert!(small.size_bytes() > 20 * large.size_bytes() / 2);
    }

    #[test]
    fn key_below_first_block() {
        let keys: Vec<u64> = (100..200u64).collect();
        let idx = FencePointerIndex::build(&keys, 4);
        let b = idx.predict(0);
        assert_eq!(b.lo, 0);
        assert!(b.contains(0));
    }

    #[test]
    fn empty_index() {
        let idx = FencePointerIndex::build(&[], 4);
        assert_eq!(idx.predict(9), SearchBound { lo: 0, hi: 0 });
    }

    #[test]
    fn encode_decode_roundtrip() {
        let keys: Vec<u64> = (0..5_000u64).map(|i| i * 13).collect();
        let idx = FencePointerIndex::build(&keys, 16);
        let back = IndexKind::decode(&idx.encode()).unwrap();
        assert_eq!(back.kind(), IndexKind::FencePointers);
        for &k in keys.iter().step_by(29) {
            assert_eq!(back.predict(k), idx.predict(k));
        }
    }
}
