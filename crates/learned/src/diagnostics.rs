//! Index quality diagnostics: how well does a model actually fit a key set?
//!
//! The paper's analysis leans on three per-index quantities — achieved
//! prediction error, bound width, and memory per key. [`IndexDiagnostics`]
//! computes them exactly for any built index, which is how the
//! `index_shootout` example and the RMI leaf-sizing logic reason about
//! *achieved* (as opposed to configured) position boundaries.

use crate::{SearchBound, SegmentIndex};

/// Exact fit statistics of one index over the keys it was built on.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDiagnostics {
    /// Keys evaluated.
    pub keys: usize,
    /// Mean |predicted centre − true position|.
    pub mean_error: f64,
    /// Maximum absolute error.
    pub max_error: usize,
    /// 99th-percentile absolute error.
    pub p99_error: usize,
    /// Mean returned bound width (the achieved position boundary).
    pub mean_bound_width: f64,
    /// Maximum bound width.
    pub max_bound_width: usize,
    /// Index bytes per indexed key.
    pub bytes_per_key: f64,
    /// Histogram of errors in power-of-two buckets: `bucket[i]` counts keys
    /// with error in `[2^(i-1), 2^i)` (`bucket[0]` = exact hits).
    pub error_histogram: Vec<usize>,
}

impl IndexDiagnostics {
    /// Evaluate `index` over the sorted `keys` it was built from.
    pub fn evaluate(index: &dyn SegmentIndex, keys: &[u64]) -> IndexDiagnostics {
        let n = keys.len();
        let mut sum_err = 0.0f64;
        let mut max_err = 0usize;
        let mut errors = Vec::with_capacity(n);
        let mut sum_width = 0.0f64;
        let mut max_width = 0usize;
        let mut histogram = vec![0usize; 1];

        for (pos, &k) in keys.iter().enumerate() {
            let b: SearchBound = index.predict(k);
            debug_assert!(b.contains(pos), "diagnostics require a sound index");
            let centre = (b.lo + b.hi) / 2;
            let err = centre.abs_diff(pos);
            sum_err += err as f64;
            max_err = max_err.max(err);
            errors.push(err);
            sum_width += b.len() as f64;
            max_width = max_width.max(b.len());

            let bucket = if err == 0 {
                0
            } else {
                (usize::BITS - err.leading_zeros()) as usize
            };
            if bucket >= histogram.len() {
                histogram.resize(bucket + 1, 0);
            }
            histogram[bucket] += 1;
        }

        errors.sort_unstable();
        let p99 = if n == 0 {
            0
        } else {
            errors[((n as f64 * 0.99) as usize).min(n - 1)]
        };

        IndexDiagnostics {
            keys: n,
            mean_error: if n == 0 { 0.0 } else { sum_err / n as f64 },
            max_error: max_err,
            p99_error: p99,
            mean_bound_width: if n == 0 { 0.0 } else { sum_width / n as f64 },
            max_bound_width: max_width,
            bytes_per_key: if n == 0 {
                0.0
            } else {
                index.size_bytes() as f64 / n as f64
            },
            error_histogram: histogram,
        }
    }

    /// One-line summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "n={} err(mean/p99/max)={:.1}/{}/{} bound(mean/max)={:.1}/{} bytes/key={:.3}",
            self.keys,
            self.mean_error,
            self.p99_error,
            self.max_error,
            self.mean_bound_width,
            self.max_bound_width,
            self.bytes_per_key
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndexConfig, IndexKind};

    fn keys(n: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).map(|i| i * 17 + (i % 59) * 3).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn errors_bounded_by_epsilon() {
        let ks = keys(20_000);
        for eps in [4usize, 32] {
            let config = IndexConfig {
                epsilon: eps,
                ..IndexConfig::default()
            };
            for kind in [IndexKind::Pgm, IndexKind::Plr, IndexKind::FencePointers] {
                let idx = kind.build(&ks, &config);
                let d = IndexDiagnostics::evaluate(idx.as_ref(), &ks);
                assert_eq!(d.keys, ks.len());
                assert!(
                    d.max_error <= 2 * eps + 2,
                    "{kind} eps={eps}: max_error {}",
                    d.max_error
                );
                assert!(d.mean_error <= d.max_error as f64);
                assert!(d.p99_error <= d.max_error);
                assert!(d.mean_bound_width <= (2 * eps + 5) as f64);
                assert_eq!(d.error_histogram.iter().sum::<usize>(), ks.len());
            }
        }
    }

    #[test]
    fn tighter_epsilon_means_smaller_errors() {
        let ks = keys(20_000);
        let tight = IndexKind::Pgm.build(
            &ks,
            &IndexConfig {
                epsilon: 2,
                ..Default::default()
            },
        );
        let loose = IndexKind::Pgm.build(
            &ks,
            &IndexConfig {
                epsilon: 128,
                ..Default::default()
            },
        );
        let dt = IndexDiagnostics::evaluate(tight.as_ref(), &ks);
        let dl = IndexDiagnostics::evaluate(loose.as_ref(), &ks);
        assert!(dt.mean_error < dl.mean_error);
        assert!(dt.bytes_per_key > dl.bytes_per_key);
    }

    #[test]
    fn perfect_fit_is_all_zero_errors() {
        let ks: Vec<u64> = (0..5_000u64).map(|i| i * 10).collect();
        let idx = IndexKind::Rmi.build(
            &ks,
            &IndexConfig {
                epsilon: 8,
                ..Default::default()
            },
        );
        let d = IndexDiagnostics::evaluate(idx.as_ref(), &ks);
        // Linear data: RMI's recorded error is 0; centre error ≤ 1 (clamping).
        assert!(d.max_error <= 1, "{}", d.summary());
        assert!(d.error_histogram[0] + d.error_histogram.get(1).copied().unwrap_or(0) == ks.len());
    }

    #[test]
    fn empty_keys() {
        let idx = IndexKind::Pgm.build(&[], &IndexConfig::default());
        let d = IndexDiagnostics::evaluate(idx.as_ref(), &[]);
        assert_eq!(d.keys, 0);
        assert_eq!(d.mean_error, 0.0);
    }

    #[test]
    fn summary_is_one_line() {
        let ks = keys(1_000);
        let idx = IndexKind::RadixSpline.build(&ks, &IndexConfig::default());
        let d = IndexDiagnostics::evaluate(idx.as_ref(), &ks);
        assert!(!d.summary().contains('\n'));
        assert!(d.summary().contains("bytes/key"));
    }
}
