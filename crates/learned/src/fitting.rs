//! FITing-Tree (paper Figure 2(B)): greedy shrinking-cone segments indexed by
//! a B+-tree.
//!
//! Identical segmentation to [`crate::plr::PlrIndex`]; the difference — and
//! the reason the paper finds FITing-Tree's memory grows fastest among the
//! learned indexes — is the B+-tree inner index over segment first-keys,
//! which buys faster segment location at a per-segment pointer cost.

use crate::bptree::BPlusTree;
use crate::codec::{self, DecodeError, Reader};
use crate::cone::{segment_keys, Segment};
use crate::plr::PlrIndex;
use crate::{IndexKind, SearchBound, SegmentIndex};

/// FITing-Tree: ε-bounded greedy segments + B+-tree over first keys.
#[derive(Debug, Clone)]
pub struct FitingTreeIndex {
    segments: Vec<Segment>,
    inner: BPlusTree,
    n: u32,
    eps: u32,
}

impl FitingTreeIndex {
    /// Build over `keys` (sorted, distinct) with error bound `eps` and the
    /// given inner B+-tree fanout.
    pub fn build(keys: &[u64], eps: usize, fanout: usize) -> Self {
        let segments = segment_keys(keys, eps);
        let first_keys: Vec<u64> = segments.iter().map(|s| s.first_key).collect();
        Self {
            inner: BPlusTree::build(&first_keys, fanout),
            segments,
            n: keys.len() as u32,
            eps: eps as u32,
        }
    }

    /// The inner B+-tree (exposed for the ablation bench comparing inner
    /// index structures).
    pub fn inner(&self) -> &BPlusTree {
        &self.inner
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.u32("ft.n")?;
        let eps = r.u32("ft.eps")?;
        let fanout = r.u32("ft.fanout")? as usize;
        let count = r.u32("ft.segment_count")? as usize;
        if count * Segment::ENCODED_LEN > r.remaining() {
            return Err(DecodeError::Corrupt("ft.segment_count"));
        }
        let mut segments = Vec::with_capacity(count);
        for _ in 0..count {
            segments.push(Segment::decode(r)?);
        }
        if !crate::plr::segments_well_formed(&segments, n as usize) {
            return Err(DecodeError::Corrupt("ft.segments"));
        }
        let first_keys: Vec<u64> = segments.iter().map(|s| s.first_key).collect();
        Ok(Self {
            inner: BPlusTree::build(&first_keys, fanout),
            segments,
            n,
            eps,
        })
    }
}

impl SegmentIndex for FitingTreeIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::FitingTree
    }

    fn predict(&self, key: u64) -> SearchBound {
        let n = self.n as usize;
        if self.segments.is_empty() || n == 0 {
            return SearchBound { lo: 0, hi: 0 };
        }
        let si = self.inner.rank(key);
        let end = PlrIndex::segment_end(&self.segments, si, n);
        let pred = self.segments[si].predict(key, end);
        SearchBound::around(pred, self.eps as usize, n)
    }

    fn size_bytes(&self) -> usize {
        self.segments.len() * Segment::ENCODED_LEN
            + self.inner.size_bytes()
            + std::mem::size_of::<Self>()
    }

    fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn key_count(&self) -> usize {
        self.n as usize
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u8(out, self.kind().tag());
        codec::put_u32(out, self.n);
        codec::put_u32(out, self.eps);
        codec::put_u32(out, self.inner.fanout() as u32);
        codec::put_u32(out, self.segments.len() as u32);
        for s in &self.segments {
            s.encode_into(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).map(|i| i * 3 + (i % 31) * 17).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn agrees_with_plr_on_containment() {
        let ks = keys(30_000);
        let ft = FitingTreeIndex::build(&ks, 16, 16);
        for (pos, &k) in ks.iter().enumerate().step_by(41) {
            let b = ft.predict(k);
            assert!(b.contains(pos), "key={k} pos={pos} bound={b:?}");
        }
    }

    #[test]
    fn same_segments_as_plr_but_more_memory() {
        let ks = keys(30_000);
        let ft = FitingTreeIndex::build(&ks, 8, 16);
        let plr = PlrIndex::build(&ks, 8);
        assert_eq!(ft.segment_count(), plr.segment_count());
        assert!(
            ft.size_bytes() > plr.size_bytes(),
            "B+-tree inner index must cost more than a plain array: ft={} plr={}",
            ft.size_bytes(),
            plr.size_bytes()
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ks = keys(10_000);
        let ft = FitingTreeIndex::build(&ks, 8, 32);
        let back = IndexKind::decode(&ft.encode()).unwrap();
        assert_eq!(back.kind(), IndexKind::FitingTree);
        for &k in ks.iter().step_by(97) {
            assert_eq!(back.predict(k), ft.predict(k));
        }
    }

    #[test]
    fn empty_and_single() {
        let ft = FitingTreeIndex::build(&[], 4, 16);
        assert_eq!(ft.predict(9), SearchBound { lo: 0, hi: 0 });
        let ft = FitingTreeIndex::build(&[5], 4, 16);
        assert!(ft.predict(5).contains(0));
    }
}
