//! Minimal little-endian binary codec for serializing index models.
//!
//! Models are written into the SSTable's index block during `BuildTable`
//! (Figure 9 measures "write model" time), so the encoding is deliberately
//! simple and position-independent: fixed-width little-endian scalars and
//! length-prefixed arrays. No external serialization dependency is needed.

use std::fmt;

/// Errors when decoding a serialized index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended in the middle of the named field.
    UnexpectedEof(&'static str),
    /// Unknown index-kind tag byte.
    BadTag(u8),
    /// Structurally invalid payload.
    Corrupt(&'static str),
    /// Bytes remained after a complete decode.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof(what) => write!(f, "unexpected EOF reading {what}"),
            DecodeError::BadTag(t) => write!(f, "unknown index kind tag {t}"),
            DecodeError::Corrupt(what) => write!(f, "corrupt index payload: {what}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after index payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian IEEE-754 `f64`.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Length-prefixed `u64` slice.
pub fn put_u64_slice(out: &mut Vec<u8>, vs: &[u64]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_u64(out, v);
    }
}

/// Length-prefixed `u32` slice.
pub fn put_u32_slice(out: &mut Vec<u8>, vs: &[u32]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_u32(out, v);
    }
}

/// Cursor over a byte slice with typed reads.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::UnexpectedEof(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte (`what` names the field in error messages).
    pub fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Length-prefixed `u64` vector with a sanity cap against corrupt lengths.
    pub fn u64_vec(&mut self, what: &'static str) -> Result<Vec<u64>, DecodeError> {
        let n = self.u32(what)? as usize;
        if n * 8 > self.buf.len() - self.pos {
            return Err(DecodeError::Corrupt(what));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64(what)?);
        }
        Ok(out)
    }

    /// Length-prefixed `u32` vector.
    pub fn u32_vec(&mut self, what: &'static str) -> Result<Vec<u32>, DecodeError> {
        let n = self.u32(what)? as usize;
        if n * 4 > self.buf.len() - self.pos {
            return Err(DecodeError::Corrupt(what));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32(what)?);
        }
        Ok(out)
    }

    /// Error if any bytes remain unread.
    pub fn finish(self) -> Result<(), DecodeError> {
        let rest = self.buf.len() - self.pos;
        if rest > 0 {
            return Err(DecodeError::TrailingBytes(rest));
        }
        Ok(())
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xdead_beef);
        put_u64(&mut out, u64::MAX - 3);
        put_f64(&mut out, -1.5);
        let mut r = Reader::new(&out);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 3);
        assert_eq!(r.f64("d").unwrap(), -1.5);
        r.finish().unwrap();
    }

    #[test]
    fn slice_roundtrip() {
        let mut out = Vec::new();
        put_u64_slice(&mut out, &[1, 2, 3]);
        put_u32_slice(&mut out, &[9, 8]);
        let mut r = Reader::new(&out);
        assert_eq!(r.u64_vec("xs").unwrap(), vec![1, 2, 3]);
        assert_eq!(r.u32_vec("ys").unwrap(), vec![9, 8]);
        r.finish().unwrap();
    }

    #[test]
    fn eof_reported() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32("field"), Err(DecodeError::UnexpectedEof("field")));
    }

    #[test]
    fn corrupt_length_rejected() {
        let mut out = Vec::new();
        put_u32(&mut out, u32::MAX); // absurd element count
        let mut r = Reader::new(&out);
        assert_eq!(r.u64_vec("xs"), Err(DecodeError::Corrupt("xs")));
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = Reader::new(&[0u8; 3]);
        assert_eq!(r.finish(), Err(DecodeError::TrailingBytes(3)));
    }
}
