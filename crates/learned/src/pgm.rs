//! PGM-index (paper Figure 2(C)): *optimal* ε-bounded piecewise linear
//! segmentation via the streaming convex-hull algorithm (O'Rourke 1981, as
//! used by Ferragina & Vinciguerra), applied recursively to build upper
//! levels with `EpsilonRecursive` (paper default 4).
//!
//! Unlike the greedy shrinking cone, the streaming algorithm maintains the
//! full convex feasible region of `(slope, intercept)` pairs, so it emits the
//! provably minimal number of segments for a given ε — this is why the paper
//! finds PGM's memory-latency tradeoff dominant: fewer segments for the same
//! position boundary.

use crate::codec::{self, DecodeError, Reader};
use crate::{IndexKind, SearchBound, SegmentIndex};

/// A point (key, position) lifted to i128 so cross products are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pt {
    x: i128,
    y: i128,
}

impl Pt {
    #[inline]
    fn sub(self, o: Pt) -> Pt {
        Pt {
            x: self.x - o.x,
            y: self.y - o.y,
        }
    }

    /// 2-D cross product of vectors `self` and `o`.
    #[inline]
    fn cross(self, o: Pt) -> i128 {
        self.x * o.y - self.y * o.x
    }
}

/// One optimal segment: a line anchored at `first_key` covering positions
/// `[start_pos, next.start_pos)` of the array below.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgmSegment {
    pub first_key: u64,
    pub start_pos: u32,
    pub slope: f64,
    /// Predicted position at `key == first_key` (float; may differ from
    /// `start_pos` by up to ε).
    pub intercept: f64,
}

impl PgmSegment {
    /// Serialized footprint.
    pub const ENCODED_LEN: usize = 28;

    /// Predict `key`'s position, clamped to `[start_pos, end_pos)`.
    #[inline]
    pub fn predict(&self, key: u64, end_pos: usize) -> usize {
        let dx = if key >= self.first_key {
            (key - self.first_key) as f64
        } else {
            -((self.first_key - key) as f64)
        };
        let p = self.slope * dx + self.intercept;
        let lo = self.start_pos as usize;
        let hi = end_pos.max(lo + 1);
        if p <= lo as f64 {
            lo
        } else {
            (p as usize).min(hi - 1)
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u64(out, self.first_key);
        codec::put_u32(out, self.start_pos);
        codec::put_f64(out, self.slope);
        codec::put_f64(out, self.intercept);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            first_key: r.u64("pgm.seg.first_key")?,
            start_pos: r.u32("pgm.seg.start_pos")?,
            slope: r.f64("pgm.seg.slope")?,
            intercept: r.f64("pgm.seg.intercept")?,
        })
    }
}

/// Streaming optimal piecewise-linear approximation builder.
///
/// Feasible lines must pass within ±ε (vertically) of every added point; the
/// feasible region in parameter space is convex and is tracked through its
/// extreme points (`rect`) plus the upper/lower hulls of the constraint
/// points. `add` returns `false` when the new point empties the region.
struct OptPla {
    eps: i128,
    rect: [Pt; 4],
    upper: Vec<Pt>,
    lower: Vec<Pt>,
    upper_start: usize,
    lower_start: usize,
    points: usize,
    first_x: u64,
    first_y: usize,
}

impl OptPla {
    fn new(eps: usize) -> Self {
        Self {
            eps: eps as i128,
            rect: [Pt { x: 0, y: 0 }; 4],
            upper: Vec::new(),
            lower: Vec::new(),
            upper_start: 0,
            lower_start: 0,
            points: 0,
            first_x: 0,
            first_y: 0,
        }
    }

    fn reset(&mut self) {
        self.points = 0;
        self.upper.clear();
        self.lower.clear();
        self.upper_start = 0;
        self.lower_start = 0;
    }

    /// Try to extend the current segment with `(x, y)`; `false` means the
    /// point does not fit and the caller must close the segment first.
    fn add(&mut self, x: u64, y: usize) -> bool {
        let p = Pt {
            x: x as i128,
            y: y as i128,
        };
        let p1 = Pt {
            x: p.x,
            y: p.y + self.eps,
        }; // upper constraint point
        let p2 = Pt {
            x: p.x,
            y: p.y - self.eps,
        }; // lower constraint point

        if self.points == 0 {
            self.first_x = x;
            self.first_y = y;
            self.rect[0] = p1;
            self.rect[1] = p2;
            self.upper.clear();
            self.lower.clear();
            self.upper.push(p1);
            self.lower.push(p2);
            self.upper_start = 0;
            self.lower_start = 0;
            self.points = 1;
            return true;
        }
        if self.points == 1 {
            self.rect[2] = p2;
            self.rect[3] = p1;
            self.upper.push(p1);
            self.lower.push(p2);
            self.points = 2;
            return true;
        }

        // slope1 = the current *minimum* feasible slope (through rect[0], the
        // upper constraint of an early point, and rect[2], a lower constraint
        // of a later point); slope2 = the *maximum* feasible slope.
        let slope1 = self.rect[2].sub(self.rect[0]);
        let slope2 = self.rect[3].sub(self.rect[1]);
        // Infeasible-low: even the shallowest line passes above p1.
        let outside_line1 = p1.sub(self.rect[2]).cross(slope1) > 0;
        // Infeasible-high: even the steepest line passes below p2.
        let outside_line2 = p2.sub(self.rect[3]).cross(slope2) < 0;
        if outside_line1 || outside_line2 {
            return false;
        }

        if p1.sub(self.rect[1]).cross(slope2) > 0 {
            // p1 lies below the max-slope line: the maximum slope must
            // shrink. The new extreme line passes through p1 and the lower
            // hull point minimizing slope(hull_pt → p1).
            let mut min = self.lower[self.lower_start].sub(p1);
            let mut min_i = self.lower_start;
            for i in self.lower_start + 1..self.lower.len() {
                let val = self.lower[i].sub(p1);
                if min.cross(val) > 0 {
                    break;
                }
                min = val;
                min_i = i;
            }
            self.rect[1] = self.lower[min_i];
            self.rect[3] = p1;
            self.lower_start = min_i;

            // Maintain the upper hull with p1.
            let mut end = self.upper.len();
            while end >= self.upper_start + 2
                && cross3(self.upper[end - 2], self.upper[end - 1], p1) <= 0
            {
                end -= 1;
            }
            self.upper.truncate(end);
            self.upper.push(p1);
        }

        if p2.sub(self.rect[0]).cross(slope1) < 0 {
            // p2 lies above the min-slope line: the minimum slope must grow.
            let mut max = self.upper[self.upper_start].sub(p2);
            let mut max_i = self.upper_start;
            for i in self.upper_start + 1..self.upper.len() {
                let val = self.upper[i].sub(p2);
                if val.cross(max) > 0 {
                    break;
                }
                max = val;
                max_i = i;
            }
            self.rect[0] = self.upper[max_i];
            self.rect[2] = p2;
            self.upper_start = max_i;

            let mut end = self.lower.len();
            while end >= self.lower_start + 2
                && cross3(self.lower[end - 2], self.lower[end - 1], p2) >= 0
            {
                end -= 1;
            }
            self.lower.truncate(end);
            self.lower.push(p2);
        }

        self.points += 1;
        true
    }

    /// Close the running segment into a [`PgmSegment`].
    fn take_segment(&self) -> PgmSegment {
        debug_assert!(self.points > 0);
        if self.points == 1 {
            return PgmSegment {
                first_key: self.first_x,
                start_pos: self.first_y as u32,
                slope: 0.0,
                intercept: self.first_y as f64,
            };
        }
        // Slope: midpoint of the extreme slopes; intercept: through the
        // intersection of the rectangle's diagonals (O'Rourke's choice).
        // All geometry is shifted by `first_x` in exact integer space first:
        // keys can exceed 2^60, where f64's ULP (hundreds of units) would
        // otherwise swallow the intersection offset entirely.
        let shift = |p: Pt| Pt {
            x: p.x - self.first_x as i128,
            y: p.y,
        };
        let r0 = shift(self.rect[0]);
        let r1 = shift(self.rect[1]);
        let r2 = shift(self.rect[2]);
        let r3 = shift(self.rect[3]);
        let sl1 = slope_of(r0, r2);
        let sl2 = slope_of(r1, r3);
        let slope = (sl1 + sl2) / 2.0;
        let (ix, iy) = intersection(r0, r2, r1, r3);
        let intercept = iy - ix * slope;
        PgmSegment {
            first_key: self.first_x,
            start_pos: self.first_y as u32,
            slope,
            intercept,
        }
    }
}

/// Cross product of (b - a) × (c - a).
#[inline]
fn cross3(a: Pt, b: Pt, c: Pt) -> i128 {
    b.sub(a).cross(c.sub(a))
}

fn slope_of(a: Pt, b: Pt) -> f64 {
    let dx = (b.x - a.x) as f64;
    let dy = (b.y - a.y) as f64;
    if dx == 0.0 {
        0.0
    } else {
        dy / dx
    }
}

/// Intersection of lines (a, b) and (c, d); falls back to `a` for parallel
/// (degenerate) configurations.
fn intersection(a: Pt, b: Pt, c: Pt, d: Pt) -> (f64, f64) {
    let ab = b.sub(a);
    let cd = d.sub(c);
    let denom = ab.cross(cd);
    if denom == 0 {
        return (a.x as f64, a.y as f64);
    }
    let ac = c.sub(a);
    let t = ac.cross(cd) as f64 / denom as f64;
    (a.x as f64 + t * ab.x as f64, a.y as f64 + t * ab.y as f64)
}

/// Optimal ε-bounded PLA of `keys` (sorted, distinct): the minimal number of
/// segments such that each key's position is within ±(ε+1) of its segment's
/// prediction (the +1 absorbs float rounding, as in the reference
/// implementation).
pub fn optimal_pla(keys: &[u64], eps: usize) -> Vec<PgmSegment> {
    assert!(eps >= 1, "epsilon must be at least 1");
    let mut out = Vec::new();
    if keys.is_empty() {
        return out;
    }
    let mut b = OptPla::new(eps);
    for (y, &x) in keys.iter().enumerate() {
        if !b.add(x, y) {
            out.push(b.take_segment());
            b.reset();
            let ok = b.add(x, y);
            debug_assert!(ok, "fresh segment must accept its first point");
        }
    }
    out.push(b.take_segment());
    out
}

/// The recursive PGM-index.
#[derive(Debug, Clone)]
pub struct PgmIndex {
    /// `levels[0]` indexes the keys; `levels[k]` indexes the first-keys of
    /// `levels[k-1]`. The last level is small enough to binary search.
    levels: Vec<Vec<PgmSegment>>,
    n: u32,
    eps: u32,
    eps_rec: u32,
}

impl PgmIndex {
    /// Build over `keys` (sorted, distinct) with leaf error `eps` and
    /// internal error `eps_rec` (paper default 4).
    pub fn build(keys: &[u64], eps: usize, eps_rec: usize) -> Self {
        let eps_rec = eps_rec.max(1);
        let mut levels = Vec::new();
        let leaf = optimal_pla(keys, eps);
        let mut cur_keys: Vec<u64> = leaf.iter().map(|s| s.first_key).collect();
        levels.push(leaf);
        while cur_keys.len() > 1 {
            let up = optimal_pla(&cur_keys, eps_rec);
            if up.len() >= cur_keys.len() {
                break; // no compression possible; binary search this level
            }
            cur_keys = up.iter().map(|s| s.first_key).collect();
            levels.push(up);
        }
        Self {
            levels,
            n: keys.len() as u32,
            eps: eps as u32,
            eps_rec: eps_rec as u32,
        }
    }

    /// Number of levels (≥ 1 for non-empty indexes).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Leaf segments (used by tests and the ablation bench).
    pub fn leaf_segments(&self) -> &[PgmSegment] {
        &self.levels[0]
    }

    /// Rank of `key` in `segs` limited to the predicted window `[lo, hi)`,
    /// with defensive fallback to a full binary search if the window missed
    /// (cannot happen when the ε guarantee holds, but costs nothing to keep).
    fn window_rank(segs: &[PgmSegment], lo: usize, hi: usize, key: u64) -> usize {
        let hi = hi.min(segs.len()).max(lo + 1);
        let in_window = segs[lo..hi].partition_point(|s| s.first_key <= key);
        if in_window == 0 {
            if lo == 0 {
                return 0;
            }
            // Window missed to the left.
            return segs[..lo]
                .partition_point(|s| s.first_key <= key)
                .saturating_sub(1);
        }
        let cand = lo + in_window - 1;
        if cand + 1 == hi && hi < segs.len() && segs[hi].first_key <= key {
            // Window missed to the right.
            return hi + segs[hi..].partition_point(|s| s.first_key <= key) - 1;
        }
        cand
    }

    fn segment_end(level: &[PgmSegment], i: usize, below_len: usize) -> usize {
        level.get(i + 1).map_or(below_len, |s| s.start_pos as usize)
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.u32("pgm.n")?;
        let eps = r.u32("pgm.eps")?;
        let eps_rec = r.u32("pgm.eps_rec")?;
        let nlevels = r.u32("pgm.levels")? as usize;
        if nlevels == 0 || nlevels > 64 {
            return Err(DecodeError::Corrupt("pgm.levels"));
        }
        let mut levels = Vec::with_capacity(nlevels);
        for _ in 0..nlevels {
            let count = r.u32("pgm.level_len")? as usize;
            if count * PgmSegment::ENCODED_LEN > r.remaining() {
                return Err(DecodeError::Corrupt("pgm.level_len"));
            }
            let mut segs = Vec::with_capacity(count);
            for _ in 0..count {
                segs.push(PgmSegment::decode(r)?);
            }
            let sorted = segs
                .windows(2)
                .all(|w| w[0].first_key < w[1].first_key && w[0].start_pos < w[1].start_pos);
            if !sorted {
                return Err(DecodeError::Corrupt("pgm.level_unsorted"));
            }
            levels.push(segs);
        }
        Ok(Self {
            levels,
            n,
            eps,
            eps_rec,
        })
    }
}

impl SegmentIndex for PgmIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Pgm
    }

    fn predict(&self, key: u64) -> SearchBound {
        let n = self.n as usize;
        if n == 0 || self.levels[0].is_empty() {
            return SearchBound { lo: 0, hi: 0 };
        }
        // Root level: binary search (it is at most a handful of segments).
        let top = self.levels.len() - 1;
        let mut idx = self.levels[top]
            .partition_point(|s| s.first_key <= key)
            .saturating_sub(1);
        let mut lvl = top;
        while lvl > 0 {
            let below_len = self.levels[lvl - 1].len();
            let end = Self::segment_end(&self.levels[lvl], idx, below_len);
            let pred = self.levels[lvl][idx].predict(key, end);
            let w = self.eps_rec as usize + 2;
            let lo = pred.saturating_sub(w);
            let hi = (pred + w + 1).min(below_len);
            idx = Self::window_rank(&self.levels[lvl - 1], lo, hi, key);
            lvl -= 1;
        }
        let end = Self::segment_end(&self.levels[0], idx, n);
        let pred = self.levels[0][idx].predict(key, end);
        // +1 slack absorbs float rounding of the optimal segment parameters.
        SearchBound::around(pred, self.eps as usize + 1, n)
    }

    fn size_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.len() * PgmSegment::ENCODED_LEN)
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    fn segment_count(&self) -> usize {
        self.levels[0].len()
    }

    fn key_count(&self) -> usize {
        self.n as usize
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u8(out, self.kind().tag());
        codec::put_u32(out, self.n);
        codec::put_u32(out, self.eps);
        codec::put_u32(out, self.eps_rec);
        codec::put_u32(out, self.levels.len() as u32);
        for level in &self.levels {
            codec::put_u32(out, level.len() as u32);
            for s in level {
                s.encode_into(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::segment_keys;

    fn check_containment(keys: &[u64], eps: usize) {
        let idx = PgmIndex::build(keys, eps, 4);
        for (pos, &k) in keys.iter().enumerate() {
            let b = idx.predict(k);
            assert!(
                b.contains(pos),
                "eps={eps} key={k} pos={pos} bound={b:?} (len {})",
                keys.len()
            );
        }
    }

    #[test]
    fn containment_on_linear_keys() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 13 + 5).collect();
        for eps in [1, 4, 32, 256] {
            check_containment(&keys, eps);
        }
    }

    #[test]
    fn containment_on_quadratic_keys() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * i).collect();
        for eps in [1, 8, 64] {
            check_containment(&keys, eps);
        }
    }

    #[test]
    fn containment_on_clustered_keys() {
        let mut keys: Vec<u64> = Vec::new();
        for c in 0..100u64 {
            let base = c * 1_000_000;
            keys.extend((0..100).map(|i| base + i * 3));
        }
        check_containment(&keys, 4);
    }

    #[test]
    fn optimal_never_worse_than_greedy() {
        let mut keys: Vec<u64> = (0..50_000u64)
            .map(|i| i * 3 + (i % 83) * (i % 29))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        for eps in [4usize, 16, 64] {
            let opt = optimal_pla(&keys, eps).len();
            let greedy = segment_keys(&keys, eps).len();
            assert!(
                opt <= greedy,
                "optimal must be minimal: eps={eps} opt={opt} greedy={greedy}"
            );
        }
    }

    #[test]
    fn optimal_strictly_better_on_noisy_data() {
        // Sawtooth noise around a line defeats the greedy anchor choice.
        let keys: Vec<u64> = (0..20_000u64)
            .map(|i| i * 100 + (i % 7) * 23 + (i % 11) * 5)
            .collect();
        let opt = optimal_pla(&keys, 2).len();
        let greedy = segment_keys(&keys, 2).len();
        assert!(opt <= greedy);
    }

    #[test]
    fn recursion_shrinks_levels() {
        let keys: Vec<u64> = (0..100_000u64).map(|i| i * i % (1 << 45)).collect();
        let mut keys = keys;
        keys.sort_unstable();
        keys.dedup();
        let idx = PgmIndex::build(&keys, 2, 4);
        assert!(idx.height() >= 2, "small eps should force recursion");
        // Top level must be tiny.
        assert!(idx.levels.last().unwrap().len() <= 8);
    }

    #[test]
    fn absent_keys_get_usable_bounds() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 10).collect();
        let idx = PgmIndex::build(&keys, 8, 4);
        for probe in [5u64, 555, 99_995] {
            let ip = keys.partition_point(|&k| k < probe);
            let b = idx.predict(probe);
            assert!(b.lo <= ip && ip <= b.hi, "probe={probe} ip={ip} b={b:?}");
        }
    }

    #[test]
    fn empty_and_single() {
        let idx = PgmIndex::build(&[], 4, 4);
        assert_eq!(idx.predict(1), SearchBound { lo: 0, hi: 0 });
        let idx = PgmIndex::build(&[77], 4, 4);
        assert!(idx.predict(77).contains(0));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let keys: Vec<u64> = (0..30_000u64).map(|i| i * 7 + (i % 41)).collect();
        let mut keys = keys;
        keys.sort_unstable();
        keys.dedup();
        let idx = PgmIndex::build(&keys, 16, 4);
        let back = IndexKind::decode(&idx.encode()).unwrap();
        assert_eq!(back.kind(), IndexKind::Pgm);
        for &k in keys.iter().step_by(111) {
            assert_eq!(back.predict(k), idx.predict(k));
        }
    }

    #[test]
    fn fewer_segments_with_larger_eps() {
        let keys: Vec<u64> = (0..50_000u64).map(|i| i * i / 3).collect();
        let mut keys = keys;
        keys.sort_unstable();
        keys.dedup();
        let small = PgmIndex::build(&keys, 2, 4);
        let large = PgmIndex::build(&keys, 128, 4);
        assert!(small.segment_count() > large.segment_count());
        assert!(small.size_bytes() > large.size_bytes());
    }
}
