//! PLEX (paper Figure 2(E)): the RadixSpline spline layer with a
//! *self-tuning* Compact Hist-Tree inner index.
//!
//! PLEX's distinguishing feature is that its inner-index shape is not a user
//! parameter: at build time it searches over hist-tree configurations and
//! keeps the cheapest one whose worst-case leaf run stays small. That search
//! is real work — the paper measures PLEX spending 10–15% of compaction time
//! in training versus <5% for the other indexes, and this implementation
//! reproduces that by actually building and discarding candidate trees.

use crate::codec::{self, DecodeError, Reader};
use crate::histtree::HistTree;
use crate::spline::{self, SplinePoint};
use crate::{IndexKind, SearchBound, SegmentIndex};

/// Maximum knot-run a self-tuned hist-tree leaf may cover.
const TARGET_LEAF_RUN: usize = 16;

/// PLEX index.
#[derive(Debug, Clone)]
pub struct PlexIndex {
    knots: Vec<SplinePoint>,
    tree: HistTree,
    n: u32,
    eps: u32,
}

impl PlexIndex {
    /// Build over `keys` (sorted, distinct) with error bound `eps`,
    /// self-tuning *both* layers: candidate splines (at ε and tighter) are
    /// each paired with a swept hist-tree, and the cheapest pair wins. This
    /// joint search is what makes PLEX the most expensive trainer in the
    /// paper's Figure 9 (10–15% of compaction vs <5% for the others) — and
    /// it is real work here too, since every candidate is actually built.
    pub fn build(keys: &[u64], eps: usize) -> Self {
        let mut best: Option<(Vec<SplinePoint>, HistTree)> = None;
        for cand_eps in [eps, (eps / 2).max(1)] {
            let knots = spline::build_spline(keys, cand_eps);
            let knot_keys: Vec<u64> = knots.iter().map(|k| k.key).collect();
            let tree = Self::self_tune(&knot_keys);
            let size = knots.len() * SplinePoint::ENCODED_LEN + tree.size_bytes();
            let better = best.as_ref().is_none_or(|(bk, bt)| {
                size < bk.len() * SplinePoint::ENCODED_LEN + bt.size_bytes()
            });
            if better {
                best = Some((knots, tree));
            }
            if cand_eps == 1 {
                break; // ε=1 would repeat itself
            }
        }
        let (knots, tree) = best.expect("at least one candidate built");
        Self {
            knots,
            tree,
            n: keys.len() as u32,
            eps: eps as u32,
        }
    }

    /// Try several bits-per-node settings, keep the smallest tree whose
    /// worst-case leaf run meets [`TARGET_LEAF_RUN`]; fall back to the tree
    /// with the best (smallest) run if none meets it.
    fn self_tune(knot_keys: &[u64]) -> HistTree {
        let mut best: Option<HistTree> = None;
        let mut best_fallback: Option<HistTree> = None;
        for bits in [2u32, 4, 6, 8, 10] {
            let t = HistTree::build(knot_keys, bits, TARGET_LEAF_RUN);
            let run = t.max_leaf_run();
            if run <= TARGET_LEAF_RUN + 1 {
                let better = best
                    .as_ref()
                    .is_none_or(|b| t.size_bytes() < b.size_bytes());
                if better {
                    best = Some(t.clone());
                }
            }
            let better_fb = best_fallback
                .as_ref()
                .is_none_or(|b| run < b.max_leaf_run());
            if better_fb {
                best_fallback = Some(t);
            }
        }
        best.or(best_fallback)
            .unwrap_or_else(|| HistTree::build(knot_keys, 4, TARGET_LEAF_RUN))
    }

    fn locate_knot(&self, key: u64) -> usize {
        let (lo, hi) = self.tree.lookup(key);
        let hi = hi.min(self.knots.len() - 1);
        let lo = lo.min(hi);
        let window = &self.knots[lo..=hi];
        let in_window = window.partition_point(|k| k.key <= key);
        // Defensive fallbacks if the hist-tree window missed (contract says
        // it cannot, but a full binary search is cheap insurance).
        if in_window == 0 && lo > 0 && self.knots[lo].key > key {
            return self.knots[..lo]
                .partition_point(|k| k.key <= key)
                .saturating_sub(1);
        }
        let cand = lo + in_window.saturating_sub(1);
        if cand == hi && hi + 1 < self.knots.len() && self.knots[hi + 1].key <= key {
            return hi + self.knots[hi + 1..].partition_point(|k| k.key <= key);
        }
        cand
    }

    /// Number of spline knots.
    pub fn knot_count(&self) -> usize {
        self.knots.len()
    }

    /// The tuned hist-tree (exposed for the ablation bench).
    pub fn tree(&self) -> &HistTree {
        &self.tree
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.u32("plex.n")?;
        let eps = r.u32("plex.eps")?;
        let knots = spline::decode_knots(r)?;
        let knot_keys: Vec<u64> = knots.iter().map(|k| k.key).collect();
        let tree = HistTree::decode_and_build(r, &knot_keys)?;
        Ok(Self {
            knots,
            tree,
            n,
            eps,
        })
    }
}

impl SegmentIndex for PlexIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Plex
    }

    fn predict(&self, key: u64) -> SearchBound {
        let n = self.n as usize;
        if n == 0 || self.knots.is_empty() {
            return SearchBound { lo: 0, hi: 0 };
        }
        let s = self.locate_knot(key);
        let pred = spline::predict_at(&self.knots, s, key, n);
        SearchBound::around(pred, self.eps as usize + 1, n)
    }

    fn size_bytes(&self) -> usize {
        self.knots.len() * SplinePoint::ENCODED_LEN
            + self.tree.size_bytes()
            + std::mem::size_of::<Self>()
    }

    fn segment_count(&self) -> usize {
        self.knots.len().saturating_sub(1)
    }

    fn key_count(&self) -> usize {
        self.n as usize
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u8(out, self.kind().tag());
        codec::put_u32(out, self.n);
        codec::put_u32(out, self.eps);
        spline::encode_knots(out, &self.knots);
        self.tree.encode_params(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radixspline::RadixSplineIndex;

    fn keys(n: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).map(|i| i * 13 + (i % 101) * (i % 7)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn present_keys_within_bound() {
        let ks = keys(30_000);
        for eps in [2usize, 16, 128] {
            let idx = PlexIndex::build(&ks, eps);
            for (pos, &k) in ks.iter().enumerate().step_by(61) {
                let b = idx.predict(k);
                assert!(b.contains(pos), "eps={eps} pos={pos} b={b:?}");
            }
        }
    }

    #[test]
    fn comparable_to_radixspline() {
        // PLEX's joint self-tuning may pick a tighter spline than RS's, so
        // predictions need not be identical — but both must honour the same
        // configured bound, and PLEX must not be larger than RS by more than
        // its hist-tree overhead.
        let ks = keys(20_000);
        let plex = PlexIndex::build(&ks, 8);
        let rs = RadixSplineIndex::build(&ks, 8, 1);
        for (pos, &k) in ks.iter().enumerate().step_by(173) {
            assert!(plex.predict(k).contains(pos));
            assert!(rs.predict(k).contains(pos));
        }
        assert!(plex.size_bytes() < 4 * rs.size_bytes());
    }

    #[test]
    fn locate_knot_matches_binary_search() {
        let ks = keys(10_000);
        let idx = PlexIndex::build(&ks, 8);
        for probe in ks.iter().step_by(11).copied().chain([0, u64::MAX]) {
            let expected = idx
                .knots
                .partition_point(|k| k.key <= probe)
                .saturating_sub(1);
            assert_eq!(idx.locate_knot(probe), expected, "probe={probe}");
        }
    }

    #[test]
    fn self_tuning_bounds_leaf_runs() {
        let ks = keys(50_000);
        let idx = PlexIndex::build(&ks, 4);
        assert!(
            idx.tree().max_leaf_run() <= 64,
            "self-tuned run {} too large",
            idx.tree().max_leaf_run()
        );
    }

    #[test]
    fn empty_and_single() {
        let idx = PlexIndex::build(&[], 4);
        assert_eq!(idx.predict(1), SearchBound { lo: 0, hi: 0 });
        let idx = PlexIndex::build(&[5], 4);
        assert!(idx.predict(5).contains(0));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ks = keys(15_000);
        let idx = PlexIndex::build(&ks, 16);
        let back = IndexKind::decode(&idx.encode()).unwrap();
        assert_eq!(back.kind(), IndexKind::Plex);
        for &k in ks.iter().step_by(89) {
            assert_eq!(back.predict(k), idx.predict(k));
        }
    }
}
