//! Compact Hist-Tree substrate: PLEX's inner index over spline knots
//! (paper Figure 2(E)).
//!
//! Each node splits its key range into `2^bits` equal-width bins; a bin
//! either points at a child node (dense bins) or is a leaf delimiting a small
//! run of knots. Because bins are equal-width, descending costs one shift and
//! one array access per level — no comparisons until the final short run.

use crate::codec::{self, DecodeError, Reader};

/// Bin entry: leaf (`child == NONE`) or internal pointer.
const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    /// Smallest key covered by this node.
    base: u64,
    /// log2 of the bin width (keys per bin = `1 << shift`).
    shift: u32,
    /// For bin `b`: index of the first knot with key ≥ `base + b * width`.
    firsts: Vec<u32>,
    /// Child node id per bin, or `NONE` for leaf bins.
    children: Vec<u32>,
}

/// A compact hist-tree over a sorted key array (spline knot keys).
#[derive(Debug, Clone)]
pub struct HistTree {
    nodes: Vec<Node>,
    bits: u32,
    leaf_threshold: usize,
    n: usize,
}

impl HistTree {
    /// Build over sorted distinct `keys`, splitting bins with more than
    /// `leaf_threshold` keys.
    pub fn build(keys: &[u64], bits: u32, leaf_threshold: usize) -> Self {
        let bits = bits.clamp(1, 16);
        let leaf_threshold = leaf_threshold.max(2);
        let mut tree = Self {
            nodes: Vec::new(),
            bits,
            leaf_threshold,
            n: keys.len(),
        };
        if keys.len() > 1 {
            tree.build_node(
                keys,
                0,
                keys.len(),
                keys[0],
                *keys.last().expect("non-empty"),
                0,
            );
        }
        tree
    }

    /// Recursively build the node covering `keys[lo..hi]` spanning
    /// `[min_key, max_key]`. Returns the node id.
    fn build_node(
        &mut self,
        keys: &[u64],
        lo: usize,
        hi: usize,
        min_key: u64,
        max_key: u64,
        depth: u32,
    ) -> u32 {
        let fanout = 1usize << self.bits;
        let span = (max_key - min_key).max(1);
        // Bin width = 2^shift, smallest power of two with span/width < fanout.
        let needed = 64 - span.leading_zeros();
        let shift = needed.saturating_sub(self.bits);

        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            base: min_key,
            shift,
            firsts: vec![0; fanout + 1],
            children: vec![NONE; fanout],
        });

        // Partition keys[lo..hi] into bins.
        let mut bin_start = vec![hi; fanout + 1];
        {
            let mut b = 0usize;
            for (i, &k) in keys[lo..hi].iter().enumerate() {
                let kb = (((k - min_key) >> shift) as usize).min(fanout - 1);
                while b <= kb {
                    bin_start[b] = lo + i;
                    b += 1;
                }
            }
            while b <= fanout {
                bin_start[b] = hi;
                b += 1;
            }
        }
        for (slot, &s) in bin_start.iter().enumerate() {
            self.nodes[id as usize].firsts[slot] = s as u32;
        }

        // Recurse into dense bins (depth-capped so adversarial keys cannot
        // blow up the tree).
        if depth < 12 {
            for b in 0..fanout {
                let s = bin_start[b];
                let e = bin_start[b + 1];
                if e - s > self.leaf_threshold {
                    let bin_min = min_key + ((b as u64) << shift);
                    let bin_max = (min_key + (((b + 1) as u64) << shift)).saturating_sub(1);
                    let child = self.build_node(
                        keys,
                        s,
                        e,
                        bin_min.max(keys[s]),
                        bin_max.min(keys[e - 1]).max(bin_min),
                        depth + 1,
                    );
                    self.nodes[id as usize].children[b] = child;
                }
            }
        }
        id
    }

    /// Range `[lo, hi]` (inclusive) of key indices that may contain the last
    /// key ≤ `query`.
    pub fn lookup(&self, query: u64) -> (usize, usize) {
        if self.n <= 1 {
            return (0, 0);
        }
        let last = self.n - 1;
        let mut node = &self.nodes[0];
        loop {
            let fanout = node.children.len();
            // Queries below a node's base (possible at child nodes whose base
            // was clamped to the bin's first key) fall into bin 0.
            let b = ((query.saturating_sub(node.base) >> node.shift) as usize).min(fanout - 1);
            let child = node.children[b];
            if child == NONE {
                let lo = (node.firsts[b] as usize).saturating_sub(1).min(last);
                let hi = (node.firsts[b + 1] as usize).min(last);
                return (lo, hi);
            }
            node = &self.nodes[child as usize];
        }
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Full footprint: per node, `fanout` first-indices + child pointers.
    pub fn size_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.firsts.len() * 4 + n.children.len() * 4 + 16)
            .sum()
    }

    /// Configured bits per node.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Leaf run threshold.
    pub fn leaf_threshold(&self) -> usize {
        self.leaf_threshold
    }

    /// Worst-case leaf run length over all reachable leaf bins.
    pub fn max_leaf_run(&self) -> usize {
        let mut worst = 0usize;
        for node in &self.nodes {
            for b in 0..node.children.len() {
                if node.children[b] == NONE {
                    let run = node.firsts[b + 1].saturating_sub(node.firsts[b]) as usize;
                    worst = worst.max(run);
                }
            }
        }
        worst.max(1)
    }

    /// Serialize parameters only (`bits`, `leaf_threshold`); the tree is
    /// rebuilt from the knot keys on decode.
    pub fn encode_params(&self, out: &mut Vec<u8>) {
        codec::put_u32(out, self.bits);
        codec::put_u32(out, self.leaf_threshold as u32);
    }

    /// Decode parameters written by [`HistTree::encode_params`] and rebuild.
    pub fn decode_and_build(r: &mut Reader<'_>, keys: &[u64]) -> Result<Self, DecodeError> {
        let bits = r.u32("hist.bits")?;
        let threshold = r.u32("hist.threshold")? as usize;
        if bits == 0 || bits > 16 {
            return Err(DecodeError::Corrupt("hist.bits"));
        }
        Ok(Self::build(keys, bits, threshold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(keys: &[u64], q: u64) -> usize {
        keys.partition_point(|&k| k <= q).saturating_sub(1)
    }

    fn check_lookup(keys: &[u64], tree: &HistTree, q: u64) {
        let (lo, hi) = tree.lookup(q);
        let want = reference(keys, q);
        assert!(
            lo <= want && want <= hi,
            "q={q} want={want} got=({lo},{hi})"
        );
    }

    #[test]
    fn covers_reference_rank_uniform() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 97 + 13).collect();
        let t = HistTree::build(&keys, 6, 8);
        for q in (0..1_000_000u64).step_by(1009) {
            check_lookup(&keys, &t, q);
        }
        check_lookup(&keys, &t, 0);
        check_lookup(&keys, &t, u64::MAX);
    }

    #[test]
    fn covers_reference_rank_clustered() {
        let mut keys = Vec::new();
        for c in 0..50u64 {
            keys.extend((0..200).map(|i| c * 10_000_000 + i));
        }
        let t = HistTree::build(&keys, 4, 16);
        for &k in keys.iter().step_by(37) {
            check_lookup(&keys, &t, k);
            check_lookup(&keys, &t, k + 1);
        }
    }

    #[test]
    fn leaf_runs_bounded_for_uniformish_keys() {
        let keys: Vec<u64> = (0..50_000u64).map(|i| i * 1000 + (i % 7)).collect();
        let t = HistTree::build(&keys, 8, 16);
        // +1 because leaf range includes one predecessor slot.
        assert!(t.max_leaf_run() <= 16 + 1, "got {}", t.max_leaf_run());
    }

    #[test]
    fn more_bits_fewer_levels_more_memory() {
        let keys: Vec<u64> = (0..100_000u64).map(|i| i * 31).collect();
        let narrow = HistTree::build(&keys, 2, 8);
        let wide = HistTree::build(&keys, 10, 8);
        assert!(wide.node_count() <= narrow.node_count());
    }

    #[test]
    fn tiny_inputs() {
        let t = HistTree::build(&[], 4, 8);
        assert_eq!(t.lookup(5), (0, 0));
        let t = HistTree::build(&[9], 4, 8);
        assert_eq!(t.lookup(9), (0, 0));
        let t = HistTree::build(&[3, 8], 4, 8);
        check_lookup(&[3, 8], &t, 0);
        check_lookup(&[3, 8], &t, 5);
        check_lookup(&[3, 8], &t, 100);
    }

    #[test]
    fn params_roundtrip() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 3).collect();
        let t = HistTree::build(&keys, 5, 12);
        let mut buf = Vec::new();
        t.encode_params(&mut buf);
        let mut r = Reader::new(&buf);
        let back = HistTree::decode_and_build(&mut r, &keys).unwrap();
        assert_eq!(back.bits(), 5);
        assert_eq!(back.leaf_threshold(), 12);
        for q in (0..3100u64).step_by(17) {
            assert_eq!(back.lookup(q), t.lookup(q));
        }
    }
}
