//! Piece-wise Linear Regression index (paper Figure 2(A); Bourbon's model).
//!
//! Greedy shrinking-cone segments with the *simplest possible* inner index:
//! a sorted array of segment first-keys searched by binary search. The paper
//! highlights PLR's lightweight inner structure as the reason its
//! memory-latency tradeoff stays competitive despite the unsophisticated
//! segmentation.

use crate::codec::{self, DecodeError, Reader};
use crate::cone::{segment_keys, Segment};
use crate::{IndexKind, SearchBound, SegmentIndex};

/// PLR: ε-bounded greedy segments + binary search over first keys.
#[derive(Debug, Clone)]
pub struct PlrIndex {
    segments: Vec<Segment>,
    n: u32,
    eps: u32,
}

impl PlrIndex {
    /// Build over `keys` (sorted, distinct) with error bound `eps`.
    pub fn build(keys: &[u64], eps: usize) -> Self {
        Self {
            segments: segment_keys(keys, eps),
            n: keys.len() as u32,
            eps: eps as u32,
        }
    }

    /// Index of the segment responsible for `key`.
    #[inline]
    pub(crate) fn locate_segment(segments: &[Segment], key: u64) -> usize {
        // partition_point: first segment with first_key > key; responsible
        // segment is the one before (or 0 when key precedes everything).
        segments
            .partition_point(|s| s.first_key <= key)
            .saturating_sub(1)
    }

    /// End position (exclusive) of segment `i`.
    #[inline]
    pub(crate) fn segment_end(segments: &[Segment], i: usize, n: usize) -> usize {
        segments.get(i + 1).map_or(n, |s| s.start_pos as usize)
    }

    /// The underlying segments (used by the serialization tests and the
    /// FITing-Tree which shares the layout).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Error bound the index was built with.
    pub fn epsilon(&self) -> usize {
        self.eps as usize
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.u32("plr.n")?;
        let eps = r.u32("plr.eps")?;
        let count = r.u32("plr.segment_count")? as usize;
        // Validate against both the key count and the actual remaining
        // payload so corrupt lengths cannot trigger huge allocations.
        if (count > n as usize && n > 0) || count * Segment::ENCODED_LEN > r.remaining() {
            return Err(DecodeError::Corrupt("plr.segment_count"));
        }
        let mut segments = Vec::with_capacity(count);
        for _ in 0..count {
            segments.push(Segment::decode(r)?);
        }
        if !segments_well_formed(&segments, n as usize) {
            return Err(DecodeError::Corrupt("plr.segments"));
        }
        Ok(Self { segments, n, eps })
    }
}

/// Structural validity of a decoded segment array: strictly key-sorted,
/// strictly position-sorted, positions within the key count.
pub(crate) fn segments_well_formed(segments: &[Segment], n: usize) -> bool {
    segments
        .windows(2)
        .all(|w| w[0].first_key < w[1].first_key && w[0].start_pos < w[1].start_pos)
        && segments.iter().all(|s| (s.start_pos as usize) < n.max(1))
        && segments.first().map_or(n == 0, |s| s.start_pos == 0)
}

impl SegmentIndex for PlrIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Plr
    }

    fn predict(&self, key: u64) -> SearchBound {
        let n = self.n as usize;
        if self.segments.is_empty() || n == 0 {
            return SearchBound { lo: 0, hi: 0 };
        }
        let si = Self::locate_segment(&self.segments, key);
        let end = Self::segment_end(&self.segments, si, n);
        let pred = self.segments[si].predict(key, end);
        SearchBound::around(pred, self.eps as usize, n)
    }

    fn size_bytes(&self) -> usize {
        // Sorted array of (key, slope, intercept) triples.
        self.segments.len() * Segment::ENCODED_LEN + std::mem::size_of::<Self>()
    }

    fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn key_count(&self) -> usize {
        self.n as usize
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u8(out, self.kind().tag());
        codec::put_u32(out, self.n);
        codec::put_u32(out, self.eps);
        codec::put_u32(out, self.segments.len() as u32);
        for s in &self.segments {
            s.encode_into(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bumpy_keys(n: u64) -> Vec<u64> {
        let mut keys: Vec<u64> = (0..n).map(|i| i * 5 + (i % 97) * (i % 13)).collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    #[test]
    fn present_keys_within_bound() {
        let keys = bumpy_keys(20_000);
        for eps in [1usize, 8, 64] {
            let idx = PlrIndex::build(&keys, eps);
            for (pos, &k) in keys.iter().enumerate().step_by(37) {
                let b = idx.predict(k);
                assert!(b.contains(pos), "eps={eps} key={k} pos={pos} bound={b:?}");
                assert!(b.len() <= 2 * eps + 1);
            }
        }
    }

    #[test]
    fn absent_keys_bound_near_insertion_point() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 10).collect();
        let idx = PlrIndex::build(&keys, 4);
        for probe in [5u64, 15, 99_995, 42_001] {
            let ip = keys.partition_point(|&k| k < probe);
            let b = idx.predict(probe);
            assert!(
                b.lo <= ip && ip <= b.hi,
                "probe={probe} ip={ip} bound={b:?}"
            );
        }
    }

    #[test]
    fn key_below_everything_maps_to_front() {
        let keys: Vec<u64> = (100..200u64).collect();
        let idx = PlrIndex::build(&keys, 2);
        let b = idx.predict(0);
        assert_eq!(b.lo, 0);
    }

    #[test]
    fn key_above_everything_maps_to_back() {
        let keys: Vec<u64> = (100..200u64).collect();
        let idx = PlrIndex::build(&keys, 2);
        let b = idx.predict(u64::MAX);
        assert!(b.contains(99));
    }

    #[test]
    fn empty_index() {
        let idx = PlrIndex::build(&[], 4);
        assert_eq!(idx.predict(5), SearchBound { lo: 0, hi: 0 });
        assert_eq!(idx.segment_count(), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let keys = bumpy_keys(5_000);
        let idx = PlrIndex::build(&keys, 8);
        let bytes = idx.encode();
        let back = IndexKind::decode(&bytes).unwrap();
        assert_eq!(back.kind(), IndexKind::Plr);
        assert_eq!(back.segment_count(), idx.segment_count());
        for &k in keys.iter().step_by(53) {
            assert_eq!(back.predict(k), idx.predict(k));
        }
    }

    #[test]
    fn size_scales_with_segments() {
        let keys: Vec<u64> = (0..50_000u64).map(|i| i * i % (1 << 40)).collect();
        let mut keys = keys;
        keys.sort_unstable();
        keys.dedup();
        let small_eps = PlrIndex::build(&keys, 2);
        let large_eps = PlrIndex::build(&keys, 128);
        assert!(small_eps.size_bytes() > large_eps.size_bytes());
    }
}
