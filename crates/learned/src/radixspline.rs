//! RadixSpline (paper Figure 2(D)): greedy spline + radix table.
//!
//! The radix table maps the top `radix_bits` of `key - min_key` to the range
//! of spline knots sharing that prefix, replacing most of the binary search
//! over knots. The paper tunes `RadixBits = 1` for LSM-trees (bigger tables
//! buy little once tables are per-SSTable) — the parameter stays
//! configurable here.

use crate::codec::{self, DecodeError, Reader};
use crate::spline::{self, SplinePoint};
use crate::{IndexKind, SearchBound, SegmentIndex};

/// Radix table over spline-knot keys: `table[p]` = index of the first knot
/// whose shifted prefix is ≥ `p`.
#[derive(Debug, Clone, PartialEq)]
struct RadixTable {
    bits: u32,
    shift: u32,
    min_key: u64,
    table: Vec<u32>,
}

impl RadixTable {
    fn build(knots: &[SplinePoint], bits: u32) -> Self {
        let bits = bits.clamp(1, 24);
        let min_key = knots.first().map_or(0, |k| k.key);
        let max_key = knots.last().map_or(0, |k| k.key);
        let span = max_key - min_key;
        // Smallest shift such that span >> shift fits in `bits` bits.
        let needed = 64 - span.leading_zeros();
        let shift = needed.saturating_sub(bits);
        let buckets = 1usize << bits;
        let mut table = vec![u32::MAX; buckets + 1];
        for (i, k) in knots.iter().enumerate() {
            let p = ((k.key - min_key) >> shift) as usize;
            if table[p] == u32::MAX {
                table[p] = i as u32;
            }
        }
        // Back-fill empty buckets with the next non-empty one (CSR style).
        let mut next = knots.len() as u32;
        for slot in table.iter_mut().rev() {
            if *slot == u32::MAX {
                *slot = next;
            } else {
                next = *slot;
            }
        }
        Self {
            bits,
            shift,
            min_key,
            table,
        }
    }

    /// Knot index range `[lo, hi]` (inclusive hi) that may contain the last
    /// knot with `knot.key <= key`.
    fn lookup(&self, key: u64, knot_count: usize) -> (usize, usize) {
        if key <= self.min_key {
            return (0, 0);
        }
        let p = (((key - self.min_key) >> self.shift) as usize).min(self.table.len() - 2);
        let lo = self.table[p] as usize;
        let hi = (self.table[p + 1] as usize).min(knot_count.saturating_sub(1));
        (lo.saturating_sub(1).min(hi), hi)
    }

    fn size_bytes(&self) -> usize {
        self.table.len() * 4 + 24
    }
}

/// RadixSpline index.
#[derive(Debug, Clone)]
pub struct RadixSplineIndex {
    knots: Vec<SplinePoint>,
    radix: RadixTable,
    n: u32,
    eps: u32,
}

impl RadixSplineIndex {
    /// Build over `keys` (sorted, distinct) with error `eps` and the given
    /// radix table width.
    pub fn build(keys: &[u64], eps: usize, radix_bits: u32) -> Self {
        let knots = spline::build_spline(keys, eps);
        let radix = RadixTable::build(&knots, radix_bits);
        Self {
            knots,
            radix,
            n: keys.len() as u32,
            eps: eps as u32,
        }
    }

    /// Index of the last knot with `key <= query` (0 if query precedes all).
    fn locate_knot(&self, key: u64) -> usize {
        let (lo, hi) = self.radix.lookup(key, self.knots.len());
        let window = &self.knots[lo..=hi];
        lo + window.partition_point(|k| k.key <= key).saturating_sub(1)
    }

    /// Number of spline knots.
    pub fn knot_count(&self) -> usize {
        self.knots.len()
    }

    pub(crate) fn decode_body(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.u32("rs.n")?;
        let eps = r.u32("rs.eps")?;
        let bits = r.u32("rs.bits")?;
        let knots = spline::decode_knots(r)?;
        if knots.is_empty() && n > 0 {
            return Err(DecodeError::Corrupt("rs.knots"));
        }
        let radix = RadixTable::build(&knots, bits);
        Ok(Self {
            knots,
            radix,
            n,
            eps,
        })
    }
}

impl SegmentIndex for RadixSplineIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::RadixSpline
    }

    fn predict(&self, key: u64) -> SearchBound {
        let n = self.n as usize;
        if n == 0 || self.knots.is_empty() {
            return SearchBound { lo: 0, hi: 0 };
        }
        let s = self.locate_knot(key);
        let pred = spline::predict_at(&self.knots, s, key, n);
        // +1 absorbs interpolation rounding.
        SearchBound::around(pred, self.eps as usize + 1, n)
    }

    fn size_bytes(&self) -> usize {
        self.knots.len() * SplinePoint::ENCODED_LEN
            + self.radix.size_bytes()
            + std::mem::size_of::<Self>()
    }

    fn segment_count(&self) -> usize {
        self.knots.len().saturating_sub(1)
    }

    fn key_count(&self) -> usize {
        self.n as usize
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u8(out, self.kind().tag());
        codec::put_u32(out, self.n);
        codec::put_u32(out, self.eps);
        codec::put_u32(out, self.radix.bits);
        spline::encode_knots(out, &self.knots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy_keys(n: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).map(|i| i * 11 + (i % 89) * (i % 17)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn present_keys_within_bound() {
        let keys = wavy_keys(25_000);
        for bits in [1u32, 8, 16] {
            for eps in [2usize, 16, 128] {
                let idx = RadixSplineIndex::build(&keys, eps, bits);
                for (pos, &k) in keys.iter().enumerate().step_by(53) {
                    let b = idx.predict(k);
                    assert!(b.contains(pos), "bits={bits} eps={eps} pos={pos} b={b:?}");
                }
            }
        }
    }

    #[test]
    fn locate_knot_matches_global_binary_search() {
        let keys = wavy_keys(10_000);
        let idx = RadixSplineIndex::build(&keys, 8, 4);
        for probe in keys.iter().step_by(7).copied().chain([0, u64::MAX]) {
            let expected = idx
                .knots
                .partition_point(|k| k.key <= probe)
                .saturating_sub(1);
            assert_eq!(idx.locate_knot(probe), expected, "probe={probe}");
        }
    }

    #[test]
    fn radix_table_narrower_with_more_bits() {
        let keys = wavy_keys(50_000);
        let one = RadixSplineIndex::build(&keys, 8, 1);
        let many = RadixSplineIndex::build(&keys, 8, 12);
        assert!(many.radix.size_bytes() > one.radix.size_bytes());
        // Same answers regardless of table width.
        for &k in keys.iter().step_by(211) {
            assert_eq!(one.predict(k), many.predict(k));
        }
    }

    #[test]
    fn absent_keys_get_usable_bounds() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 10).collect();
        let idx = RadixSplineIndex::build(&keys, 8, 2);
        for probe in [5u64, 99_995, 50_001] {
            let ip = keys.partition_point(|&k| k < probe);
            let b = idx.predict(probe);
            assert!(b.lo <= ip && ip <= b.hi, "probe={probe} ip={ip} b={b:?}");
        }
    }

    #[test]
    fn empty_and_single() {
        let idx = RadixSplineIndex::build(&[], 4, 1);
        assert_eq!(idx.predict(3), SearchBound { lo: 0, hi: 0 });
        let idx = RadixSplineIndex::build(&[42], 4, 1);
        assert!(idx.predict(42).contains(0));
        assert!(idx.predict(0).contains(0));
        assert!(idx.predict(100).contains(0));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let keys = wavy_keys(20_000);
        let idx = RadixSplineIndex::build(&keys, 16, 6);
        let back = IndexKind::decode(&idx.encode()).unwrap();
        assert_eq!(back.kind(), IndexKind::RadixSpline);
        for &k in keys.iter().step_by(97) {
            assert_eq!(back.predict(k), idx.predict(k));
        }
    }
}
