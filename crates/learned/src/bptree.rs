//! Static B+-tree substrate: FITing-Tree's inner index over segment keys
//! (paper Figure 2(B)).
//!
//! Built once per table (LSM SSTables are immutable), so the tree is
//! bulk-loaded into implicit, cache-friendly level arrays: level 0 holds all
//! indexed keys; level `k+1` holds every `fanout`-th key of level `k`. A
//! lookup descends from the top level, narrowing to one `fanout`-wide window
//! per level, and returns the *rank* of the query (index of the last key ≤
//! query). Ranks are exactly segment ids because segments are key-sorted.
//!
//! Memory accounting deliberately charges the full node footprint (keys +
//! child pointers), mirroring a pointer-based B+-tree: this is the extra
//! memory the paper calls out when comparing FITing-Tree against PLR's plain
//! sorted array.

use crate::codec::{self, DecodeError, Reader};

/// Minimum supported fanout (a binary tree would defeat the point).
pub const MIN_FANOUT: usize = 4;

/// Immutable bulk-loaded B+-tree over sorted distinct keys.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    /// `levels[0]` = all keys; `levels.last()` = root level (≤ fanout keys).
    levels: Vec<Vec<u64>>,
    fanout: usize,
}

impl BPlusTree {
    /// Bulk-load from `keys` (sorted, distinct).
    pub fn build(keys: &[u64], fanout: usize) -> Self {
        let fanout = fanout.max(MIN_FANOUT);
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        let mut levels = vec![keys.to_vec()];
        while levels.last().expect("non-empty levels").len() > fanout {
            let below = levels.last().expect("non-empty levels");
            let up: Vec<u64> = below.iter().step_by(fanout).copied().collect();
            levels.push(up);
        }
        Self { levels, fanout }
    }

    /// Rank of `key`: index (in the indexed key array) of the last key
    /// ≤ `key`, or 0 if `key` precedes every indexed key.
    pub fn rank(&self, key: u64) -> usize {
        if self.levels[0].is_empty() {
            return 0;
        }
        // Root: search the whole (small) top level.
        let top = self.levels.last().expect("non-empty levels");
        let mut slot = top.partition_point(|&k| k <= key).saturating_sub(1);
        // Descend: each level narrows to a fanout-wide window.
        for level in self.levels.iter().rev().skip(1) {
            let start = slot * self.fanout;
            let end = (start + self.fanout).min(level.len());
            let window = &level[start..end];
            let inner = window.partition_point(|&k| k <= key).saturating_sub(1);
            slot = start + inner;
        }
        slot
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// Whether the tree indexes no keys.
    pub fn is_empty(&self) -> bool {
        self.levels[0].is_empty()
    }

    /// Height including the leaf level.
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Configured fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Full B+-tree footprint: every node charged `fanout` key slots plus
    /// `fanout` child pointers (8 B each), as a dynamic implementation would
    /// allocate.
    pub fn size_bytes(&self) -> usize {
        let node_bytes = self.fanout * 16;
        self.levels
            .iter()
            .map(|lvl| lvl.len().div_ceil(self.fanout) * node_bytes)
            .sum()
    }

    /// Serialize: fanout + leaf keys (upper levels are rebuilt on decode).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u32(out, self.fanout as u32);
        codec::put_u64_slice(out, &self.levels[0]);
    }

    /// Decode what [`BPlusTree::encode_into`] wrote.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let fanout = r.u32("bptree.fanout")? as usize;
        if fanout < MIN_FANOUT {
            return Err(DecodeError::Corrupt("bptree.fanout"));
        }
        let keys = r.u64_vec("bptree.keys")?;
        Ok(Self::build(&keys, fanout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_rank(keys: &[u64], q: u64) -> usize {
        keys.partition_point(|&k| k <= q).saturating_sub(1)
    }

    #[test]
    fn rank_matches_binary_search() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 7 + 3).collect();
        let t = BPlusTree::build(&keys, 16);
        for q in [0u64, 3, 4, 10, 6_999 * 7 + 3, 70_000, u64::MAX] {
            assert_eq!(t.rank(q), reference_rank(&keys, q), "q={q}");
        }
        for q in (0..70_500u64).step_by(97) {
            assert_eq!(t.rank(q), reference_rank(&keys, q), "q={q}");
        }
    }

    #[test]
    fn height_grows_logarithmically() {
        let keys: Vec<u64> = (0..4_096u64).collect();
        let t = BPlusTree::build(&keys, 16);
        // 4096 keys / fanout 16 → 256 → 16 (root fits in one node): 3 levels.
        assert_eq!(t.height(), 3);
        let t64 = BPlusTree::build(&keys, 64);
        assert!(t64.height() < t.height());
    }

    #[test]
    fn tiny_trees() {
        let t = BPlusTree::build(&[], 16);
        assert!(t.is_empty());
        assert_eq!(t.rank(5), 0);
        let t = BPlusTree::build(&[9], 16);
        assert_eq!(t.rank(0), 0);
        assert_eq!(t.rank(9), 0);
        assert_eq!(t.rank(100), 0);
    }

    #[test]
    fn fanout_clamped_to_minimum() {
        let keys: Vec<u64> = (0..100).collect();
        let t = BPlusTree::build(&keys, 1);
        assert_eq!(t.fanout(), MIN_FANOUT);
        assert_eq!(t.rank(57), 57);
    }

    #[test]
    fn size_exceeds_plain_array() {
        let keys: Vec<u64> = (0..10_000u64).collect();
        let t = BPlusTree::build(&keys, 16);
        assert!(t.size_bytes() > keys.len() * 8, "pointers must be charged");
    }

    #[test]
    fn encode_roundtrip() {
        let keys: Vec<u64> = (0..1_000u64).map(|i| i * 11).collect();
        let t = BPlusTree::build(&keys, 32);
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        let mut r = Reader::new(&buf);
        let back = BPlusTree::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.fanout(), 32);
        for q in (0..11_100u64).step_by(7) {
            assert_eq!(back.rank(q), t.rank(q));
        }
    }
}
