//! Learned index structures over sorted key arrays (paper Sections 3–4).
//!
//! The paper classifies learned indexes into *data-clustered* (keys stay in
//! sorted, contiguous storage — compatible with LSM-trees) and
//! *data-unclustered* (ALEX, LIPP — incompatible without redesigning the
//! SSTable). This crate implements the six data-clustered indexes the paper
//! evaluates, plus the classical fence-pointer baseline:
//!
//! | Index | Segmentation | Inner index over segments |
//! |---|---|---|
//! | [`plr::PlrIndex`] | greedy shrinking cone | sorted array + binary search |
//! | [`fitting::FitingTreeIndex`] | greedy shrinking cone | B+-tree |
//! | [`pgm::PgmIndex`] | optimal streaming (O'Rourke) | recursive PGM levels |
//! | [`radixspline::RadixSplineIndex`] | greedy spline corridor | radix table |
//! | [`plex::PlexIndex`] | greedy spline corridor | compact hist-tree (self-tuned) |
//! | [`rmi::RmiIndex`] | implicit (per-leaf partitions) | top linear model |
//! | [`fence::FencePointerIndex`] | fixed-width blocks | sorted array + binary search |
//!
//! Every index is built over a sorted `&[u64]` and answers
//! [`SegmentIndex::predict`] with a [`SearchBound`] — the *position boundary*
//! of the paper: a half-open range of positions guaranteed to contain the key
//! if it is present. The bound length is the paper's central tuning knob
//! (`2ε`), because it determines how many I/O blocks a lookup must fetch.

pub mod bptree;
pub mod codec;
pub mod cone;
pub mod cost;
pub mod diagnostics;
pub mod fence;
pub mod fitting;
pub mod histtree;
pub mod linear;
pub mod pgm;
pub mod plex;
pub mod plr;
pub mod radixspline;
pub mod rmi;
pub mod spline;

use std::fmt;

pub use cost::TheoreticalCost;
pub use diagnostics::IndexDiagnostics;

/// Half-open position range `[lo, hi)` guaranteed to contain the looked-up
/// key's position (or its insertion point) within the indexed array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBound {
    pub lo: usize,
    pub hi: usize,
}

impl SearchBound {
    /// Construct a bound clamped to `[0, n)` around a predicted position.
    /// The prediction itself is clamped first, so even a corrupt model
    /// parameter (deserialized from a damaged file) can never produce a
    /// bound outside the array.
    #[inline]
    pub fn around(pred: usize, eps: usize, n: usize) -> Self {
        if n == 0 {
            return SearchBound { lo: 0, hi: 0 };
        }
        let pred = pred.min(n - 1);
        let lo = pred.saturating_sub(eps);
        let hi = (pred + eps + 1).min(n);
        SearchBound { lo, hi: hi.max(lo) }
    }

    /// Number of candidate positions.
    #[inline]
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the bound is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }

    /// Whether `pos` falls inside the bound.
    #[inline]
    pub fn contains(&self, pos: usize) -> bool {
        (self.lo..self.hi).contains(&pos)
    }
}

/// The index families evaluated by the paper (Figure 6 legend), in its order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Classical fence pointers (baseline, "FP").
    FencePointers,
    /// FITing-Tree ("FT").
    FitingTree,
    /// Piece-wise Linear Regression as used by Bourbon ("PLR").
    Plr,
    /// PLEX: spline + compact hist-tree.
    Plex,
    /// RadixSpline ("RS").
    RadixSpline,
    /// Two-level Recursive Model Index ("RMI").
    Rmi,
    /// PGM-index ("PGM").
    Pgm,
}

impl IndexKind {
    /// All kinds, in the paper's presentation order.
    pub const ALL: [IndexKind; 7] = [
        IndexKind::FencePointers,
        IndexKind::FitingTree,
        IndexKind::Plr,
        IndexKind::Plex,
        IndexKind::RadixSpline,
        IndexKind::Rmi,
        IndexKind::Pgm,
    ];

    /// The six learned kinds (everything but fence pointers).
    pub const LEARNED: [IndexKind; 6] = [
        IndexKind::FitingTree,
        IndexKind::Plr,
        IndexKind::Plex,
        IndexKind::RadixSpline,
        IndexKind::Rmi,
        IndexKind::Pgm,
    ];

    /// Abbreviation used in the paper's figures.
    pub fn abbrev(&self) -> &'static str {
        match self {
            IndexKind::FencePointers => "FP",
            IndexKind::FitingTree => "FT",
            IndexKind::Plr => "PLR",
            IndexKind::Plex => "PLEX",
            IndexKind::RadixSpline => "RS",
            IndexKind::Rmi => "RMI",
            IndexKind::Pgm => "PGM",
        }
    }

    /// Parse from the paper abbreviation (case-insensitive).
    pub fn from_abbrev(s: &str) -> Option<IndexKind> {
        let up = s.to_ascii_uppercase();
        IndexKind::ALL.iter().copied().find(|k| k.abbrev() == up)
    }

    /// Stable one-byte tag used by the on-disk encoding.
    pub fn tag(&self) -> u8 {
        match self {
            IndexKind::FencePointers => 0,
            IndexKind::FitingTree => 1,
            IndexKind::Plr => 2,
            IndexKind::Plex => 3,
            IndexKind::RadixSpline => 4,
            IndexKind::Rmi => 5,
            IndexKind::Pgm => 6,
        }
    }

    /// Inverse of [`IndexKind::tag`].
    pub fn from_tag(tag: u8) -> Option<IndexKind> {
        IndexKind::ALL.iter().copied().find(|k| k.tag() == tag)
    }

    /// Build an index of this kind over `keys` (sorted, distinct) with the
    /// given configuration.
    pub fn build(&self, keys: &[u64], config: &IndexConfig) -> Box<dyn SegmentIndex> {
        let eps = config.epsilon.max(1);
        match self {
            IndexKind::FencePointers => Box::new(fence::FencePointerIndex::build(keys, eps)),
            IndexKind::FitingTree => Box::new(fitting::FitingTreeIndex::build(
                keys,
                eps,
                config.bptree_fanout,
            )),
            IndexKind::Plr => Box::new(plr::PlrIndex::build(keys, eps)),
            IndexKind::Plex => Box::new(plex::PlexIndex::build(keys, eps)),
            IndexKind::RadixSpline => Box::new(radixspline::RadixSplineIndex::build(
                keys,
                eps,
                config.radix_bits,
            )),
            IndexKind::Rmi => Box::new(rmi::RmiIndex::build_for_epsilon(keys, eps)),
            IndexKind::Pgm => Box::new(pgm::PgmIndex::build(
                keys,
                eps,
                config.pgm_epsilon_recursive,
            )),
        }
    }

    /// Decode an index previously serialized with
    /// [`SegmentIndex::encode_into`]. The payload must start with the kind
    /// tag byte.
    pub fn decode(bytes: &[u8]) -> Result<Box<dyn SegmentIndex>, codec::DecodeError> {
        let (&tag, rest) = bytes
            .split_first()
            .ok_or(codec::DecodeError::UnexpectedEof("kind tag"))?;
        let kind = IndexKind::from_tag(tag).ok_or(codec::DecodeError::BadTag(tag))?;
        let mut r = codec::Reader::new(rest);
        let idx: Box<dyn SegmentIndex> = match kind {
            IndexKind::FencePointers => Box::new(fence::FencePointerIndex::decode_body(&mut r)?),
            IndexKind::FitingTree => Box::new(fitting::FitingTreeIndex::decode_body(&mut r)?),
            IndexKind::Plr => Box::new(plr::PlrIndex::decode_body(&mut r)?),
            IndexKind::Plex => Box::new(plex::PlexIndex::decode_body(&mut r)?),
            IndexKind::RadixSpline => Box::new(radixspline::RadixSplineIndex::decode_body(&mut r)?),
            IndexKind::Rmi => Box::new(rmi::RmiIndex::decode_body(&mut r)?),
            IndexKind::Pgm => Box::new(pgm::PgmIndex::decode_body(&mut r)?),
        };
        r.finish()?;
        Ok(idx)
    }
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Construction parameters for the configuration space of Section 4.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexConfig {
    /// Error bound ε. The paper's *position boundary* is `2ε` (the final
    /// search range the LSM-tree reads from disk).
    pub epsilon: usize,
    /// Paper default `EpsilonRecursive = 4` for PGM's internal levels.
    pub pgm_epsilon_recursive: usize,
    /// Paper-tuned `RadixBits = 1` for RadixSpline's radix table.
    pub radix_bits: u32,
    /// Fanout of FITing-Tree's inner B+-tree.
    pub bptree_fanout: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            epsilon: 32,
            pgm_epsilon_recursive: 4,
            radix_bits: 1,
            bptree_fanout: 16,
        }
    }
}

impl IndexConfig {
    /// Config with a specific position boundary (`2ε`), paper defaults
    /// elsewhere.
    pub fn with_position_boundary(boundary: usize) -> Self {
        Self {
            epsilon: (boundary / 2).max(1),
            ..Self::default()
        }
    }

    /// The resulting position boundary (`2ε`).
    pub fn position_boundary(&self) -> usize {
        self.epsilon * 2
    }
}

/// A learned (or classical) index over one sorted key array.
///
/// Contract: for any `key`, the returned bound contains the *partition point*
/// of `key` in the indexed array — i.e. `keys[p-1] < key <= keys[p]` implies
/// `lo <= p' < hi` for some `p'` with `keys[p'] == key` when present, and the
/// bound always contains either the insertion point or its predecessor. The
/// property tests in `tests/bounds.rs` enforce containment for present keys
/// and usable bounds for absent keys.
pub trait SegmentIndex: Send + Sync {
    /// Which family this index belongs to.
    fn kind(&self) -> IndexKind;

    /// Predict the position range for `key`.
    fn predict(&self, key: u64) -> SearchBound;

    /// Approximate resident memory of the index metadata, in bytes. This is
    /// the "Memory (B)" axis of Figures 6, 8, 11 and 12.
    fn size_bytes(&self) -> usize;

    /// Number of leaf segments / models / pointers.
    fn segment_count(&self) -> usize;

    /// Number of keys the index was built over.
    fn key_count(&self) -> usize;

    /// Serialize, starting with the kind tag byte (see [`IndexKind::decode`]).
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Serialized form as a fresh vector.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_bytes() + 16);
        self.encode_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_bound_around_clamps() {
        let b = SearchBound::around(5, 10, 100);
        assert_eq!(b, SearchBound { lo: 0, hi: 16 });
        let b = SearchBound::around(95, 10, 100);
        assert_eq!(b, SearchBound { lo: 85, hi: 100 });
        let b = SearchBound::around(50, 2, 100);
        assert_eq!(b.len(), 5);
        assert!(b.contains(50));
        assert!(!b.contains(53));
    }

    #[test]
    fn kind_tags_roundtrip() {
        for k in IndexKind::ALL {
            assert_eq!(IndexKind::from_tag(k.tag()), Some(k));
            assert_eq!(IndexKind::from_abbrev(k.abbrev()), Some(k));
        }
        assert_eq!(IndexKind::from_tag(99), None);
        assert_eq!(IndexKind::from_abbrev("nope"), None);
    }

    #[test]
    fn config_boundary_roundtrip() {
        let c = IndexConfig::with_position_boundary(64);
        assert_eq!(c.epsilon, 32);
        assert_eq!(c.position_boundary(), 64);
        // Boundary below 2 clamps to ε=1.
        let c = IndexConfig::with_position_boundary(1);
        assert_eq!(c.epsilon, 1);
    }
}
