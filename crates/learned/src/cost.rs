//! Theoretical cost model of Section 4.1.
//!
//! A data-clustered lookup pays three costs:
//! 1. *inner index access* — depends on the index type;
//! 2. *segment I/O* — `O(2ε·e / B)` blocks where `e` is the entry size and
//!    `B` the I/O block size;
//! 3. *in-segment search* — binary search over the position boundary,
//!    `O(log 2ε)` comparisons.
//!
//! The model backs the analysis bench (which cross-checks measured block
//! counts against the prediction) and documents why position boundary is the
//! dominant knob: cost 2 is the only term multiplied by the ~µs-scale device
//! latency.

use crate::IndexKind;

/// Closed-form lookup cost for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoreticalCost {
    /// Worst-case blocks fetched for the final segment read.
    pub io_blocks: u64,
    /// Comparisons for the in-segment binary search.
    pub in_segment_cmps: u32,
    /// Approximate comparisons/steps to locate the segment in the inner
    /// index.
    pub inner_steps: u32,
}

impl TheoreticalCost {
    /// Compute the worst-case cost of a point lookup.
    ///
    /// * `boundary` — position boundary (2ε), in entries;
    /// * `entry_bytes` — bytes per key-value entry on disk;
    /// * `block_bytes` — I/O block size;
    /// * `segments` — number of segments/pointers in the index.
    pub fn point_lookup(
        kind: IndexKind,
        boundary: usize,
        entry_bytes: usize,
        block_bytes: usize,
        segments: usize,
    ) -> Self {
        let span_bytes = boundary.max(1) as u64 * entry_bytes.max(1) as u64;
        // An unaligned span of b bytes can straddle one extra block.
        let io_blocks = span_bytes.div_ceil(block_bytes.max(1) as u64) + 1;
        let in_segment_cmps = (boundary.max(2) as f64).log2().ceil() as u32;
        let inner_steps = Self::inner_steps(kind, segments);
        Self {
            io_blocks,
            in_segment_cmps,
            inner_steps,
        }
    }

    /// Inner-index access cost in comparisons/hops per Section 3's
    /// structure descriptions.
    pub fn inner_steps(kind: IndexKind, segments: usize) -> u32 {
        let m = segments.max(2) as f64;
        match kind {
            // Binary search over a sorted segment array.
            IndexKind::FencePointers | IndexKind::Plr => m.log2().ceil() as u32,
            // B+-tree descent: log_f(m) nodes, ~log2(f) comparisons each.
            IndexKind::FitingTree => {
                let fanout = 16f64;
                (m.log(fanout).ceil() * fanout.log2()) as u32
            }
            // Radix table hop + short binary search within a bucket.
            IndexKind::RadixSpline => 1 + (m.log2() / 2.0).ceil() as u32,
            // Hist-tree descent (few levels) + short run scan.
            IndexKind::Plex => 3 + 4,
            // Root model + leaf model: two fused multiply-adds.
            IndexKind::Rmi => 2,
            // One model per level, height = log_{2εr}(m); εr = 4 ⇒ base 8.
            IndexKind::Pgm => m.log(8.0).ceil() as u32 + 1,
        }
    }

    /// Dominant-term check: the ratio of modeled I/O time to modeled CPU
    /// time, with `block_ns` per block and `cmp_ns` per comparison. The
    /// paper's Figure 7 observes ≈10× for 4 KiB blocks.
    pub fn io_cpu_ratio(&self, block_ns: u64, cmp_ns: u64) -> f64 {
        let io = (self.io_blocks * block_ns) as f64;
        let cpu = ((self.in_segment_cmps + self.inner_steps) as u64 * cmp_ns).max(1) as f64;
        io / cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_blocks_scale_with_boundary() {
        let small = TheoreticalCost::point_lookup(IndexKind::Pgm, 8, 1024, 4096, 100);
        let big = TheoreticalCost::point_lookup(IndexKind::Pgm, 256, 1024, 4096, 100);
        assert!(big.io_blocks > small.io_blocks);
        // 256 entries × 1024 B = 64 blocks + 1 straddle.
        assert_eq!(big.io_blocks, 65);
        assert_eq!(small.io_blocks, 3);
    }

    #[test]
    fn below_one_block_cost_flattens() {
        // Once the boundary fits in 1–2 blocks, shrinking it stops helping —
        // Observation 2 of the paper.
        let b4 = TheoreticalCost::point_lookup(IndexKind::Pgm, 4, 1024, 4096, 100);
        let b2 = TheoreticalCost::point_lookup(IndexKind::Pgm, 2, 1024, 4096, 100);
        assert_eq!(b4.io_blocks, b2.io_blocks);
    }

    #[test]
    fn io_dominates_cpu_at_paper_scale() {
        let c = TheoreticalCost::point_lookup(IndexKind::Plr, 10, 1024, 4096, 10_000);
        // ~2 µs per block vs ~5 ns per comparison.
        assert!(c.io_cpu_ratio(2_100, 5) > 5.0);
    }

    #[test]
    fn inner_steps_ordering() {
        // RMI's two models are the cheapest inner index; plain binary search
        // over many segments is the most comparisons.
        let m = 100_000;
        assert!(
            TheoreticalCost::inner_steps(IndexKind::Rmi, m)
                < TheoreticalCost::inner_steps(IndexKind::Plr, m)
        );
        assert!(
            TheoreticalCost::inner_steps(IndexKind::RadixSpline, m)
                <= TheoreticalCost::inner_steps(IndexKind::Plr, m)
        );
    }
}
