//! Linear models: the building block of every index in this crate.
//!
//! All models predict a *position* from a key: `pos ≈ slope * key + intercept`
//! (anchored variants subtract a base key first to preserve f64 precision for
//! large key magnitudes).

use crate::codec::{self, DecodeError, Reader};

/// `pos ≈ slope * (key - anchor) + intercept`, with the anchor folded in by
/// the constructor so evaluation is one fma.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    /// Key the model is anchored at (typically the segment's first key).
    pub anchor: u64,
    pub slope: f64,
    pub intercept: f64,
}

impl LinearModel {
    /// Model predicting a constant position.
    pub fn constant(anchor: u64, pos: f64) -> Self {
        Self {
            anchor,
            slope: 0.0,
            intercept: pos,
        }
    }

    /// Predict a (possibly negative / overshooting) floating position.
    #[inline]
    pub fn predict_f64(&self, key: u64) -> f64 {
        // Signed delta so keys below the anchor extrapolate correctly.
        let dx = if key >= self.anchor {
            (key - self.anchor) as f64
        } else {
            -((self.anchor - key) as f64)
        };
        self.slope * dx + self.intercept
    }

    /// Predict a position clamped to `[0, n)`.
    #[inline]
    pub fn predict_clamped(&self, key: u64, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let p = self.predict_f64(key);
        if p <= 0.0 {
            0
        } else {
            (p as usize).min(n - 1)
        }
    }

    /// Least-squares fit over `(key, position)` points with positions
    /// `offset..offset+keys.len()`. Falls back to a constant model for
    /// degenerate inputs (0/1 points or all-equal keys).
    pub fn fit(keys: &[u64], offset: usize) -> Self {
        let n = keys.len();
        if n == 0 {
            return Self::constant(0, offset as f64);
        }
        let anchor = keys[0];
        if n == 1 {
            return Self::constant(anchor, offset as f64);
        }
        // Work in (key - anchor) space to keep sums in f64 range.
        let mut sx = 0.0f64;
        let mut sy = 0.0f64;
        let mut sxx = 0.0f64;
        let mut sxy = 0.0f64;
        for (i, &k) in keys.iter().enumerate() {
            let x = (k - anchor) as f64;
            let y = (offset + i) as f64;
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let nf = n as f64;
        let denom = nf * sxx - sx * sx;
        if denom.abs() < f64::EPSILON {
            return Self::constant(anchor, offset as f64 + (n - 1) as f64 / 2.0);
        }
        let slope = (nf * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / nf;
        Self {
            anchor,
            slope,
            intercept,
        }
    }

    /// Maximum absolute error of this model over `(keys, offset..)`, rounded
    /// up to an integer number of positions.
    pub fn max_error(&self, keys: &[u64], offset: usize) -> usize {
        let mut worst = 0.0f64;
        for (i, &k) in keys.iter().enumerate() {
            let err = (self.predict_f64(k) - (offset + i) as f64).abs();
            if err > worst {
                worst = err;
            }
        }
        worst.ceil() as usize
    }

    /// Serialize (anchor, slope, intercept).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u64(out, self.anchor);
        codec::put_f64(out, self.slope);
        codec::put_f64(out, self.intercept);
    }

    /// Decode what [`LinearModel::encode_into`] wrote.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            anchor: r.u64("linear.anchor")?,
            slope: r.f64("linear.slope")?,
            intercept: r.f64("linear.intercept")?,
        })
    }

    /// Serialized / in-memory footprint.
    pub const ENCODED_LEN: usize = 24;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_on_arithmetic_keys() {
        let keys: Vec<u64> = (0..100).map(|i| 1_000 + i * 10).collect();
        let m = LinearModel::fit(&keys, 50);
        assert_eq!(m.max_error(&keys, 50), 0);
        assert_eq!(m.predict_clamped(1_000, 1 << 20), 50);
        assert_eq!(m.predict_clamped(1_990, 1 << 20), 149);
    }

    #[test]
    fn clamping() {
        let m = LinearModel {
            anchor: 100,
            slope: 1.0,
            intercept: 0.0,
        };
        assert_eq!(m.predict_clamped(0, 10), 0); // negative prediction
        assert_eq!(m.predict_clamped(1_000, 10), 9); // overshoot
        assert_eq!(m.predict_clamped(50, 0), 0); // empty array
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(LinearModel::fit(&[], 3).predict_clamped(5, 10), 3);
        assert_eq!(LinearModel::fit(&[42], 7).predict_clamped(42, 10), 7);
    }

    #[test]
    fn below_anchor_extrapolates_negative() {
        let m = LinearModel {
            anchor: 1000,
            slope: 1.0,
            intercept: 100.0,
        };
        assert_eq!(m.predict_f64(900), 0.0);
        assert!(m.predict_f64(800) < 0.0);
    }

    #[test]
    fn fit_large_keys_precise() {
        // Keys near 2^62: anchoring must keep precision.
        let base = 1u64 << 61;
        let keys: Vec<u64> = (0..1000).map(|i| base + i * 7).collect();
        let m = LinearModel::fit(&keys, 0);
        assert!(m.max_error(&keys, 0) <= 1);
    }

    #[test]
    fn encode_roundtrip() {
        let m = LinearModel {
            anchor: 12345,
            slope: 0.25,
            intercept: -3.5,
        };
        let mut out = Vec::new();
        m.encode_into(&mut out);
        assert_eq!(out.len(), LinearModel::ENCODED_LEN);
        let mut r = Reader::new(&out);
        assert_eq!(LinearModel::decode(&mut r).unwrap(), m);
    }
}
