//! Greedy "shrinking cone" segmentation (FITing-Tree's algorithm, also used
//! by Bourbon's PLR).
//!
//! A segment is anchored at its first point `(k0, p0)`. While scanning, we
//! maintain the interval of slopes that keep *every* seen point within ±ε of
//! the line through the anchor. When a point empties the interval, the
//! segment is closed and a new one starts at that point. One pass, O(n).

use crate::codec::{self, DecodeError, Reader};
use crate::linear::LinearModel;

/// One ε-bounded linear segment: the paper's `(Key, Slope, Intercept)` triple
/// (Figure 2), 24 bytes on disk and in memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First (smallest) key covered by the segment.
    pub first_key: u64,
    /// Position of `first_key` in the indexed array.
    pub start_pos: u32,
    /// Slope of the fitted line (positions per key unit).
    pub slope: f64,
}

impl Segment {
    /// The linear model this segment represents.
    #[inline]
    pub fn model(&self) -> LinearModel {
        LinearModel {
            anchor: self.first_key,
            slope: self.slope,
            intercept: self.start_pos as f64,
        }
    }

    /// Predict the position of `key`, clamped to `[start_pos, end_pos)`.
    #[inline]
    pub fn predict(&self, key: u64, end_pos: usize) -> usize {
        let p = self.model().predict_f64(key);
        let lo = self.start_pos as usize;
        let hi = end_pos.max(lo + 1);
        if p <= lo as f64 {
            lo
        } else {
            (p as usize).min(hi - 1)
        }
    }

    /// Serialized footprint: key + slope + intercept (as in Figure 2).
    pub const ENCODED_LEN: usize = 20;

    /// Serialize this segment.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u64(out, self.first_key);
        codec::put_u32(out, self.start_pos);
        codec::put_f64(out, self.slope);
    }

    /// Decode what [`Segment::encode_into`] wrote.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            first_key: r.u64("segment.first_key")?,
            start_pos: r.u32("segment.start_pos")?,
            slope: r.f64("segment.slope")?,
        })
    }
}

/// Segment `keys` (sorted, distinct) with error bound `eps` using the greedy
/// shrinking cone. Every key's true position is within ±`eps` of its
/// segment's prediction.
pub fn segment_keys(keys: &[u64], eps: usize) -> Vec<Segment> {
    assert!(eps >= 1, "epsilon must be at least 1");
    let mut segments = Vec::new();
    if keys.is_empty() {
        return segments;
    }
    let epsf = eps as f64;

    let mut anchor_key = keys[0];
    let mut anchor_pos = 0usize;
    let mut slope_lo = f64::NEG_INFINITY;
    let mut slope_hi = f64::INFINITY;

    let close = |segments: &mut Vec<Segment>, key: u64, pos: usize, lo: f64, hi: f64| {
        let slope = match (lo.is_finite(), hi.is_finite()) {
            (true, true) => (lo + hi) / 2.0,
            (true, false) => lo.max(0.0),
            // Only an upper bound: the flattest non-negative slope is 0.
            (false, true) => 0.0,
            (false, false) => 0.0,
        };
        segments.push(Segment {
            first_key: key,
            start_pos: pos as u32,
            slope: slope.max(0.0),
        });
    };

    for (i, &k) in keys.iter().enumerate().skip(1) {
        let dx = (k - anchor_key) as f64;
        debug_assert!(dx > 0.0, "keys must be strictly increasing");
        let dy = i as f64 - anchor_pos as f64;
        let lo_req = (dy - epsf) / dx;
        let hi_req = (dy + epsf) / dx;
        let new_lo = slope_lo.max(lo_req);
        let new_hi = slope_hi.min(hi_req);
        if new_lo > new_hi {
            // Cone emptied: close the running segment, restart here.
            close(&mut segments, anchor_key, anchor_pos, slope_lo, slope_hi);
            anchor_key = k;
            anchor_pos = i;
            slope_lo = f64::NEG_INFINITY;
            slope_hi = f64::INFINITY;
        } else {
            slope_lo = new_lo;
            slope_hi = new_hi;
        }
    }
    close(&mut segments, anchor_key, anchor_pos, slope_lo, slope_hi);
    segments
}

/// Verify the ε guarantee of a segmentation over its source keys (test/debug
/// helper; O(n)).
pub fn max_error(segments: &[Segment], keys: &[u64]) -> usize {
    let mut worst = 0usize;
    for (si, seg) in segments.iter().enumerate() {
        let end = segments
            .get(si + 1)
            .map_or(keys.len(), |s| s.start_pos as usize);
        for (pos, &k) in keys[seg.start_pos as usize..end]
            .iter()
            .enumerate()
            .map(|(o, k)| (seg.start_pos as usize + o, k))
        {
            let pred = seg.model().predict_f64(k);
            let err = (pred - pos as f64).abs().ceil() as usize;
            worst = worst.max(err);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arithmetic(n: u64, stride: u64) -> Vec<u64> {
        (0..n).map(|i| 10 + i * stride).collect()
    }

    #[test]
    fn linear_data_needs_one_segment() {
        let keys = arithmetic(10_000, 7);
        let segs = segment_keys(&keys, 4);
        assert_eq!(segs.len(), 1);
        assert_eq!(max_error(&segs, &keys), 0);
    }

    #[test]
    fn error_bound_respected_on_quadratic_data() {
        let keys: Vec<u64> = (0..5_000u64).map(|i| i * i).collect();
        for eps in [1usize, 4, 16, 64] {
            let segs = segment_keys(&keys, eps);
            assert!(
                max_error(&segs, &keys) <= eps,
                "eps={eps} violated: {}",
                max_error(&segs, &keys)
            );
        }
    }

    #[test]
    fn smaller_eps_means_more_segments() {
        let keys: Vec<u64> = (0..20_000u64).map(|i| i * i / 7 + i).collect();
        let s1 = segment_keys(&keys, 2).len();
        let s2 = segment_keys(&keys, 32).len();
        assert!(s1 > s2, "eps=2 gives {s1}, eps=32 gives {s2}");
    }

    #[test]
    fn segments_cover_all_positions() {
        let keys: Vec<u64> = (0..1_000u64).map(|i| i * 3 + (i % 13) * 100).collect();
        let mut keys = keys;
        keys.sort_unstable();
        keys.dedup();
        let segs = segment_keys(&keys, 2);
        assert_eq!(segs[0].start_pos, 0);
        assert!(segs.windows(2).all(|w| w[0].start_pos < w[1].start_pos));
        assert!(segs.windows(2).all(|w| w[0].first_key < w[1].first_key));
        assert!((segs.last().unwrap().start_pos as usize) < keys.len());
    }

    #[test]
    fn single_key() {
        let segs = segment_keys(&[42], 1);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].first_key, 42);
        assert_eq!(segs[0].predict(42, 1), 0);
    }

    #[test]
    fn empty_keys() {
        assert!(segment_keys(&[], 1).is_empty());
    }

    #[test]
    fn predict_clamps_to_segment() {
        let seg = Segment {
            first_key: 100,
            start_pos: 10,
            slope: 1.0,
        };
        assert_eq!(seg.predict(50, 20), 10); // below anchor
        assert_eq!(seg.predict(1_000, 20), 19); // overshoot clamps to end-1
        assert_eq!(seg.predict(105, 20), 15);
    }

    #[test]
    fn encode_roundtrip() {
        let seg = Segment {
            first_key: 7,
            start_pos: 3,
            slope: 0.5,
        };
        let mut out = Vec::new();
        seg.encode_into(&mut out);
        assert_eq!(out.len(), Segment::ENCODED_LEN);
        let mut r = Reader::new(&out);
        assert_eq!(Segment::decode(&mut r).unwrap(), seg);
    }
}
