//! Greedy spline corridor (Neumann & Michel), shared by RadixSpline and PLEX
//! (paper Figures 2(D) and 2(E)).
//!
//! Unlike the shrinking-cone segmentation, spline *knots are actual data
//! points* and consecutive knots are joined by interpolation: the position of
//! any key between two knots is estimated by linear interpolation and is
//! guaranteed to be within ±ε of the truth.

use crate::codec::{self, DecodeError, Reader};

/// A spline knot: an actual `(key, position)` pair from the indexed array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplinePoint {
    pub key: u64,
    pub pos: u32,
}

impl SplinePoint {
    /// Serialized footprint: key + position.
    pub const ENCODED_LEN: usize = 12;
}

/// Build an ε-bounded spline over `keys` (sorted, distinct). The first and
/// last keys are always knots.
pub fn build_spline(keys: &[u64], eps: usize) -> Vec<SplinePoint> {
    assert!(eps >= 1, "epsilon must be at least 1");
    let n = keys.len();
    let mut knots = Vec::new();
    if n == 0 {
        return knots;
    }
    knots.push(SplinePoint {
        key: keys[0],
        pos: 0,
    });
    if n == 1 {
        return knots;
    }

    let epsf = eps as f64;
    let mut base_key = keys[0];
    let mut base_pos = 0usize;
    // Corridor of slopes from the current base knot.
    let mut upper = f64::INFINITY;
    let mut lower = f64::NEG_INFINITY;
    let mut prev_key = keys[0];
    let mut prev_pos = 0usize;

    for (i, &k) in keys.iter().enumerate().skip(1) {
        let dx = (k - base_key) as f64;
        let dy = i as f64 - base_pos as f64;
        let slope_to_point = dy / dx;

        if slope_to_point > upper || slope_to_point < lower {
            // The line base→current leaves the corridor: the previous point
            // becomes a knot and the corridor restarts from it through the
            // current point.
            knots.push(SplinePoint {
                key: prev_key,
                pos: prev_pos as u32,
            });
            base_key = prev_key;
            base_pos = prev_pos;
            let dx = (k - base_key) as f64;
            let dy = i as f64 - base_pos as f64;
            upper = (dy + epsf) / dx;
            lower = (dy - epsf) / dx;
        } else {
            upper = upper.min((dy + epsf) / dx);
            lower = lower.max((dy - epsf) / dx);
        }
        prev_key = k;
        prev_pos = i;
    }
    knots.push(SplinePoint {
        key: prev_key,
        pos: prev_pos as u32,
    });
    knots
}

/// Interpolate the predicted position of `key` between knots `a` and `b`
/// (requires `a.key <= key` and `a.key < b.key`).
#[inline]
pub fn interpolate(a: SplinePoint, b: SplinePoint, key: u64) -> f64 {
    debug_assert!(a.key < b.key);
    let dx = (b.key - a.key) as f64;
    let dy = b.pos as f64 - a.pos as f64;
    let off = (key.min(b.key).saturating_sub(a.key)) as f64;
    a.pos as f64 + dy / dx * off
}

/// Predict `key`'s position given the knot array and the index `s` of the
/// last knot with `key <= key` — clamped into `[0, n)`.
#[inline]
pub fn predict_at(knots: &[SplinePoint], s: usize, key: u64, n: usize) -> usize {
    debug_assert!(n > 0);
    let a = knots[s];
    let p = if s + 1 < knots.len() {
        interpolate(a, knots[s + 1], key)
    } else {
        a.pos as f64
    };
    if p <= 0.0 {
        0
    } else {
        (p as usize).min(n - 1)
    }
}

/// Maximum interpolation error over the source keys (test/debug helper).
pub fn max_error(knots: &[SplinePoint], keys: &[u64]) -> usize {
    let mut worst = 0.0f64;
    let mut s = 0usize;
    for (i, &k) in keys.iter().enumerate() {
        while s + 1 < knots.len() && knots[s + 1].key <= k {
            s += 1;
        }
        let pred = if s + 1 < knots.len() {
            interpolate(knots[s], knots[s + 1], k)
        } else {
            knots[s].pos as f64
        };
        worst = worst.max((pred - i as f64).abs());
    }
    worst.ceil() as usize
}

/// Serialize a knot array.
pub fn encode_knots(out: &mut Vec<u8>, knots: &[SplinePoint]) {
    codec::put_u32(out, knots.len() as u32);
    for k in knots {
        codec::put_u64(out, k.key);
        codec::put_u32(out, k.pos);
    }
}

/// Decode what [`encode_knots`] wrote.
pub fn decode_knots(r: &mut Reader<'_>) -> Result<Vec<SplinePoint>, DecodeError> {
    let count = r.u32("spline.count")? as usize;
    if count * 12 > r.remaining() {
        return Err(DecodeError::Corrupt("spline.count"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(SplinePoint {
            key: r.u64("spline.key")?,
            pos: r.u32("spline.pos")?,
        });
    }
    // Structural validation: knots must be strictly key-sorted with
    // non-decreasing positions, or later interpolation arithmetic would
    // be fed nonsense (and could underflow).
    let sorted = out
        .windows(2)
        .all(|w| w[0].key < w[1].key && w[0].pos <= w[1].pos);
    if !sorted {
        return Err(DecodeError::Corrupt("spline.unsorted"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_data_two_knots() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 5).collect();
        let knots = build_spline(&keys, 4);
        assert_eq!(knots.len(), 2);
        assert_eq!(max_error(&knots, &keys), 0);
    }

    #[test]
    fn error_bound_respected() {
        let keys: Vec<u64> = (0..20_000u64).map(|i| i * i / 11 + i).collect();
        let mut keys = keys;
        keys.sort_unstable();
        keys.dedup();
        for eps in [1usize, 8, 64] {
            let knots = build_spline(&keys, eps);
            let err = max_error(&knots, &keys);
            assert!(err <= eps, "eps={eps} got err={err}");
        }
    }

    #[test]
    fn clustered_keys_error_bound() {
        let mut keys = Vec::new();
        for c in 0..200u64 {
            keys.extend((0..50).map(|i| c * 1_000_000 + i * 7));
        }
        for eps in [2usize, 16] {
            let knots = build_spline(&keys, eps);
            assert!(max_error(&knots, &keys) <= eps);
        }
    }

    #[test]
    fn knots_are_data_points() {
        let keys: Vec<u64> = (0..5_000u64).map(|i| i * i).collect();
        let knots = build_spline(&keys, 4);
        for k in &knots {
            assert_eq!(keys[k.pos as usize], k.key, "knots must be real points");
        }
        assert_eq!(knots.first().unwrap().pos, 0);
        assert_eq!(knots.last().unwrap().pos as usize, keys.len() - 1);
    }

    #[test]
    fn more_eps_fewer_knots() {
        let keys: Vec<u64> = (0..30_000u64).map(|i| i * i / 5).collect();
        let mut keys = keys;
        keys.sort_unstable();
        keys.dedup();
        assert!(build_spline(&keys, 2).len() > build_spline(&keys, 64).len());
    }

    #[test]
    fn degenerate_sizes() {
        assert!(build_spline(&[], 4).is_empty());
        assert_eq!(build_spline(&[9], 4).len(), 1);
        assert_eq!(build_spline(&[9, 10], 4).len(), 2);
    }

    #[test]
    fn interpolate_clamps_to_knot_range() {
        let a = SplinePoint { key: 10, pos: 0 };
        let b = SplinePoint { key: 20, pos: 10 };
        assert_eq!(interpolate(a, b, 10), 0.0);
        assert_eq!(interpolate(a, b, 20), 10.0);
        assert_eq!(interpolate(a, b, 100), 10.0); // clamped at b
        assert_eq!(interpolate(a, b, 15), 5.0);
    }

    #[test]
    fn encode_roundtrip() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i * i).collect();
        let knots = build_spline(&keys, 8);
        let mut buf = Vec::new();
        encode_knots(&mut buf, &knots);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_knots(&mut r).unwrap(), knots);
        r.finish().unwrap();
    }
}
