//! Latency histogram re-export.
//!
//! [`LatencyHistogram`] originated here for the open-loop driver, but
//! the engine and bench crates need distribution-aware recording
//! without a dependency on the server crate, so the implementation now
//! lives in `lsm-obs` (`crates/obs/src/hist.rs`). This module remains
//! so `lsm_server::hist::LatencyHistogram` and the crate-root re-export
//! keep working for existing callers.

pub use lsm_obs::hist::LatencyHistogram;
