//! Pluggable byte transports: real TCP and an in-memory duplex pair.
//!
//! The server accepts [`Connection`]s from anything implementing
//! [`Listener`]; the shipped implementations are [`TcpTransport`]
//! (loopback or real network) and [`MemTransport`] (two in-process byte
//! pipes), so every test and bench can drive the full request path with
//! no sockets, ports, or network at all — the same offline discipline as
//! the rest of the workspace.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use std::sync::{Condvar, Mutex};

/// One accepted (or dialed) duplex byte stream, split into halves so a
/// reader thread and concurrent writers can own them independently.
pub struct Connection {
    /// Where the peer's bytes arrive. Blocking; unblocked (EOF) by
    /// [`Connection::shutdown_read`] or the peer closing.
    pub reader: Box<dyn Read + Send>,
    /// Where bytes to the peer go.
    pub writer: Box<dyn Write + Send>,
    /// Unblocks a blocked read (graceful drain: stop taking input while
    /// responses still flow out the writer).
    shutdown_read: Arc<dyn Fn() + Send + Sync>,
    /// Tears down both directions.
    shutdown_both: Arc<dyn Fn() + Send + Sync>,
    /// Peer label for diagnostics.
    pub peer: String,
}

impl Connection {
    /// Stop the inbound direction: a blocked or future read returns EOF;
    /// the outbound direction keeps working (drain-then-close).
    pub fn shutdown_read(&self) {
        (self.shutdown_read)();
    }

    /// Tear down both directions.
    pub fn shutdown_both(&self) {
        (self.shutdown_both)();
    }

    /// A clonable handle that stops the inbound direction (held by the
    /// server so it can EOF readers it no longer owns the halves of).
    pub fn read_shutdown_handle(&self) -> Arc<dyn Fn() + Send + Sync> {
        Arc::clone(&self.shutdown_read)
    }

    /// A clonable handle that tears down both directions.
    pub fn both_shutdown_handle(&self) -> Arc<dyn Fn() + Send + Sync> {
        Arc::clone(&self.shutdown_both)
    }
}

/// Accepts inbound [`Connection`]s. `accept` blocks; `close` unblocks it
/// permanently (subsequent calls fail), which is how the server's
/// acceptor thread is told to exit.
pub trait Listener: Send + Sync {
    fn accept(&self) -> io::Result<Connection>;
    fn close(&self);
    /// Human-readable endpoint (a TCP address, or `"mem"`).
    fn addr(&self) -> String;
}

// ------------------------------------------------------------------ TCP

/// TCP listener transport. Bind with [`TcpTransport::bind`], dial with
/// [`tcp_connect`].
pub struct TcpTransport {
    listener: TcpListener,
    local: SocketAddr,
    closed: AtomicBool,
}

impl TcpTransport {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok(TcpTransport {
            listener,
            local,
            closed: AtomicBool::new(false),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }
}

impl Listener for TcpTransport {
    fn accept(&self) -> io::Result<Connection> {
        loop {
            let (stream, peer) = self.listener.accept()?;
            if self.closed.load(Ordering::Acquire) {
                // The wake-up dial from `close` (or a straggler racing
                // it): refuse and report closed.
                let _ = stream.shutdown(Shutdown::Both);
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "listener closed"));
            }
            match connection_from_stream(stream, peer.to_string()) {
                Ok(conn) => return Ok(conn),
                Err(_) => continue,
            }
        }
    }

    fn close(&self) {
        if !self.closed.swap(true, Ordering::AcqRel) {
            // Unblock the acceptor with a throwaway self-dial; harmless if
            // accept already returned.
            let _ = TcpStream::connect(self.local);
        }
    }

    fn addr(&self) -> String {
        self.local.to_string()
    }
}

/// Dial a TCP server.
pub fn tcp_connect(addr: &str) -> io::Result<Connection> {
    let stream = TcpStream::connect(addr)?;
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| addr.to_string());
    connection_from_stream(stream, peer)
}

fn connection_from_stream(stream: TcpStream, peer: String) -> io::Result<Connection> {
    // One frame per syscall matters more than Nagle coalescing for a
    // latency benchmark.
    let _ = stream.set_nodelay(true);
    let reader = stream.try_clone()?;
    let writer = stream.try_clone()?;
    let rd = stream.try_clone()?;
    let both = stream;
    Ok(Connection {
        reader: Box::new(reader),
        writer: Box::new(writer),
        shutdown_read: Arc::new(move || {
            let _ = rd.shutdown(Shutdown::Read);
        }),
        shutdown_both: Arc::new(move || {
            let _ = both.shutdown(Shutdown::Both);
        }),
        peer,
    })
}

// ------------------------------------------------------------ in-memory

/// One direction of an in-memory connection: an unbounded byte queue
/// with blocking reads and a close flag.
struct Pipe {
    state: Mutex<PipeState>,
    cv: Condvar,
}

struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Pipe {
    fn new() -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cv.notify_all();
    }
}

/// Reading half of a [`Pipe`].
struct PipeReader(Arc<Pipe>);

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut st = self.0.state.lock().unwrap();
        loop {
            if !st.buf.is_empty() {
                let n = out.len().min(st.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = st.buf.pop_front().unwrap();
                }
                return Ok(n);
            }
            if st.closed {
                return Ok(0); // EOF
            }
            st = self.0.cv.wait(st).unwrap();
        }
    }
}

/// Writing half of a [`Pipe`].
struct PipeWriter(Arc<Pipe>);

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut st = self.0.state.lock().unwrap();
        if st.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
        }
        st.buf.extend(data);
        self.0.cv.notify_all();
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Build the two [`Connection`] ends of one in-memory duplex link.
fn mem_pair(n: u64) -> (Connection, Connection) {
    let c2s = Pipe::new();
    let s2c = Pipe::new();
    let client = {
        let inbound = Arc::clone(&s2c);
        let both_a = Arc::clone(&s2c);
        let both_b = Arc::clone(&c2s);
        Connection {
            reader: Box::new(PipeReader(Arc::clone(&s2c))),
            writer: Box::new(PipeWriter(Arc::clone(&c2s))),
            shutdown_read: Arc::new(move || inbound.close()),
            shutdown_both: Arc::new(move || {
                both_a.close();
                both_b.close();
            }),
            peer: format!("mem:server#{n}"),
        }
    };
    let server = {
        let inbound = Arc::clone(&c2s);
        let both_a = Arc::clone(&c2s);
        let both_b = Arc::clone(&s2c);
        Connection {
            reader: Box::new(PipeReader(Arc::clone(&c2s))),
            writer: Box::new(PipeWriter(Arc::clone(&s2c))),
            shutdown_read: Arc::new(move || inbound.close()),
            shutdown_both: Arc::new(move || {
                both_a.close();
                both_b.close();
            }),
            peer: format!("mem:client#{n}"),
        }
    };
    (client, server)
}

struct MemShared {
    state: Mutex<MemState>,
    cv: Condvar,
}

struct MemState {
    pending: VecDeque<Connection>,
    closed: bool,
    dialed: u64,
}

/// In-memory transport: the [`MemListener`] half of
/// [`MemTransport::endpoint`] goes to the server, any number of
/// [`MemConnector`] clones dial it from other threads.
pub struct MemTransport;

impl MemTransport {
    /// A fresh in-memory endpoint: `(connector, listener)`.
    pub fn endpoint() -> (MemConnector, MemListener) {
        let shared = Arc::new(MemShared {
            state: Mutex::new(MemState {
                pending: VecDeque::new(),
                closed: false,
                dialed: 0,
            }),
            cv: Condvar::new(),
        });
        (MemConnector(Arc::clone(&shared)), MemListener(shared))
    }
}

/// Dials an in-memory listener. Cloneable and `Send`, so load-generator
/// threads can each open their own connection.
#[derive(Clone)]
pub struct MemConnector(Arc<MemShared>);

impl MemConnector {
    /// Open a new connection; fails once the listener is closed.
    pub fn connect(&self) -> io::Result<Connection> {
        let mut st = self.0.state.lock().unwrap();
        if st.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "listener closed"));
        }
        st.dialed += 1;
        let (client, server) = mem_pair(st.dialed);
        st.pending.push_back(server);
        self.0.cv.notify_all();
        Ok(client)
    }
}

/// The accepting end of an in-memory endpoint.
pub struct MemListener(Arc<MemShared>);

impl Listener for MemListener {
    fn accept(&self) -> io::Result<Connection> {
        let mut st = self.0.state.lock().unwrap();
        loop {
            if let Some(conn) = st.pending.pop_front() {
                return Ok(conn);
            }
            if st.closed {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "listener closed"));
            }
            st = self.0.cv.wait(st).unwrap();
        }
    }

    fn close(&self) {
        let mut st = self.0.state.lock().unwrap();
        st.closed = true;
        // Pending never-accepted dials are torn down so their clients
        // see EOF instead of a silent hang.
        for conn in st.pending.drain(..) {
            conn.shutdown_both();
        }
        self.0.cv.notify_all();
    }

    fn addr(&self) -> String {
        "mem".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_duplex_roundtrip_and_eof() {
        let (connector, listener) = MemTransport::endpoint();
        let client = connector.connect().expect("connect");
        let mut server = listener.accept().expect("accept");

        let mut cw = client.writer;
        cw.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        server.reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");

        server.writer.write_all(b"world").unwrap();
        let mut cr = client.reader;
        let mut buf = [0u8; 5];
        cr.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"world");

        // Read-shutdown EOFs the server's inbound without killing its
        // outbound.
        server.shutdown_read();
        assert_eq!(server.reader.read(&mut buf).unwrap(), 0);
        server.writer.write_all(b"late!").unwrap();
        cr.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"late!");
    }

    #[test]
    fn mem_listener_close_unblocks_accept() {
        let (_connector, listener) = MemTransport::endpoint();
        let listener = Arc::new(listener);
        let l2 = Arc::clone(&listener);
        let t = std::thread::spawn(move || l2.accept().is_err());
        std::thread::sleep(std::time::Duration::from_millis(20));
        listener.close();
        assert!(t.join().unwrap(), "accept should fail after close");
    }

    #[test]
    fn tcp_roundtrip() {
        let transport = TcpTransport::bind("127.0.0.1:0").expect("bind");
        let addr = transport.local_addr().to_string();
        let t = std::thread::spawn(move || {
            let mut conn = transport.accept().expect("accept");
            let mut buf = [0u8; 4];
            conn.reader.read_exact(&mut buf).unwrap();
            conn.writer.write_all(&buf).unwrap();
        });
        let mut conn = tcp_connect(&addr).expect("connect");
        conn.writer.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        conn.reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        t.join().unwrap();
    }
}
