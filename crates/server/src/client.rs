//! Sync pipelined client.
//!
//! [`Client`] speaks the frame protocol over any [`Connection`]. Every
//! request gets a fresh monotone id; because the server may answer out
//! of order, responses that arrive while waiting for a different id are
//! stashed and handed out when their turn comes. That split —
//! [`Client::submit`] to send without waiting, [`Client::wait`] /
//! [`Client::recv_next`] to collect — is what lets one connection keep
//! many requests in flight (and what the open-loop bench driver is
//! built on). The typed convenience calls ([`Client::get`],
//! [`Client::put`], …) are plain submit-then-wait.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, FrameError, Request, Response,
    ServerError, DEFAULT_MAX_FRAME,
};
use crate::transport::Connection;
use lsm_obs::MetricsSnapshot;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure sending or receiving.
    Io(std::io::Error),
    /// The response stream violated framing.
    Frame(FrameError),
    /// A frame arrived but its body made no sense (undecodable status,
    /// or a response kind that does not match the request).
    Protocol(String),
    /// The server answered with a typed error.
    Remote(ServerError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Frame(e) => write!(f, "framing: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Remote(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Client result type.
pub type Result<T> = std::result::Result<T, ClientError>;

/// Key/value pairs returned by a scan.
pub type ScanEntries = Vec<(u64, Vec<u8>)>;

struct ReadHalf {
    reader: Box<dyn Read + Send>,
    /// Responses read while looking for some other id.
    stash: HashMap<u64, Response>,
}

/// A pipelined connection to an `lsm-server`. All methods take `&self`;
/// the writer and reader halves are independently locked, so one thread
/// can submit while another collects.
///
/// ```rust
/// use lsm_server::{Client, MemTransport, Server, ServerOptions};
/// use lsm_server::protocol::{Request, Response};
/// use lsm_tree::sharding::ShardedDb;
/// use lsm_tree::{Options, ShardedOptions};
/// use std::sync::Arc;
///
/// let db = ShardedDb::open_memory(ShardedOptions::hash(2, Options::small_for_tests()))
///     .expect("open");
/// let (connector, listener) = MemTransport::endpoint();
/// let server = Server::start(db, Arc::new(listener), ServerOptions::default());
/// let client = Client::new(connector.connect().expect("dial"));
///
/// // Pipelining: several requests in flight on one connection, collected
/// // later by id — the server may complete them out of order.
/// let ids: Vec<u64> = (0..4)
///     .map(|k| {
///         client
///             .submit(&Request::Put { key: k, value: vec![b'v'], durable: false })
///             .expect("submit")
///     })
///     .collect();
/// for id in ids {
///     assert!(matches!(client.wait(id).expect("wait"), Response::Committed { .. }));
/// }
///
/// // The typed conveniences are plain submit-then-wait.
/// assert_eq!(client.get(2).expect("get"), Some(vec![b'v']));
///
/// server.close().expect("graceful close");
/// ```
pub struct Client {
    writer: Mutex<Box<dyn Write + Send>>,
    read_half: Mutex<ReadHalf>,
    next_id: AtomicU64,
    max_frame: usize,
}

impl Client {
    /// Wrap a dialed [`Connection`].
    pub fn new(conn: Connection) -> Client {
        Client::with_max_frame(conn, DEFAULT_MAX_FRAME)
    }

    /// Wrap a connection with a non-default response-frame cap.
    pub fn with_max_frame(conn: Connection, max_frame: usize) -> Client {
        let mut client = Client::from_halves(conn.reader, conn.writer);
        client.max_frame = max_frame;
        client
    }

    /// Build a client from raw stream halves — for tests and tools that
    /// interleave hand-crafted frames with protocol traffic.
    pub fn from_halves(reader: Box<dyn Read + Send>, writer: Box<dyn Write + Send>) -> Client {
        Client {
            writer: Mutex::new(writer),
            read_half: Mutex::new(ReadHalf {
                reader,
                stash: HashMap::new(),
            }),
            next_id: AtomicU64::new(1),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }

    /// The id the next [`Client::submit`] will use. With a single
    /// submitting thread, ids are exactly `next_request_id() + i` for
    /// the i-th subsequent submit — which is how the open-loop driver
    /// maps a response id back to its scheduled send time.
    pub fn next_request_id(&self) -> u64 {
        self.next_id.load(Ordering::Acquire)
    }

    /// Send a request without waiting; returns its id.
    pub fn submit(&self, req: &Request) -> Result<u64> {
        let id = self.next_id.fetch_add(1, Ordering::AcqRel);
        let mut buf = Vec::new();
        encode_request(&mut buf, id, req);
        write_frame(&mut **self.writer.lock(), &buf)?;
        Ok(id)
    }

    /// Block until the response for `id` arrives (stashing any others
    /// that arrive first).
    pub fn wait(&self, id: u64) -> Result<Response> {
        let mut half = self.read_half.lock();
        loop {
            if let Some(resp) = half.stash.remove(&id) {
                return Ok(resp);
            }
            let (got, resp) = Self::read_one(&mut half, self.max_frame)?;
            if got == id {
                return Ok(resp);
            }
            half.stash.insert(got, resp);
        }
    }

    /// Collect the next completion in arrival order: a stashed response
    /// if any, otherwise the next frame off the wire.
    pub fn recv_next(&self) -> Result<(u64, Response)> {
        let mut half = self.read_half.lock();
        if let Some(id) = half.stash.keys().next().copied() {
            let resp = half.stash.remove(&id).unwrap();
            return Ok((id, resp));
        }
        Self::read_one(&mut half, self.max_frame)
    }

    fn read_one(half: &mut ReadHalf, max_frame: usize) -> Result<(u64, Response)> {
        let (id, tag, payload) =
            read_frame(&mut *half.reader, max_frame).map_err(ClientError::Frame)?;
        let resp = decode_response(tag, &payload).map_err(ClientError::Protocol)?;
        Ok((id, resp))
    }

    fn call(&self, req: &Request) -> Result<Response> {
        let id = self.submit(req)?;
        self.wait(id)
    }

    // ------------------------------------------------- typed conveniences

    /// Point lookup.
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>> {
        match self.call(&Request::Get { key })? {
            Response::Value(v) => Ok(v),
            other => Self::unexpected("GET", other),
        }
    }

    /// Single-key write; returns the commit sequence number.
    pub fn put(&self, key: u64, value: &[u8], durable: bool) -> Result<u64> {
        self.committed(
            "PUT",
            &Request::Put {
                key,
                value: value.to_vec(),
                durable,
            },
        )
    }

    /// Single-key delete; returns the commit sequence number.
    pub fn delete(&self, key: u64, durable: bool) -> Result<u64> {
        self.committed("DELETE", &Request::Delete { key, durable })
    }

    /// Atomic multi-key batch; returns the commit sequence number.
    pub fn write_batch(
        &self,
        entries: Vec<crate::protocol::BatchEntry>,
        durable: bool,
    ) -> Result<u64> {
        self.committed("WRITE_BATCH", &Request::WriteBatch { entries, durable })
    }

    fn committed(&self, what: &str, req: &Request) -> Result<u64> {
        match self.call(req)? {
            Response::Committed { seq } => Ok(seq),
            other => Self::unexpected(what, other),
        }
    }

    /// Range scan from `start`, up to `limit` pairs.
    pub fn scan(&self, start: u64, limit: u32) -> Result<ScanEntries> {
        match self.call(&Request::Scan { start, limit })? {
            Response::Entries { pairs, .. } => Ok(pairs),
            other => Self::unexpected("SCAN", other),
        }
    }

    /// Range scan through a pinned coherent snapshot; also returns the
    /// snapshot's fence sequence.
    pub fn snapshot_scan(&self, start: u64, limit: u32) -> Result<(u64, ScanEntries)> {
        match self.call(&Request::SnapshotScan { start, limit })? {
            Response::Entries {
                snapshot_seq: Some(seq),
                pairs,
            } => Ok((seq, pairs)),
            other => Self::unexpected("SNAPSHOT_SCAN", other),
        }
    }

    /// The server's sharded-stats report as a JSON document.
    pub fn stats_json(&self) -> Result<String> {
        match self.call(&Request::Stats)? {
            Response::Stats { json } => Ok(json),
            other => Self::unexpected("STATS", other),
        }
    }

    /// Scrape the server's metrics surface: counters, per-shard latency
    /// quantiles and the recent event timeline. Render with
    /// [`MetricsSnapshot::render_text`] for a Prometheus-style exposition.
    pub fn metrics(&self) -> Result<MetricsSnapshot> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(snap) => Ok(*snap),
            other => Self::unexpected("METRICS", other),
        }
    }

    fn unexpected<T>(what: &str, resp: Response) -> Result<T> {
        match resp {
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Protocol(format!(
                "{what} answered with mismatched response {other:?}"
            ))),
        }
    }
}
