//! `lsm-server`: a network front end over the sharded LSM engine.
//!
//! The engine crates answer *how fast is a lookup*; this crate answers
//! the question a deployment actually faces: what happens to latency
//! when requests arrive over a wire at a fixed rate and the engine
//! pushes back? It adds, in order of appearance on a request's path:
//!
//! * [`protocol`] — a length-prefixed binary frame format (GET / PUT /
//!   DELETE / WRITE_BATCH / SCAN / SNAPSHOT_SCAN / STATS / METRICS),
//!   request ids chosen by the client and echoed by the server,
//!   responses free to arrive out of order — per-connection pipelining.
//! * [`transport`] — pluggable byte transports: real TCP, and an
//!   in-memory duplex pair so every test and benchmark exercises the
//!   full request path without sockets or network.
//! * [`Server`] — an acceptor, one reader thread per connection, and a
//!   shared worker pool. Admission control maps the engine's write
//!   stalls onto the network edge: a stopped engine sheds writes with a
//!   typed `RETRY_AFTER` instead of parking threads, a slowed engine
//!   shrinks the per-connection pipeline window, and a poisoned commit
//!   path turns writes into a typed "reopen to recover" error.
//!   [`Server::close`] drains in-flight requests before releasing the
//!   engine, so every acknowledged write survives a reopen.
//! * [`Client`] — the matching sync pipelined client.
//! * [`openloop`] — a fixed-arrival-rate driver whose latencies are
//!   measured from *scheduled* arrival, not actual send, making the
//!   recorded distribution free of coordinated omission; backed by the
//!   log-bucketed [`LatencyHistogram`].
//!
//! # Example
//!
//! ```
//! use lsm_server::{Client, MemTransport, Server, ServerOptions};
//! use lsm_tree::sharding::ShardedDb;
//! use lsm_tree::{Options, ShardedOptions};
//! use std::sync::Arc;
//!
//! let db = ShardedDb::open_memory(ShardedOptions::hash(2, Options::small_for_tests()))
//!     .expect("open");
//! let (connector, listener) = MemTransport::endpoint();
//! let server = Server::start(db, Arc::new(listener), ServerOptions::default());
//!
//! let client = Client::new(connector.connect().expect("dial"));
//! client.put(7, b"value", false).expect("put");
//! assert_eq!(client.get(7).expect("get"), Some(b"value".to_vec()));
//!
//! server.close().expect("graceful close");
//! ```

pub mod client;
pub mod hist;
pub mod openloop;
pub mod protocol;
pub mod server;
pub mod transport;

pub use client::{Client, ClientError};
pub use hist::LatencyHistogram;
pub use lsm_obs::MetricsSnapshot;
pub use openloop::{run_open_loop, OpenLoopSummary};
pub use protocol::{BatchEntry, FrameError, Request, Response, ServerError};
pub use server::{Server, ServerOptions, MAX_SCAN_LIMIT};
pub use transport::{tcp_connect, Connection, Listener, MemConnector, MemTransport, TcpTransport};
