//! The wire protocol: length-prefixed binary frames, one request or
//! response per frame, symmetric in both directions.
//!
//! ## Frame layout
//!
//! ```text
//! u32 LE   len      — bytes that follow (id + tag + payload); ≥ 9
//! u64 LE   id       — request id, echoed verbatim in the response
//! u8       tag      — opcode (request) or status (response)
//! [u8]     payload  — tag-specific body, all integers little-endian
//! ```
//!
//! Request ids are chosen by the client (monotonically increasing in the
//! shipped [`Client`](crate::Client)); the server echoes them, never
//! interprets them, and may answer out of order — that is what makes
//! per-connection pipelining work.
//!
//! ## Opcodes and payloads
//!
//! | opcode              | request payload                                   |
//! |---------------------|---------------------------------------------------|
//! | `GET` (0x01)        | `key u64`                                         |
//! | `PUT` (0x02)        | `flags u8, key u64, vlen u32, value`              |
//! | `DELETE` (0x03)     | `flags u8, key u64`                               |
//! | `WRITE_BATCH`(0x04) | `flags u8, count u32, count × entry`              |
//! | `SCAN` (0x05)       | `start u64, limit u32`                            |
//! | `SNAPSHOT_SCAN`(0x06)| `start u64, limit u32`                           |
//! | `STATS` (0x07)      | (empty)                                           |
//! | `METRICS` (0x08)    | (empty)                                           |
//!
//! A batch `entry` is `kind u8` (0 = put, 1 = delete), `key u64`, and for
//! puts `vlen u32, value`. `flags` bit 0 requests a durable (synced)
//! commit before the acknowledgement.
//!
//! ## Status codes and payloads
//!
//! | status                    | response payload                          |
//! |---------------------------|-------------------------------------------|
//! | `OK_VALUE` (0x00)         | `present u8, [vlen u32, value]`           |
//! | `OK_COMMITTED` (0x01)     | `seq u64`                                 |
//! | `OK_ENTRIES` (0x02)       | `has_snap u8, [snap_seq u64], count u32, count × (key u64, vlen u32, value)` |
//! | `OK_STATS` (0x03)         | `jlen u32, json`                          |
//! | `OK_METRICS` (0x04)       | `mlen u32, snapshot` — a [`MetricsSnapshot`] in its own binary codec |
//! | `ERR_RETRY_AFTER` (0x10)  | `retry_ms u32` — shed by admission control: back off and resend |
//! | `ERR_POISONED` (0x11)     | `mlen u32, msg` — a cross-shard commit failed mid-way; the engine refuses writes until reopened |
//! | `ERR_BAD_REQUEST` (0x12)  | `mlen u32, msg` — unknown opcode or malformed payload |
//! | `ERR_SERVER` (0x13)       | `mlen u32, msg` — engine I/O or corruption error |
//! | `ERR_SHUTTING_DOWN` (0x14)| `mlen u32, msg` — the server is draining; the connection will close |
//!
//! Framing violations (a declared length above the server's cap, or a
//! stream that ends mid-frame) are not answerable — the stream can no
//! longer be trusted — so the peer disconnects instead of responding.

use std::io::{self, Read, Write};

use lsm_obs::MetricsSnapshot;

/// Smallest legal frame body: id (8) + tag (1).
pub const MIN_FRAME: usize = 9;

/// Default ceiling on a frame body; the server
/// ([`ServerOptions::max_frame`](crate::ServerOptions)) and the client
/// both default to it.
pub const DEFAULT_MAX_FRAME: usize = 8 << 20;

/// Request flag bit 0: sync the WAL before acknowledging.
pub const FLAG_DURABLE: u8 = 1;

// ------------------------------------------------------------- tag bytes

pub const OP_GET: u8 = 0x01;
pub const OP_PUT: u8 = 0x02;
pub const OP_DELETE: u8 = 0x03;
pub const OP_WRITE_BATCH: u8 = 0x04;
pub const OP_SCAN: u8 = 0x05;
pub const OP_SNAPSHOT_SCAN: u8 = 0x06;
pub const OP_STATS: u8 = 0x07;
pub const OP_METRICS: u8 = 0x08;

pub const ST_OK_VALUE: u8 = 0x00;
pub const ST_OK_COMMITTED: u8 = 0x01;
pub const ST_OK_ENTRIES: u8 = 0x02;
pub const ST_OK_STATS: u8 = 0x03;
pub const ST_OK_METRICS: u8 = 0x04;
pub const ST_ERR_RETRY_AFTER: u8 = 0x10;
pub const ST_ERR_POISONED: u8 = 0x11;
pub const ST_ERR_BAD_REQUEST: u8 = 0x12;
pub const ST_ERR_SERVER: u8 = 0x13;
pub const ST_ERR_SHUTTING_DOWN: u8 = 0x14;

// ---------------------------------------------------------------- types

/// One entry of a [`Request::WriteBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchEntry {
    Put(u64, Vec<u8>),
    Delete(u64),
}

/// A decoded request frame body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Get {
        key: u64,
    },
    Put {
        key: u64,
        value: Vec<u8>,
        durable: bool,
    },
    Delete {
        key: u64,
        durable: bool,
    },
    WriteBatch {
        entries: Vec<BatchEntry>,
        durable: bool,
    },
    Scan {
        start: u64,
        limit: u32,
    },
    SnapshotScan {
        start: u64,
        limit: u32,
    },
    Stats,
    Metrics,
}

impl Request {
    /// Whether this request mutates the database — the class admission
    /// control sheds under write backpressure.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Request::Put { .. } | Request::Delete { .. } | Request::WriteBatch { .. }
        )
    }
}

/// A typed server-side error, carried in an error-status response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// Shed by admission control; retry after the given backoff.
    RetryAfter { ms: u32 },
    /// The engine is poisoned by a failed cross-shard commit; writes are
    /// refused until the database is reopened.
    Poisoned(String),
    /// Unknown opcode or malformed payload.
    BadRequest(String),
    /// Engine I/O or corruption error.
    Server(String),
    /// The server is draining for shutdown.
    ShuttingDown(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::RetryAfter { ms } => write!(f, "retry after {ms} ms"),
            ServerError::Poisoned(m) => write!(f, "engine poisoned: {m}"),
            ServerError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServerError::Server(m) => write!(f, "server error: {m}"),
            ServerError::ShuttingDown(m) => write!(f, "shutting down: {m}"),
        }
    }
}

/// A decoded response frame body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `GET` result.
    Value(Option<Vec<u8>>),
    /// Write acknowledgement: the last sequence number of the commit.
    Committed { seq: u64 },
    /// `SCAN` / `SNAPSHOT_SCAN` result; `snapshot_seq` is the pinned
    /// fence for snapshot scans, `None` for plain scans.
    Entries {
        snapshot_seq: Option<u64>,
        pairs: Vec<(u64, Vec<u8>)>,
    },
    /// `STATS` result: the engine's sharded stats as a JSON document.
    Stats { json: String },
    /// `METRICS` result: counters, latency quantiles and the recent
    /// event timeline (see [`MetricsSnapshot`]).
    Metrics(Box<MetricsSnapshot>),
    /// Any error status.
    Error(ServerError),
}

/// Why a frame could not be read; distinguishes "peer went away cleanly"
/// from "the stream is garbage".
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF on a frame boundary — the peer closed.
    Closed,
    /// The stream died mid-frame (truncated length prefix or body).
    Truncated,
    /// The declared length is below [`MIN_FRAME`] or above the cap —
    /// framing can no longer be trusted.
    BadLength(u32),
    /// Underlying transport error.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "stream truncated mid-frame"),
            FrameError::BadLength(n) => write!(f, "bad frame length {n}"),
            FrameError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        match e {
            FrameError::Io(e) => e,
            FrameError::Closed => io::Error::new(io::ErrorKind::UnexpectedEof, "closed"),
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

// ------------------------------------------------------------- encoding

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Encode one frame (either direction) into `out`.
fn encode_frame(out: &mut Vec<u8>, id: u64, tag: u8, payload: &[u8]) {
    put_u32(out, (8 + 1 + payload.len()) as u32);
    put_u64(out, id);
    out.push(tag);
    out.extend_from_slice(payload);
}

/// Encode a request frame.
pub fn encode_request(out: &mut Vec<u8>, id: u64, req: &Request) {
    let mut p = Vec::new();
    let tag = match req {
        Request::Get { key } => {
            put_u64(&mut p, *key);
            OP_GET
        }
        Request::Put {
            key,
            value,
            durable,
        } => {
            p.push(if *durable { FLAG_DURABLE } else { 0 });
            put_u64(&mut p, *key);
            put_bytes(&mut p, value);
            OP_PUT
        }
        Request::Delete { key, durable } => {
            p.push(if *durable { FLAG_DURABLE } else { 0 });
            put_u64(&mut p, *key);
            OP_DELETE
        }
        Request::WriteBatch { entries, durable } => {
            p.push(if *durable { FLAG_DURABLE } else { 0 });
            put_u32(&mut p, entries.len() as u32);
            for e in entries {
                match e {
                    BatchEntry::Put(k, v) => {
                        p.push(0);
                        put_u64(&mut p, *k);
                        put_bytes(&mut p, v);
                    }
                    BatchEntry::Delete(k) => {
                        p.push(1);
                        put_u64(&mut p, *k);
                    }
                }
            }
            OP_WRITE_BATCH
        }
        Request::Scan { start, limit } => {
            put_u64(&mut p, *start);
            put_u32(&mut p, *limit);
            OP_SCAN
        }
        Request::SnapshotScan { start, limit } => {
            put_u64(&mut p, *start);
            put_u32(&mut p, *limit);
            OP_SNAPSHOT_SCAN
        }
        Request::Stats => OP_STATS,
        Request::Metrics => OP_METRICS,
    };
    encode_frame(out, id, tag, &p);
}

/// Encode a response frame.
pub fn encode_response(out: &mut Vec<u8>, id: u64, resp: &Response) {
    let mut p = Vec::new();
    let tag = match resp {
        Response::Value(v) => {
            match v {
                Some(v) => {
                    p.push(1);
                    put_bytes(&mut p, v);
                }
                None => p.push(0),
            }
            ST_OK_VALUE
        }
        Response::Committed { seq } => {
            put_u64(&mut p, *seq);
            ST_OK_COMMITTED
        }
        Response::Entries {
            snapshot_seq,
            pairs,
        } => {
            match snapshot_seq {
                Some(s) => {
                    p.push(1);
                    put_u64(&mut p, *s);
                }
                None => p.push(0),
            }
            put_u32(&mut p, pairs.len() as u32);
            for (k, v) in pairs {
                put_u64(&mut p, *k);
                put_bytes(&mut p, v);
            }
            ST_OK_ENTRIES
        }
        Response::Stats { json } => {
            put_bytes(&mut p, json.as_bytes());
            ST_OK_STATS
        }
        Response::Metrics(snap) => {
            let mut body = Vec::new();
            snap.encode(&mut body);
            put_bytes(&mut p, &body);
            ST_OK_METRICS
        }
        Response::Error(e) => match e {
            ServerError::RetryAfter { ms } => {
                put_u32(&mut p, *ms);
                ST_ERR_RETRY_AFTER
            }
            ServerError::Poisoned(m) => {
                put_bytes(&mut p, m.as_bytes());
                ST_ERR_POISONED
            }
            ServerError::BadRequest(m) => {
                put_bytes(&mut p, m.as_bytes());
                ST_ERR_BAD_REQUEST
            }
            ServerError::Server(m) => {
                put_bytes(&mut p, m.as_bytes());
                ST_ERR_SERVER
            }
            ServerError::ShuttingDown(m) => {
                put_bytes(&mut p, m.as_bytes());
                ST_ERR_SHUTTING_DOWN
            }
        },
    };
    encode_frame(out, id, tag, &p);
}

// ------------------------------------------------------------- decoding

/// Bounds-checked little-endian cursor over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, String> {
        let b = *self.buf.get(self.pos).ok_or("payload truncated")?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.buf.len());
        let end = end.ok_or("payload truncated")?;
        let v = u32::from_le_bytes(self.buf[self.pos..end].try_into().unwrap());
        self.pos = end;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let end = self.pos.checked_add(8).filter(|&e| e <= self.buf.len());
        let end = end.ok_or("payload truncated")?;
        let v = u64::from_le_bytes(self.buf[self.pos..end].try_into().unwrap());
        self.pos = end;
        Ok(v)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, String> {
        let len = self.u32()? as usize;
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        let end = end.ok_or("declared byte length overruns payload")?;
        let v = self.buf[self.pos..end].to_vec();
        self.pos = end;
        Ok(v)
    }

    fn finish(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            ))
        }
    }
}

/// Decode a request payload. `Err` carries a human-readable reason for
/// the `ERR_BAD_REQUEST` response.
pub fn decode_request(opcode: u8, payload: &[u8]) -> Result<Request, String> {
    let mut c = Cursor::new(payload);
    let req = match opcode {
        OP_GET => Request::Get { key: c.u64()? },
        OP_PUT => {
            let flags = c.u8()?;
            Request::Put {
                key: c.u64()?,
                value: c.bytes()?,
                durable: flags & FLAG_DURABLE != 0,
            }
        }
        OP_DELETE => {
            let flags = c.u8()?;
            Request::Delete {
                key: c.u64()?,
                durable: flags & FLAG_DURABLE != 0,
            }
        }
        OP_WRITE_BATCH => {
            let flags = c.u8()?;
            let count = c.u32()? as usize;
            // An honest batch needs ≥ 9 bytes per entry; a declared count
            // past that is a lie about data that cannot be present.
            if count > payload.len() / 9 + 1 {
                return Err(format!("batch count {count} overruns payload"));
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                entries.push(match c.u8()? {
                    0 => BatchEntry::Put(c.u64()?, c.bytes()?),
                    1 => BatchEntry::Delete(c.u64()?),
                    k => return Err(format!("unknown batch entry kind {k}")),
                });
            }
            Request::WriteBatch {
                entries,
                durable: flags & FLAG_DURABLE != 0,
            }
        }
        OP_SCAN => Request::Scan {
            start: c.u64()?,
            limit: c.u32()?,
        },
        OP_SNAPSHOT_SCAN => Request::SnapshotScan {
            start: c.u64()?,
            limit: c.u32()?,
        },
        OP_STATS => Request::Stats,
        OP_METRICS => Request::Metrics,
        op => return Err(format!("unknown opcode 0x{op:02x}")),
    };
    c.finish()?;
    Ok(req)
}

/// Decode a response payload.
pub fn decode_response(status: u8, payload: &[u8]) -> Result<Response, String> {
    let mut c = Cursor::new(payload);
    let resp = match status {
        ST_OK_VALUE => Response::Value(match c.u8()? {
            0 => None,
            _ => Some(c.bytes()?),
        }),
        ST_OK_COMMITTED => Response::Committed { seq: c.u64()? },
        ST_OK_ENTRIES => {
            let snapshot_seq = match c.u8()? {
                0 => None,
                _ => Some(c.u64()?),
            };
            let count = c.u32()? as usize;
            if count > payload.len() / 12 + 1 {
                return Err(format!("entry count {count} overruns payload"));
            }
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                let k = c.u64()?;
                pairs.push((k, c.bytes()?));
            }
            Response::Entries {
                snapshot_seq,
                pairs,
            }
        }
        ST_OK_STATS => Response::Stats {
            json: String::from_utf8(c.bytes()?).map_err(|_| "stats json is not UTF-8")?,
        },
        ST_OK_METRICS => Response::Metrics(Box::new(MetricsSnapshot::decode(&c.bytes()?)?)),
        ST_ERR_RETRY_AFTER => Response::Error(ServerError::RetryAfter { ms: c.u32()? }),
        ST_ERR_POISONED => Response::Error(ServerError::Poisoned(msg(&mut c)?)),
        ST_ERR_BAD_REQUEST => Response::Error(ServerError::BadRequest(msg(&mut c)?)),
        ST_ERR_SERVER => Response::Error(ServerError::Server(msg(&mut c)?)),
        ST_ERR_SHUTTING_DOWN => Response::Error(ServerError::ShuttingDown(msg(&mut c)?)),
        s => return Err(format!("unknown status 0x{s:02x}")),
    };
    c.finish()?;
    Ok(resp)
}

fn msg(c: &mut Cursor<'_>) -> Result<String, String> {
    String::from_utf8(c.bytes()?).map_err(|_| "error message is not UTF-8".into())
}

// --------------------------------------------------------------- framing

/// Read one frame: `(id, tag, payload)`.
pub fn read_frame(r: &mut dyn Read, max_frame: usize) -> Result<(u64, u8, Vec<u8>), FrameError> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut len_buf) {
        Ok(true) => {}
        Ok(false) => return Err(FrameError::Closed),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(FrameError::Truncated),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = u32::from_le_bytes(len_buf);
    if (len as usize) < MIN_FRAME || len as usize > max_frame {
        return Err(FrameError::BadLength(len));
    }
    let mut body = vec![0u8; len as usize];
    match r.read_exact(&mut body) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(FrameError::Truncated),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let id = u64::from_le_bytes(body[..8].try_into().unwrap());
    let tag = body[8];
    body.drain(..MIN_FRAME);
    Ok((id, tag, body))
}

/// `read_exact`, but a clean EOF before the *first* byte returns
/// `Ok(false)` instead of an error (frame-boundary close).
fn read_exact_or_eof(r: &mut dyn Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Encode and write one frame, flushing the writer.
pub fn write_frame(w: &mut dyn Write, buf: &[u8]) -> io::Result<()> {
    w.write_all(buf)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let mut buf = Vec::new();
        encode_request(&mut buf, 42, &req);
        let mut r = &buf[..];
        let (id, tag, payload) = read_frame(&mut r, DEFAULT_MAX_FRAME).expect("frame");
        assert_eq!(id, 42);
        assert_eq!(decode_request(tag, &payload).expect("decode"), req);
    }

    fn roundtrip_resp(resp: Response) {
        let mut buf = Vec::new();
        encode_response(&mut buf, 7, &resp);
        let mut r = &buf[..];
        let (id, tag, payload) = read_frame(&mut r, DEFAULT_MAX_FRAME).expect("frame");
        assert_eq!(id, 7);
        assert_eq!(decode_response(tag, &payload).expect("decode"), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Get { key: u64::MAX });
        roundtrip_req(Request::Put {
            key: 1,
            value: b"v".to_vec(),
            durable: true,
        });
        roundtrip_req(Request::Delete {
            key: 2,
            durable: false,
        });
        roundtrip_req(Request::WriteBatch {
            entries: vec![
                BatchEntry::Put(3, vec![0xab; 100]),
                BatchEntry::Delete(4),
                BatchEntry::Put(5, Vec::new()),
            ],
            durable: true,
        });
        roundtrip_req(Request::Scan {
            start: 0,
            limit: 10,
        });
        roundtrip_req(Request::SnapshotScan { start: 9, limit: 0 });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Metrics);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Value(None));
        roundtrip_resp(Response::Value(Some(b"x".to_vec())));
        roundtrip_resp(Response::Committed { seq: 99 });
        roundtrip_resp(Response::Entries {
            snapshot_seq: Some(12),
            pairs: vec![(1, b"a".to_vec()), (2, Vec::new())],
        });
        roundtrip_resp(Response::Entries {
            snapshot_seq: None,
            pairs: Vec::new(),
        });
        roundtrip_resp(Response::Stats {
            json: "{\"x\":1}".into(),
        });
        roundtrip_resp(Response::Metrics(Box::new(MetricsSnapshot::disabled())));
        let mut snap = MetricsSnapshot::disabled();
        snap.enabled = true;
        snap.counters.push(("flushes".into(), 3));
        snap.dropped_events = 9;
        roundtrip_resp(Response::Metrics(Box::new(snap)));
        roundtrip_resp(Response::Error(ServerError::RetryAfter { ms: 20 }));
        roundtrip_resp(Response::Error(ServerError::Poisoned("p".into())));
        roundtrip_resp(Response::Error(ServerError::BadRequest("b".into())));
        roundtrip_resp(Response::Error(ServerError::Server("s".into())));
        roundtrip_resp(Response::Error(ServerError::ShuttingDown("d".into())));
    }

    #[test]
    fn framing_violations_are_typed() {
        // Truncated length prefix.
        let mut r: &[u8] = &[1, 0];
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Truncated)
        ));
        // Oversized declared length.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1u32 << 30).to_le_bytes());
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::BadLength(_))
        ));
        // Undersized declared length (cannot even hold id + tag).
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&[0, 0, 0]);
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::BadLength(3))
        ));
        // Clean EOF on a boundary.
        let mut r: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Closed)
        ));
        // Body shorter than declared.
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 20]);
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn garbage_payloads_decode_to_errors_not_panics() {
        // Declared value length overruns the payload.
        let mut p = vec![0u8]; // flags
        p.extend_from_slice(&1u64.to_le_bytes());
        p.extend_from_slice(&u32::MAX.to_le_bytes()); // vlen lie
        assert!(decode_request(OP_PUT, &p).is_err());
        // Unknown opcode.
        assert!(decode_request(0x7f, &[]).is_err());
        // Trailing junk.
        let mut buf = Vec::new();
        encode_request(&mut buf, 1, &Request::Get { key: 5 });
        let mut r = &buf[..];
        let (_, tag, mut payload) = read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap();
        payload.push(0xee);
        assert!(decode_request(tag, &payload).is_err());
        // Batch count lie.
        let mut p = vec![0u8];
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(OP_WRITE_BATCH, &p).is_err());
        // METRICS takes no payload: junk is trailing bytes, not a panic.
        assert!(decode_request(OP_METRICS, &[1, 2, 3]).is_err());
        // A metrics response whose inner snapshot is corrupt is a typed
        // error (the snapshot codec's own message), never a panic.
        let mut p = Vec::new();
        put_bytes(&mut p, &[0xff; 5]);
        assert!(decode_response(ST_OK_METRICS, &p).is_err());
        // Truncated inner length prefix.
        assert!(decode_response(ST_OK_METRICS, &[9, 0, 0, 0]).is_err());
    }
}
