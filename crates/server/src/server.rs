//! The server: accepts connections, admits requests against engine
//! backpressure, executes them on a shared worker pool, and shuts down
//! in an order that never drops an acknowledged write.
//!
//! # Threading model
//!
//! One **acceptor** thread blocks on the transport's `accept`. Each
//! accepted connection gets one **reader** thread that decodes frames
//! and either sheds the request immediately (admission control, below)
//! or pushes it onto a global ready queue. A fixed pool of **worker**
//! threads pops the queue, executes against the [`ShardedDb`], and
//! writes the response through the connection's writer mutex — so
//! responses from different requests interleave freely and a pipelined
//! client sees completions out of order, matched by request id.
//!
//! # Admission control
//!
//! The engine's write stalls ([`WritePressure`]) are mapped to the
//! network edge instead of being absorbed as open-ended blocking:
//!
//! * **Stop** — write requests are shed with [`ServerError::RetryAfter`]
//!   before touching the engine: a bounded, typed signal the client can
//!   back off on, instead of a worker thread parked inside `make_room`.
//! * **Slowdown** — the per-connection in-flight cap shrinks
//!   (`queue_slowdown_cap`), so a pipelining client fills its shrunken
//!   window and naturally slows to the engine's drain rate.
//! * **Clear** — requests are admitted up to `queue_cap` per connection;
//!   beyond that they are shed (`RetryAfter`), bounding queue memory.
//!
//! A poisoned commit path (a cross-shard batch failed mid-way) turns
//! every subsequent write into [`ServerError::Poisoned`] — the client
//! learns the engine needs a reopen, rather than seeing generic errors.
//!
//! # Shutdown ordering
//!
//! [`Server::close`] stops the acceptor, EOFs every connection's *read*
//! side (responses still flow out), joins the readers, drains the ready
//! queue through the workers, joins the workers, and only then closes
//! the engine. Anything acknowledged before `close` returns is therefore
//! fully applied — and, if written with `durable`, synced — before the
//! database directory is released.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use lsm_obs::{EventKind, GLOBAL_SHARD};
use lsm_tree::sharding::{ShardedDb, ShardedStats};
use lsm_tree::{Error as LsmError, WriteBatch, WriteOptions, WritePressure};
use std::sync::{Condvar, Mutex};

use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, FrameError, Request, Response,
    ServerError, DEFAULT_MAX_FRAME,
};
use crate::transport::{Connection, Listener};

/// Server-side cap on `Scan`/`SnapshotScan` limits, so one request can
/// neither hold a worker for an unbounded merge nor overflow the
/// client's frame cap.
pub const MAX_SCAN_LIMIT: usize = 4096;

/// Tuning for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads executing admitted requests (shared across all
    /// connections).
    pub workers: usize,
    /// Largest request frame accepted before the connection is dropped
    /// as corrupt.
    pub max_frame: usize,
    /// Per-connection in-flight cap under [`WritePressure::Clear`].
    pub queue_cap: usize,
    /// Per-connection in-flight cap under [`WritePressure::Slowdown`] —
    /// smaller, so pipelined writers drain to the engine's pace.
    pub queue_slowdown_cap: usize,
    /// Backoff hint (milliseconds) carried by every
    /// [`ServerError::RetryAfter`] shed.
    pub retry_after_ms: u32,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            workers: 4,
            max_frame: DEFAULT_MAX_FRAME,
            queue_cap: 128,
            queue_slowdown_cap: 16,
            retry_after_ms: 2,
        }
    }
}

/// Per-connection state shared between its reader thread and the worker
/// pool.
struct ConnState {
    /// Serializes response frames (workers and the reader's shed path
    /// both write here).
    writer: Mutex<Box<dyn Write + Send>>,
    /// Admitted-but-unanswered requests on this connection.
    inflight: AtomicUsize,
    /// EOFs the read side (graceful close) without cutting responses.
    read_shutdown: Arc<dyn Fn() + Send + Sync>,
    /// Tears the whole connection down (corrupt stream, final close).
    both_shutdown: Arc<dyn Fn() + Send + Sync>,
}

impl ConnState {
    fn send(&self, id: u64, resp: &Response) {
        let mut buf = Vec::new();
        encode_response(&mut buf, id, resp);
        // A send failure means the peer is gone; the reader will see EOF
        // and unwind the connection — nothing to do here.
        let _ = write_frame(&mut **self.writer.lock().unwrap(), &buf);
    }
}

/// One admitted request waiting for a worker.
struct Work {
    conn: Arc<ConnState>,
    id: u64,
    req: Request,
}

struct ReadyQueue {
    queue: Mutex<VecDeque<Work>>,
    cv: Condvar,
}

/// Everything the acceptor, readers and workers share.
struct Shared {
    db: ShardedDb,
    opts: ServerOptions,
    ready: ReadyQueue,
    /// Set by `close`: readers shed new requests with `ShuttingDown`,
    /// workers exit once the queue is dry.
    closing: AtomicBool,
    /// Live connections, for the closer to EOF; keyed by a serial.
    conns: Mutex<HashMap<u64, Arc<ConnState>>>,
    /// Reader threads to join on close (readers also self-register here
    /// because the acceptor spawns them).
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// Total requests shed with `RetryAfter` since start (observability
    /// for tests and the bench runner).
    shed: AtomicUsize,
}

/// A running server. Dropping without [`Server::close`] aborts
/// connections without the drain guarantee; call `close` for the
/// graceful path.
pub struct Server {
    shared: Arc<Shared>,
    listener: Arc<dyn Listener>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Take ownership of `db` and serve it over `listener` until
    /// [`Server::close`].
    pub fn start(db: ShardedDb, listener: Arc<dyn Listener>, opts: ServerOptions) -> Server {
        let workers = opts.workers.max(1);
        let shared = Arc::new(Shared {
            db,
            opts,
            ready: ReadyQueue {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            },
            closing: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            readers: Mutex::new(Vec::new()),
            shed: AtomicUsize::new(0),
        });

        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lsm-server-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            let listener = Arc::clone(&listener);
            std::thread::Builder::new()
                .name("lsm-server-acceptor".into())
                .spawn(move || acceptor_loop(&shared, listener.as_ref()))
                .expect("spawn acceptor")
        };

        Server {
            shared,
            listener,
            acceptor: Some(acceptor),
            workers: worker_handles,
        }
    }

    /// The transport endpoint being served (a TCP address, or `"mem"`).
    pub fn addr(&self) -> String {
        self.listener.addr()
    }

    /// Requests shed with `RetryAfter` so far.
    pub fn shed_count(&self) -> usize {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// The engine being served — for operational probes (stats, pausing
    /// maintenance in tests). Closing goes through [`Server::close`];
    /// this reference cannot (`ShardedDb::close` consumes the value).
    pub fn db(&self) -> &ShardedDb {
        &self.shared.db
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests (their
    /// responses are written), then close the engine. Returns the
    /// engine's close result — `Ok` means everything acknowledged is on
    /// storage per its write options.
    pub fn close(mut self) -> lsm_tree::Result<()> {
        self.shared.closing.store(true, Ordering::Release);

        // 1. No new connections.
        self.listener.close();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }

        // 2. EOF every reader: no new requests; response directions stay
        //    open so drained work still reaches its client.
        for conn in self.shared.conns.lock().unwrap().values() {
            (conn.read_shutdown)();
        }
        let readers = std::mem::take(&mut *self.shared.readers.lock().unwrap());
        for h in readers {
            let _ = h.join();
        }

        // 3. Drain: wake the workers; they exit once the ready queue is
        //    dry (every admitted request answered).
        self.shared.ready.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }

        // 4. Now tear the connections down fully and release the engine.
        for (_, conn) in self.shared.conns.lock().unwrap().drain() {
            (conn.both_shutdown)();
        }
        let shared = Arc::try_unwrap(self.shared)
            .map_err(|_| ())
            .expect("all server threads joined; no Shared clones can remain");
        shared.db.close()
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: &dyn Listener) {
    let mut serial = 0u64;
    while let Ok(conn) = listener.accept() {
        if shared.closing.load(Ordering::Acquire) {
            conn.shutdown_both();
            continue;
        }
        serial += 1;
        let id = serial;
        let shared2 = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("lsm-server-conn-{id}"))
            .spawn(move || reader_loop(&shared2, id, conn))
            .expect("spawn reader");
        shared.readers.lock().unwrap().push(handle);
    }
}

fn reader_loop(shared: &Arc<Shared>, conn_id: u64, conn: Connection) {
    let read_shutdown = conn.read_shutdown_handle();
    let both_shutdown = conn.both_shutdown_handle();
    let mut reader = conn.reader;
    let state = Arc::new(ConnState {
        writer: Mutex::new(conn.writer),
        inflight: AtomicUsize::new(0),
        read_shutdown,
        both_shutdown,
    });
    shared
        .conns
        .lock()
        .unwrap()
        .insert(conn_id, Arc::clone(&state));

    loop {
        let (id, tag, payload) = match read_frame(&mut reader, shared.opts.max_frame) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => break,
            Err(FrameError::Truncated | FrameError::BadLength(_) | FrameError::Io(_)) => {
                // The byte stream is desynchronized (or gone): frame
                // boundaries can no longer be trusted, so the only safe
                // answer is a clean disconnect.
                (state.both_shutdown)();
                break;
            }
        };
        let req = match decode_request(tag, &payload) {
            Ok(req) => req,
            Err(reason) => {
                // Framing is intact (the length prefix held), only this
                // request is malformed — answer it and keep the
                // connection.
                state.send(id, &Response::Error(ServerError::BadRequest(reason)));
                continue;
            }
        };
        match admit(shared, &state, &req) {
            Admission::Admit => {
                state.inflight.fetch_add(1, Ordering::AcqRel);
                let mut q = shared.ready.queue.lock().unwrap();
                q.push_back(Work {
                    conn: Arc::clone(&state),
                    id,
                    req,
                });
                shared.ready.cv.notify_one();
            }
            Admission::Shed(err) => {
                if matches!(err, ServerError::RetryAfter { .. }) {
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(observer) = shared.db.observer() {
                    observer.emit(
                        EventKind::ServerShed,
                        GLOBAL_SHARD,
                        0,
                        req.is_write() as u64,
                        0,
                    );
                }
                state.send(id, &Response::Error(err));
            }
        }
    }

    // Keep the ConnState registered: drained responses may still need
    // its writer during close. The closer tears it down in step 4; for
    // a connection that died mid-run, remove it so the map stays small.
    if !shared.closing.load(Ordering::Acquire) {
        shared.conns.lock().unwrap().remove(&conn_id);
    }
}

enum Admission {
    Admit,
    Shed(ServerError),
}

/// Decide a request's fate at the network edge (before it costs a
/// worker): map engine backpressure onto shed-or-queue.
fn admit(shared: &Shared, state: &ConnState, req: &Request) -> Admission {
    if shared.closing.load(Ordering::Acquire) {
        return Admission::Shed(ServerError::ShuttingDown("server draining".into()));
    }
    let opts = &shared.opts;
    let inflight = state.inflight.load(Ordering::Acquire);
    if req.is_write() {
        if shared.db.poisoned() {
            return Admission::Shed(ServerError::Poisoned(
                "cross-shard commit failed mid-way; reopen to recover".into(),
            ));
        }
        let cap = match shared.db.write_pressure() {
            // A stopped engine would park the worker inside `make_room`;
            // shed instead and let the client retry after the hint.
            WritePressure::Stop => 0,
            WritePressure::Slowdown => opts.queue_slowdown_cap,
            WritePressure::Clear => opts.queue_cap,
        };
        if inflight >= cap {
            return Admission::Shed(ServerError::RetryAfter {
                ms: opts.retry_after_ms,
            });
        }
    } else if inflight >= opts.queue_cap {
        return Admission::Shed(ServerError::RetryAfter {
            ms: opts.retry_after_ms,
        });
    }
    Admission::Admit
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let work = {
            let mut q = shared.ready.queue.lock().unwrap();
            loop {
                if let Some(w) = q.pop_front() {
                    break w;
                }
                if shared.closing.load(Ordering::Acquire) {
                    return;
                }
                q = shared.ready.cv.wait(q).unwrap();
            }
        };
        let resp = execute(&shared.db, &shared.opts, work.req);
        work.conn.send(work.id, &resp);
        work.conn.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Run one request against the engine.
fn execute(db: &ShardedDb, opts: &ServerOptions, req: Request) -> Response {
    match req {
        Request::Get { key } => match db.get(key) {
            Ok(v) => Response::Value(v),
            Err(e) => map_engine_error(db, opts, e),
        },
        Request::Put {
            key,
            value,
            durable,
        } => {
            let mut batch = WriteBatch::with_capacity(1);
            batch.put(key, &value);
            run_write(db, opts, batch, durable)
        }
        Request::Delete { key, durable } => {
            let mut batch = WriteBatch::with_capacity(1);
            batch.delete(key);
            run_write(db, opts, batch, durable)
        }
        Request::WriteBatch { entries, durable } => {
            let mut batch = WriteBatch::with_capacity(entries.len());
            for e in &entries {
                match e {
                    crate::protocol::BatchEntry::Put(k, v) => {
                        batch.put(*k, v);
                    }
                    crate::protocol::BatchEntry::Delete(k) => {
                        batch.delete(*k);
                    }
                }
            }
            run_write(db, opts, batch, durable)
        }
        Request::Scan { start, limit } => {
            match db.scan(start, (limit as usize).min(MAX_SCAN_LIMIT)) {
                Ok(pairs) => Response::Entries {
                    snapshot_seq: None,
                    pairs,
                },
                Err(e) => map_engine_error(db, opts, e),
            }
        }
        Request::SnapshotScan { start, limit } => {
            let snapshot = db.snapshot();
            let run = || -> lsm_tree::Result<Vec<(u64, Vec<u8>)>> {
                let mut it = db.iter_at(&snapshot)?;
                it.seek(start)?;
                it.collect_up_to((limit as usize).min(MAX_SCAN_LIMIT))
            };
            match run() {
                Ok(pairs) => Response::Entries {
                    snapshot_seq: Some(snapshot.seq()),
                    pairs,
                },
                Err(e) => map_engine_error(db, opts, e),
            }
        }
        Request::Stats => Response::Stats {
            json: stats_json(&db.sharded_stats()),
        },
        Request::Metrics => Response::Metrics(Box::new(db.metrics())),
    }
}

fn run_write(db: &ShardedDb, opts: &ServerOptions, batch: WriteBatch, durable: bool) -> Response {
    let wopts = if durable {
        WriteOptions::durable()
    } else {
        WriteOptions::default()
    };
    match db.write(batch, &wopts) {
        Ok(seq) => Response::Committed { seq },
        Err(e) => map_engine_error(db, opts, e),
    }
}

/// Translate an engine error into the wire vocabulary. `Unavailable`
/// (epoch churn under a capped retry budget) becomes `RetryAfter` — the
/// same back-off contract as admission shedding. A `Corruption` while
/// the commit path is poisoned is the poison report itself.
fn map_engine_error(db: &ShardedDb, opts: &ServerOptions, e: LsmError) -> Response {
    match e {
        LsmError::Unavailable(_) => Response::Error(ServerError::RetryAfter {
            ms: opts.retry_after_ms,
        }),
        LsmError::Corruption(m) if db.poisoned() => Response::Error(ServerError::Poisoned(m)),
        e @ (LsmError::Io(_) | LsmError::Corruption(_)) => {
            Response::Error(ServerError::Server(e.to_string()))
        }
    }
}

/// Render [`ShardedStats`] as a JSON object (hand-built: the engine's
/// stats types carry no serde impls, and the wire format only needs a
/// stable read-only rendering).
pub(crate) fn stats_json(s: &ShardedStats) -> String {
    fn num_list<T: std::fmt::Display>(xs: &[T]) -> String {
        let mut out = String::from("[");
        for (i, x) in xs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&x.to_string());
        }
        out.push(']');
        out
    }
    let m = &s.merged;
    format!(
        concat!(
            "{{\"topology_epoch\":{},\"shard_ids\":{},\"resident_bytes\":{},",
            "\"resident_entries\":{},\"resident_imbalance\":{:.6},",
            "\"observed_imbalance\":{:.6},\"observed_keys\":{},",
            "\"live_commit_markers\":{},\"lookups\":{},\"write_batches\":{},",
            "\"write_entries\":{},\"wal_syncs\":{},\"flushes\":{},",
            "\"compactions\":{},\"subcompactions\":{},",
            "\"flush_bytes_written\":{},\"compact_bytes_read\":{},",
            "\"compact_bytes_written\":{},\"write_amplification\":{:.3},",
            "\"scans\":{},\"stall_slowdowns\":{},",
            "\"stall_stops\":{},\"shard_splits\":{}}}"
        ),
        s.topology_epoch,
        num_list(&s.shard_ids),
        num_list(&s.resident_bytes),
        num_list(&s.resident_entries),
        s.resident_imbalance,
        s.observed_imbalance,
        s.observed_keys,
        s.live_commit_markers,
        m.lookups,
        m.write_batches,
        m.write_entries,
        m.wal_syncs,
        m.flushes,
        m.compactions,
        m.subcompactions,
        m.flush_bytes_written,
        m.compact_bytes_read,
        m.compact_bytes_written,
        m.write_amplification(),
        m.scans,
        m.stall_slowdowns,
        m.stall_stops,
        m.shard_splits,
    )
}
