//! Open-loop load driver: fixed arrival rate, coordinated-omission-free
//! latencies.
//!
//! A closed-loop driver (issue, wait, issue) silently stops generating
//! load exactly when the server is slow — each stall pushes every later
//! request's start time back, so the latency log *omits* the waiting
//! that a real independent client population would have experienced.
//! This driver instead fixes the arrival schedule up front: request `i`
//! is *due* at `start + i/rate`, and its recorded latency runs from
//! that scheduled instant to its response — queueing delay included,
//! whether the queue formed in the sender, the transport, or the
//! server. One thread paces submissions on the schedule while a second
//! collects completions (any order — the ids map back to schedule
//! slots), so a slow response never delays the next arrival.

use std::time::{Duration, Instant};

use crate::client::{Client, ClientError, Result};
use crate::hist::LatencyHistogram;
use crate::protocol::{Request, Response, ServerError};

/// What one open-loop run measured.
pub struct OpenLoopSummary {
    /// Requests submitted (== responses collected).
    pub ops: usize,
    /// Responses that were admission sheds (`RETRY_AFTER`). Their
    /// latencies are still recorded — a shed is a completion, and hiding
    /// it would understate tail latency exactly when the server is
    /// overloaded.
    pub shed: usize,
    /// Responses carrying any other typed server error.
    pub errors: usize,
    /// Wall-clock from first scheduled arrival to last response.
    pub elapsed: Duration,
    /// Scheduled-arrival-to-response latencies, nanoseconds.
    pub hist: LatencyHistogram,
}

impl OpenLoopSummary {
    /// Completions per second actually achieved.
    pub fn achieved_rate(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.ops as f64 / secs
        } else {
            0.0
        }
    }

    /// Latency (ns) at quantile `q` (e.g. `0.999`).
    pub fn latency_at(&self, q: f64) -> u64 {
        self.hist.value_at(q)
    }
}

/// Drive `ops` requests through `client` at `rate` arrivals per second;
/// `make_req(i)` supplies the i-th request.
///
/// The submitting side must be this call's exclusive use of
/// `client.submit` (ids must stay dense so responses map back to
/// schedule slots); other threads may still use a *different* client.
pub fn run_open_loop(
    client: &Client,
    rate: f64,
    ops: usize,
    mut make_req: impl FnMut(usize) -> Request,
) -> Result<OpenLoopSummary> {
    assert!(rate > 0.0, "open-loop rate must be positive");
    if ops == 0 {
        return Ok(OpenLoopSummary {
            ops: 0,
            shed: 0,
            errors: 0,
            elapsed: Duration::ZERO,
            hist: LatencyHistogram::new(),
        });
    }
    let period = Duration::from_secs_f64(1.0 / rate);
    let base_id = client.next_request_id();
    let start = Instant::now();

    std::thread::scope(|scope| {
        let collector = scope.spawn(move || -> Result<OpenLoopSummary> {
            let mut hist = LatencyHistogram::new();
            let mut shed = 0usize;
            let mut errors = 0usize;
            for _ in 0..ops {
                let (id, resp) = client.recv_next()?;
                let slot = id
                    .checked_sub(base_id)
                    .ok_or_else(|| ClientError::Protocol(format!("alien response id {id}")))?;
                let scheduled = start + period.mul_f64(slot as f64);
                let latency = Instant::now().saturating_duration_since(scheduled);
                hist.record(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
                match resp {
                    Response::Error(ServerError::RetryAfter { .. }) => shed += 1,
                    Response::Error(_) => errors += 1,
                    _ => {}
                }
            }
            Ok(OpenLoopSummary {
                ops,
                shed,
                errors,
                elapsed: start.elapsed(),
                hist,
            })
        });

        for i in 0..ops {
            let due = start + period.mul_f64(i as f64);
            loop {
                let now = Instant::now();
                if now >= due {
                    break;
                }
                std::thread::sleep(due - now);
            }
            client.submit(&make_req(i))?;
        }

        collector.join().expect("open-loop collector panicked")
    })
}
