//! End-to-end tests of the server: every opcode over the in-memory
//! transport, pipelined out-of-order completion, graceful shutdown
//! durability, corrupt-frame handling, admission-control shedding under
//! a stopped engine, and a TCP smoke test.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lsm_io::{MemStorage, Storage};
use lsm_server::protocol::{encode_request, MIN_FRAME};
use lsm_server::{
    tcp_connect, BatchEntry, Client, ClientError, MemTransport, Request, Response, Server,
    ServerError, ServerOptions, TcpTransport,
};
use lsm_tree::sharding::ShardedDb;
use lsm_tree::{EventKind, Maintenance, Options, ShardedOptions};
use rand::{RngCore, SeedableRng, StdRng};

fn mem_server(shards: usize) -> (Server, lsm_server::MemConnector) {
    let db = ShardedDb::open_memory(ShardedOptions::hash(shards, Options::small_for_tests()))
        .expect("open");
    let (connector, listener) = MemTransport::endpoint();
    let server = Server::start(db, Arc::new(listener), ServerOptions::default());
    (server, connector)
}

fn mem_server_with_obs(shards: usize) -> (Server, lsm_server::MemConnector) {
    let mut base = Options::small_for_tests();
    base.observability = true;
    let db = ShardedDb::open_memory(ShardedOptions::hash(shards, base)).expect("open");
    let (connector, listener) = MemTransport::endpoint();
    let server = Server::start(db, Arc::new(listener), ServerOptions::default());
    (server, connector)
}

#[test]
fn every_opcode_roundtrips() {
    let (server, connector) = mem_server(2);
    let client = Client::new(connector.connect().expect("dial"));

    assert_eq!(client.get(1).expect("get missing"), None);
    let seq1 = client.put(1, b"one", false).expect("put");
    let seq2 = client.put(2, b"two", true).expect("durable put");
    assert!(seq2 > seq1, "commit sequences advance");
    assert_eq!(client.get(1).expect("get"), Some(b"one".to_vec()));

    client
        .write_batch(
            vec![
                BatchEntry::Put(3, b"three".to_vec()),
                BatchEntry::Put(4, b"four".to_vec()),
                BatchEntry::Delete(1),
            ],
            false,
        )
        .expect("batch");
    assert_eq!(client.get(1).expect("get deleted"), None);

    let pairs = client.scan(0, 10).expect("scan");
    assert_eq!(
        pairs.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        vec![2, 3, 4]
    );

    let (snap_seq, pairs) = client.snapshot_scan(3, 10).expect("snapshot scan");
    assert!(snap_seq > 0);
    assert_eq!(
        pairs.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        vec![3, 4]
    );

    client.delete(2, false).expect("delete");
    assert_eq!(client.get(2).expect("get"), None);

    let stats = client.stats_json().expect("stats");
    assert!(
        stats.contains("\"topology_epoch\"") && stats.contains("\"resident_bytes\""),
        "stats JSON should carry sharded fields: {stats}"
    );

    server.close().expect("close");
}

#[test]
fn metrics_opcode_scrapes_histograms_and_events() {
    let (server, connector) = mem_server_with_obs(2);
    let client = Client::new(connector.connect().expect("dial"));

    for k in 0..500u64 {
        client.put(k, &[0xAB; 32], false).expect("put");
    }
    for k in (0..500u64).step_by(7) {
        client.get(k).expect("get");
    }
    client.scan(0, 64).expect("scan");

    let snap = client.metrics().expect("metrics");
    assert!(snap.enabled, "observability was requested at open");
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert_eq!(counter("write_batches"), 500);
    assert!(counter("lookups") >= 72);
    // Per-op histograms recorded per shard and folded across shards:
    // the fold's count is the sum of the shard counts, and quantiles
    // are populated (merge of distributions, not averages).
    assert_eq!(snap.shards.len(), 2);
    let shard_writes: u64 = snap.shards.iter().map(|s| s.write.count).sum();
    assert_eq!(snap.total.write.count, shard_writes);
    assert_eq!(snap.total.write.count, 500);
    assert!(snap.total.write.p99_ns >= snap.total.write.p50_ns);
    assert!(snap.total.get.count >= 72);
    assert_eq!(snap.total.scan.count, 1);
    // The 500 writes crossed several flushes under small_for_tests, so
    // the event timeline must carry at least one paired flush span.
    let begins: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.kind == EventKind::FlushBegin)
        .collect();
    assert!(!begins.is_empty(), "expected flush events in the timeline");
    for b in &begins {
        assert!(
            snap.events
                .iter()
                .any(|e| e.kind == EventKind::FlushEnd && e.span == b.span),
            "flush span {} must close",
            b.span
        );
    }
    let text = snap.render_text();
    assert!(text.contains("lsm_op_latency_ns{op=\"write\",shard=\"all\",quantile=\"0.99\"}"));
    assert!(text.contains("kind=flush_begin"));

    // A second scrape sees a drained ring: events go to exactly one
    // consumer, while histograms and counters persist.
    let again = client.metrics().expect("metrics again");
    assert_eq!(again.total.write.count, 500);
    assert!(
        again
            .events
            .iter()
            .all(|e| !begins.iter().any(|b| b.span == e.span)),
        "drained events must not reappear"
    );

    server.close().expect("close");
}

#[test]
fn metrics_with_observability_off_reports_counters_only() {
    let (server, connector) = mem_server(1);
    let client = Client::new(connector.connect().expect("dial"));
    client.put(1, b"x", false).expect("put");
    let snap = client.metrics().expect("metrics");
    assert!(!snap.enabled);
    assert!(snap
        .counters
        .iter()
        .any(|(n, v)| n == "write_batches" && *v == 1));
    assert_eq!(snap.total.write.count, 0);
    assert!(snap.events.is_empty());
    let text = snap.render_text();
    assert!(text.contains("lsm_observability_enabled 0"));
    assert!(
        !text.contains("lsm_op_latency_ns{"),
        "no quantiles when off"
    );
    server.close().expect("close");
}

#[test]
fn stats_and_metrics_interleave_consistently_under_pipelining() {
    let (server, connector) = mem_server_with_obs(2);
    let client = Client::new(connector.connect().expect("dial"));

    // Alternate writes with pipelined STATS and METRICS submissions; the
    // two surfaces must answer out of order without cross-talk, and each
    // snapshot's write counter must be consistent with the writes
    // acknowledged before it was submitted (monotone, bounded by total).
    let mut probes: Vec<(u64, bool, u64)> = Vec::new(); // (id, is_metrics, acked_before)
    let mut acked = 0u64;
    for round in 0..20u64 {
        for k in 0..10u64 {
            client.put(round * 10 + k, b"v", false).expect("put");
            acked += 1;
        }
        probes.push((
            client.submit(&Request::Stats).expect("submit stats"),
            false,
            acked,
        ));
        probes.push((
            client.submit(&Request::Metrics).expect("submit metrics"),
            true,
            acked,
        ));
    }
    let total = acked;
    let mut last_stats = 0u64;
    let mut last_metrics = 0u64;
    for (id, is_metrics, floor) in probes.into_iter().rev() {
        match (is_metrics, client.wait(id).expect("wait")) {
            (true, Response::Metrics(snap)) => {
                assert!(snap.enabled);
                let batches = snap
                    .counters
                    .iter()
                    .find(|(n, _)| n == "write_batches")
                    .map(|(_, v)| *v)
                    .expect("write_batches");
                assert!(
                    batches >= floor && batches <= total,
                    "metrics saw {batches}, acked floor {floor}, total {total}"
                );
                last_metrics = last_metrics.max(batches);
            }
            (false, Response::Stats { json }) => {
                assert!(json.contains("\"topology_epoch\""));
                last_stats += 1;
            }
            (_, other) => panic!("probe answered {other:?}"),
        }
    }
    assert_eq!(last_stats, 20, "every STATS probe answered as stats");
    assert_eq!(
        last_metrics, total,
        "the final metrics scrape saw every write"
    );
    server.close().expect("close");
}

#[test]
fn pipelined_responses_match_out_of_order_waits() {
    let (server, connector) = mem_server(2);
    let client = Client::new(connector.connect().expect("dial"));

    // Fill the store, then submit a burst of gets without waiting and
    // collect the responses in reverse submission order: the stash must
    // hand every id its own answer.
    for k in 0..50u64 {
        client
            .put(k, format!("v{k}").as_bytes(), false)
            .expect("put");
    }
    let ids: Vec<(u64, u64)> = (0..50u64)
        .map(|k| (k, client.submit(&Request::Get { key: k }).expect("submit")))
        .collect();
    for (k, id) in ids.into_iter().rev() {
        match client.wait(id).expect("wait") {
            Response::Value(Some(v)) => assert_eq!(v, format!("v{k}").into_bytes()),
            other => panic!("get {k} answered {other:?}"),
        }
    }
    server.close().expect("close");
}

#[test]
fn graceful_close_persists_every_acknowledged_durable_write() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let opts = || ShardedOptions::hash(2, Options::small_for_tests());
    let db = ShardedDb::open(Arc::clone(&storage), opts()).expect("open");
    let (connector, listener) = MemTransport::endpoint();
    let server = Server::start(db, Arc::new(listener), ServerOptions::default());
    let client = Client::new(connector.connect().expect("dial"));

    for k in 0..200u64 {
        client
            .put(k, format!("durable-{k}").as_bytes(), true)
            .expect("acknowledged durable put");
    }
    // Acknowledged means applied: close drains in-flight work, then
    // releases the engine cleanly.
    server.close().expect("graceful close");

    let reopened = ShardedDb::open(storage, opts()).expect("reopen");
    for k in 0..200u64 {
        assert_eq!(
            reopened.get(k).expect("get"),
            Some(format!("durable-{k}").into_bytes()),
            "acknowledged write to key {k} must survive close + reopen"
        );
    }
    reopened.close().expect("close reopened");
}

#[test]
fn close_answers_in_flight_requests_before_releasing_the_engine() {
    let (server, connector) = mem_server(1);
    let client = Arc::new(Client::new(connector.connect().expect("dial")));

    // Pipeline a pile of writes, then close concurrently. The in-memory
    // pipe delivers buffered frames before EOF, so the server reads all
    // of them even mid-shutdown — each must get a typed conclusion
    // (Committed if admitted before the drain began, ShuttingDown if
    // after), never silence or a torn frame.
    let ids: Vec<u64> = (0..100u64)
        .map(|k| {
            client
                .submit(&Request::Put {
                    key: k,
                    value: vec![b'x'; 16],
                    durable: false,
                })
                .expect("submit")
        })
        .collect();
    let closer = std::thread::spawn(move || server.close().expect("close"));
    let mut concluded = 0;
    for id in ids {
        match client.wait(id) {
            Ok(Response::Committed { .. }) | Ok(Response::Error(ServerError::ShuttingDown(_))) => {
                concluded += 1
            }
            Ok(other) => panic!("unexpected response {other:?}"),
            Err(e) => panic!("unexpected client error {e}"),
        }
    }
    closer.join().expect("closer panicked");
    assert_eq!(concluded, 100, "every request gets a typed conclusion");
}

#[test]
fn corrupt_frames_get_typed_errors_or_clean_disconnects() {
    let (server, connector) = mem_server(1);

    // Unknown opcode, intact framing: typed BAD_REQUEST, connection
    // survives.
    {
        let conn = connector.connect().expect("dial");
        let mut w = conn.writer;
        let mut body = Vec::new();
        body.extend_from_slice(&((MIN_FRAME + 1) as u32).to_le_bytes());
        body.extend_from_slice(&77u64.to_le_bytes());
        body.push(0x6f); // no such opcode
        body.push(0x00);
        w.write_all(&body).expect("send");
        let client = Client::from_halves(conn.reader, w);
        match client.wait(77) {
            Ok(Response::Error(ServerError::BadRequest(_))) => {}
            other => panic!("bad opcode answered {other:?}"),
        }
        // Still serviceable afterwards.
        let id = client.submit(&Request::Get { key: 0 }).expect("submit");
        assert!(matches!(client.wait(id), Ok(Response::Value(None))));
    }

    // Garbage payload under a valid opcode: typed BAD_REQUEST.
    {
        let conn = connector.connect().expect("dial");
        let mut w = conn.writer;
        let mut payload = vec![0u8]; // flags
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // value-length lie
        let mut body = Vec::new();
        body.extend_from_slice(&((MIN_FRAME + payload.len()) as u32).to_le_bytes());
        body.extend_from_slice(&5u64.to_le_bytes());
        body.push(0x02); // PUT
        body.extend_from_slice(&payload);
        w.write_all(&body).expect("send");
        let client = Client::from_halves(conn.reader, w);
        match client.wait(5) {
            Ok(Response::Error(ServerError::BadRequest(_))) => {}
            other => panic!("garbage payload answered {other:?}"),
        }
    }

    // Oversized declared length: framing is untrustworthy, the server
    // must disconnect (EOF on our read side), not hang or panic.
    {
        let conn = connector.connect().expect("dial");
        let mut w = conn.writer;
        w.write_all(&u32::MAX.to_le_bytes()).expect("send");
        w.write_all(&[0u8; 64]).expect("send");
        let mut r = conn.reader;
        let mut buf = [0u8; 16];
        assert_eq!(r.read(&mut buf).expect("read"), 0, "expected clean EOF");
    }

    // Truncated frame then writer close: server must just drop the
    // connection.
    {
        let conn = connector.connect().expect("dial");
        let teardown = conn.both_shutdown_handle();
        let mut w = conn.writer;
        let mut body = Vec::new();
        body.extend_from_slice(&100u32.to_le_bytes());
        body.extend_from_slice(&[1, 2, 3]); // 3 of the declared 100 bytes
        w.write_all(&body).expect("send");
        teardown();
    }

    // Seeded random garbage: whatever happens per connection, the server
    // neither panics nor wedges.
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for _ in 0..32 {
        let conn = connector.connect().expect("dial");
        let teardown = conn.both_shutdown_handle();
        let mut w = conn.writer;
        let n = (rng.next_u64() % 256 + 1) as usize;
        let mut junk = vec![0u8; n];
        for b in &mut junk {
            *b = rng.next_u64() as u8;
        }
        let _ = w.write_all(&junk);
        teardown();
    }

    // After all that abuse a fresh connection still works end to end.
    let client = Client::new(connector.connect().expect("dial"));
    client.put(9, b"alive", false).expect("put");
    assert_eq!(client.get(9).expect("get"), Some(b"alive".to_vec()));
    server.close().expect("close");
}

#[test]
fn stopped_engine_sheds_writes_with_retry_after_instead_of_stalling() {
    // Background maintenance with flushes paused: applied writes pile up
    // memtables until the engine would hard-stall its writers. The
    // server must convert that into RETRY_AFTER sheds at the edge.
    let mut base = Options::small_for_tests();
    base.maintenance = Maintenance::background();
    base.max_immutable_memtables = 1;
    let db = ShardedDb::open_memory(ShardedOptions::hash(1, base)).expect("open");
    let (connector, listener) = MemTransport::endpoint();
    let server = Server::start(
        db,
        Arc::new(listener),
        ServerOptions {
            workers: 2,
            ..ServerOptions::default()
        },
    );
    server.db().pause_flushes();

    let client = Client::new(connector.connect().expect("dial"));
    // Must fit the 32-byte table value slot of `small_for_tests`, or the
    // resumed flush itself would fail.
    let value = vec![0xABu8; 32];

    // Closed-loop writes (one at a time, so no request can be admitted
    // before the pressure it causes is visible): the write buffer is
    // 16 KiB in test options, so a few hundred 32-byte puts fill the
    // active memtable and the (paused) immutable queue. The put that
    // would have stalled inside the engine must come back as a typed
    // RETRY_AFTER within the deadline instead — shed, not stall.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut shed = 0u64;
    let mut committed = 0u64;
    let mut key = 0u64;
    while shed == 0 {
        assert!(
            Instant::now() < deadline,
            "no RETRY_AFTER shed observed ({committed} puts committed)"
        );
        match client.put(key, &value, false) {
            Ok(_) => committed += 1,
            Err(ClientError::Remote(ServerError::RetryAfter { ms })) => {
                assert!(ms > 0, "retry hint must be positive");
                shed += 1;
            }
            Err(e) => panic!("unexpected put failure: {e}"),
        }
        key += 1;
    }
    assert!(committed > 0, "puts before the stop must succeed");
    assert!(server.shed_count() > 0, "server must count its sheds");

    // Un-pause: the engine drains, and retrying eventually succeeds — a
    // shed was a backoff signal, not a failure.
    server.db().resume_flushes();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match client.put(u64::MAX, b"after", false) {
            Ok(_) => break,
            Err(ClientError::Remote(ServerError::RetryAfter { ms })) => {
                assert!(
                    Instant::now() < deadline,
                    "engine never recovered after resume_flushes"
                );
                std::thread::sleep(Duration::from_millis(u64::from(ms).max(5)));
            }
            Err(e) => panic!("post-recovery put failed: {e}"),
        }
    }
    assert_eq!(
        client.get(u64::MAX).expect("get"),
        Some(b"after".to_vec()),
        "recovered write must be readable"
    );
    server.close().expect("close");
}

#[test]
fn tcp_transport_smoke() {
    let db =
        ShardedDb::open_memory(ShardedOptions::hash(2, Options::small_for_tests())).expect("open");
    let transport = TcpTransport::bind("127.0.0.1:0").expect("bind");
    let addr = transport.local_addr().to_string();
    let server = Server::start(db, Arc::new(transport), ServerOptions::default());

    let client = Client::new(tcp_connect(&addr).expect("dial"));
    client.put(42, b"over tcp", true).expect("put");
    assert_eq!(client.get(42).expect("get"), Some(b"over tcp".to_vec()));
    assert_eq!(client.scan(0, 10).expect("scan").len(), 1);
    server.close().expect("close");
}

#[test]
fn requests_after_frame_cap_are_rejected_not_buffered() {
    // A frame larger than the server cap must kill the connection before
    // the server allocates for it.
    let db =
        ShardedDb::open_memory(ShardedOptions::hash(1, Options::small_for_tests())).expect("open");
    let (connector, listener) = MemTransport::endpoint();
    let server = Server::start(
        db,
        Arc::new(listener),
        ServerOptions {
            max_frame: 1 << 10,
            ..ServerOptions::default()
        },
    );
    let conn = connector.connect().expect("dial");
    let mut w = conn.writer;
    let mut buf = Vec::new();
    encode_request(
        &mut buf,
        1,
        &Request::Put {
            key: 1,
            value: vec![0u8; 4 << 10],
            durable: false,
        },
    );
    w.write_all(&buf).expect("send");
    let mut r = conn.reader;
    let mut byte = [0u8; 1];
    assert_eq!(r.read(&mut byte).expect("read"), 0, "expected disconnect");
    server.close().expect("close");
}
