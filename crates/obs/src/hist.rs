//! HDR-style log-bucketed latency histogram.
//!
//! Open-loop latency distributions span five-plus orders of magnitude
//! (sub-microsecond cache hits to multi-millisecond shed-and-retry
//! stalls), so a fixed-width histogram either wastes memory or loses
//! the tail. This one keeps exact counts below 128 ns and 64
//! logarithmic sub-buckets per power-of-two octave above that: relative
//! quantile error is bounded by 1/64 (~1.6 %) everywhere, with a few KiB
//! of total state and O(1) lock-free-free (single-writer) recording.
//!
//! Two recorders share the bucket scheme:
//!
//! * [`LatencyHistogram`] — single-writer (`&mut self`), the shape used
//!   by the open-loop driver and by folded snapshots;
//! * [`AtomicHistogram`] — shared-writer (`&self`, relaxed atomics), the
//!   shape the engine's hot paths record into concurrently. A snapshot
//!   lowers it into a `LatencyHistogram` for quantiles and merging.

/// Values below this are counted exactly (one bucket per nanosecond).
const EXACT_LIMIT: u64 = 128;
/// Sub-buckets per octave above the exact region.
const SUB_BUCKETS: u64 = 64;
/// 128ns..2^63, 64 sub-buckets each octave, plus the exact region.
const OCTAVES: usize = 57; // highest_one_bit range: 7..=63
const BUCKETS: usize = EXACT_LIMIT as usize + OCTAVES * SUB_BUCKETS as usize;

/// Latency histogram over `u64` nanosecond samples.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    sum: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
            sum: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v < EXACT_LIMIT {
            return v as usize;
        }
        // v has its highest set bit at position h (>= 7). The octave
        // [2^h, 2^(h+1)) is split into 64 sub-buckets of width 2^(h-6).
        let h = 63 - v.leading_zeros() as u64;
        let base = EXACT_LIMIT + (h - 7) * SUB_BUCKETS;
        let offset = (v >> (h - 6)) - SUB_BUCKETS;
        (base + offset) as usize
    }

    /// Lower edge of bucket `i` (the value reported for quantiles, so
    /// quantiles never over-state latency).
    fn bucket_floor(i: usize) -> u64 {
        let i = i as u64;
        if i < EXACT_LIMIT {
            return i;
        }
        let above = i - EXACT_LIMIT;
        let h = above / SUB_BUCKETS + 7;
        let offset = above % SUB_BUCKETS;
        (SUB_BUCKETS + offset) << (h - 6)
    }

    /// Record one sample (nanoseconds).
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum / self.total as u128) as u64
        }
    }

    /// Value at quantile `q` in `[0,1]`: the smallest bucket floor such
    /// that at least `ceil(q * count)` samples are at or below it.
    /// Returns 0 for an empty histogram; `q >= 1` returns the exact max.
    pub fn value_at(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        self.max
    }
}

/// Shared-writer histogram: the same bucket scheme as
/// [`LatencyHistogram`], recorded through relaxed atomics so every
/// engine thread can record into one instance without coordination.
///
/// Reading goes through [`AtomicHistogram::snapshot`], which lowers the
/// live counters into a [`LatencyHistogram`]. A snapshot taken while
/// writers are active is not a point-in-time cut — each bucket is read
/// independently — but `total` is recomputed from the bucket counts, so
/// the snapshot is always internally consistent for quantile queries.
pub struct AtomicHistogram {
    counts: Box<[std::sync::atomic::AtomicU64]>,
    max: std::sync::atomic::AtomicU64,
    sum: std::sync::atomic::AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    pub fn new() -> AtomicHistogram {
        let counts: Vec<std::sync::atomic::AtomicU64> = (0..BUCKETS)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect();
        AtomicHistogram {
            counts: counts.into_boxed_slice(),
            max: std::sync::atomic::AtomicU64::new(0),
            sum: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Record one sample (nanoseconds). Safe from any thread; never
    /// locks or allocates.
    #[inline]
    pub fn record(&self, v: u64) {
        use std::sync::atomic::Ordering::Relaxed;
        self.counts[LatencyHistogram::bucket_of(v)].fetch_add(1, Relaxed);
        self.max.fetch_max(v, Relaxed);
        self.sum.fetch_add(v, Relaxed);
    }

    /// Lower the live counters into a single-writer histogram.
    pub fn snapshot(&self) -> LatencyHistogram {
        use std::sync::atomic::Ordering::Relaxed;
        let mut counts = vec![0u64; BUCKETS];
        let mut total = 0u64;
        for (out, c) in counts.iter_mut().zip(self.counts.iter()) {
            *out = c.load(Relaxed);
            total += *out;
        }
        LatencyHistogram {
            counts,
            total,
            max: self.max.load(Relaxed),
            sum: self.sum.load(Relaxed) as u128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..EXACT_LIMIT {
            h.record(v);
        }
        for v in 0..EXACT_LIMIT {
            let q = (v + 1) as f64 / EXACT_LIMIT as f64;
            assert_eq!(h.value_at(q), v, "quantile {q} should hit {v} exactly");
        }
    }

    #[test]
    fn log_region_relative_error_bounded() {
        let mut h = LatencyHistogram::new();
        // Values scattered across six orders of magnitude.
        let mut v = 150u64;
        let mut samples = vec![];
        while v < 500_000_000 {
            h.record(v);
            samples.push(v);
            v = v * 21 / 16 + 3;
        }
        samples.sort_unstable();
        for (i, &s) in samples.iter().enumerate() {
            // Midpoint quantile: `ceil(q·n)` lands exactly on rank i+1
            // even with f64 rounding (an endpoint quantile can tip over
            // to rank i+2).
            let q = (i as f64 + 0.5) / samples.len() as f64;
            let got = h.value_at(q);
            assert!(got <= s, "floor convention: {got} > {s}");
            let err = (s - got) as f64 / s as f64;
            assert!(err < 1.0 / 32.0, "rel error {err} too big at {s}");
        }
    }

    #[test]
    fn max_mean_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        a.record(1_000);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.mean(), (10 + 1_000 + 1_000_000) / 3);
        assert_eq!(a.value_at(1.0), 1_000_000);
        assert_eq!(LatencyHistogram::new().value_at(0.5), 0);
    }

    #[test]
    fn bucket_floor_inverts_bucket_of() {
        for v in [0, 1, 127, 128, 129, 255, 256, 1 << 20, u64::MAX / 2] {
            let b = LatencyHistogram::bucket_of(v);
            let floor = LatencyHistogram::bucket_floor(b);
            assert!(floor <= v, "floor {floor} above value {v}");
            assert_eq!(
                LatencyHistogram::bucket_of(floor),
                b,
                "floor must stay in bucket"
            );
        }
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty histogram: every quantile (including q >= 1) is 0.
        let empty = LatencyHistogram::new();
        for q in [0.0, 0.5, 0.99, 1.0, 2.0] {
            assert_eq!(empty.value_at(q), 0, "empty hist at q={q}");
        }
        assert_eq!(empty.mean(), 0);
        assert_eq!(empty.max(), 0);

        // Single sample: every quantile reports it (its bucket floor for
        // q < 1, the exact value at q >= 1).
        let mut one = LatencyHistogram::new();
        one.record(42);
        for q in [0.0, 0.001, 0.5, 0.999] {
            assert_eq!(one.value_at(q), 42, "single-sample hist at q={q}");
        }
        assert_eq!(one.value_at(1.0), 42);
        assert_eq!(one.value_at(10.0), 42, "q past 1 clamps to exact max");

        // q >= 1 reports the *exact* max even when the max's bucket floor
        // is below it (log region).
        let mut big = LatencyHistogram::new();
        big.record(1_000_003);
        assert!(big.value_at(0.5) <= 1_000_003);
        assert_eq!(big.value_at(1.0), 1_000_003);
    }

    #[test]
    fn merge_folds_distributions_not_averages() {
        // The pitfall this crate exists to kill: averaging per-shard
        // quantiles. Two shards with disjoint latency bands must fold
        // into the quantiles of the *combined* sample set.
        let mut fast = LatencyHistogram::new();
        let mut slow = LatencyHistogram::new();
        for _ in 0..99 {
            fast.record(100);
        }
        slow.record(1_000_000);

        let mut folded = fast.clone();
        folded.merge(&slow);
        assert_eq!(folded.count(), 100);
        // p50 of the fold is in the fast band; p99 dominated by the slow
        // shard's single outlier is still fast (99 of 100 samples), while
        // p100 is the outlier — none of which "average of p50s" gets right.
        assert!(folded.value_at(0.50) <= 100);
        assert!(folded.value_at(0.99) <= 100);
        assert_eq!(folded.value_at(1.0), 1_000_000);

        // Merging an empty histogram is the identity.
        let before = folded.value_at(0.5);
        folded.merge(&LatencyHistogram::new());
        assert_eq!(folded.count(), 100);
        assert_eq!(folded.value_at(0.5), before);
    }

    #[test]
    fn atomic_histogram_matches_single_writer() {
        let a = AtomicHistogram::new();
        let mut h = LatencyHistogram::new();
        let mut v = 3u64;
        for _ in 0..10_000 {
            a.record(v);
            h.record(v);
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1) >> 34;
        }
        let snap = a.snapshot();
        assert_eq!(snap.count(), h.count());
        assert_eq!(snap.max(), h.max());
        assert_eq!(snap.mean(), h.mean());
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(snap.value_at(q), h.value_at(q), "q={q}");
        }
    }

    #[test]
    fn atomic_histogram_concurrent_record() {
        use std::sync::Arc;
        let a = Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for i in 0..25_000u64 {
                        a.record(t * 1_000 + (i % 97));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = a.snapshot();
        assert_eq!(snap.count(), 100_000);
        assert!(snap.max() >= 3_000);
    }
}
