//! Structured engine events.
//!
//! An [`Event`] is a fixed-size, `Copy` record: no strings, no heap —
//! the emit path must never allocate. What an event *means* is carried
//! by its [`EventKind`] plus two kind-specific payload words (`a`, `b`),
//! documented per variant. Begin/end pairs (flush, compaction, stall,
//! split lifecycle) share a nonzero span id so a consumer can stitch
//! durations back together even when other shards' events interleave.

use std::sync::OnceLock;
use std::time::Instant;

/// Monotonic nanoseconds since the first observability call in this
/// process. One process-wide anchor keeps timestamps comparable across
/// shards and threads (an `Instant` itself cannot be shipped over a
/// wire or printed).
pub fn now_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    Instant::now().duration_since(anchor).as_nanos() as u64
}

/// What happened. The `a`/`b` payload meanings are per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A commit group was appended to the WAL. `a` = batches fused into
    /// the group, `b` = WAL bytes appended.
    WriteGroupCommit = 1,
    /// The group's WAL record was synced. `a` = sync wall time (ns).
    WalSync = 2,
    /// The active memtable was frozen onto the immutable queue.
    /// `a` = resulting queue depth.
    MemtableRotation = 3,
    /// A flush started (spanned; paired with [`EventKind::FlushEnd`]).
    FlushBegin = 4,
    /// A flush finished. `a` = entries written, `b` = wall time (ns).
    FlushEnd = 5,
    /// A compaction started (spanned). `a` = source level.
    CompactionBegin = 6,
    /// A compaction finished. `a` = bytes read, `b` = bytes written.
    CompactionEnd = 7,
    /// A writer entered backpressure (spanned). `a` = 0 for a slowdown
    /// delay, 1 for a hard stop.
    StallBegin = 8,
    /// The writer resumed. `a` as in begin, `b` = stalled wall time (ns).
    StallEnd = 9,
    /// A live split opened its dual-write window (spanned across the
    /// whole lifecycle). `a` = parent shard id, `b` = cut key.
    SplitBegin = 10,
    /// The split's drain finished; from here until cutover every parent
    /// write is mirrored to a child. `a` = parent shard id.
    SplitDualWrite = 11,
    /// The split's topology epoch was sealed — the commit point.
    /// `a` = parent shard id, `b` = new topology epoch.
    SplitCutover = 12,
    /// The commit-marker log was checkpointed. `a` = live markers kept.
    CommitCheckpoint = 13,
    /// The server shed a request with `RETRY_AFTER` at admission.
    /// `a` = 1 if the shed request was a write.
    ServerShed = 14,
    /// One sub-range merge of a range-partitioned compaction started
    /// (spanned; its own span id pairs it with
    /// [`EventKind::SubcompactionEnd`]). `a` = the **parent** compaction's
    /// span id, `b` = sub-range index within the job — the linkage that
    /// stitches sub-spans back under their parent.
    SubcompactionBegin = 15,
    /// The sub-range merge finished. `a` = input bytes consumed by this
    /// sub-range, `b` = output bytes it wrote.
    SubcompactionEnd = 16,
}

impl EventKind {
    /// Stable lower-case name, used by the text renderings.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::WriteGroupCommit => "write_group_commit",
            EventKind::WalSync => "wal_sync",
            EventKind::MemtableRotation => "memtable_rotation",
            EventKind::FlushBegin => "flush_begin",
            EventKind::FlushEnd => "flush_end",
            EventKind::CompactionBegin => "compaction_begin",
            EventKind::CompactionEnd => "compaction_end",
            EventKind::StallBegin => "stall_begin",
            EventKind::StallEnd => "stall_end",
            EventKind::SplitBegin => "split_begin",
            EventKind::SplitDualWrite => "split_dual_write",
            EventKind::SplitCutover => "split_cutover",
            EventKind::CommitCheckpoint => "commit_checkpoint",
            EventKind::ServerShed => "server_shed",
            EventKind::SubcompactionBegin => "subcompaction_begin",
            EventKind::SubcompactionEnd => "subcompaction_end",
        }
    }

    /// Inverse of the `repr(u8)` discriminant — for wire decoding.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::WriteGroupCommit,
            2 => EventKind::WalSync,
            3 => EventKind::MemtableRotation,
            4 => EventKind::FlushBegin,
            5 => EventKind::FlushEnd,
            6 => EventKind::CompactionBegin,
            7 => EventKind::CompactionEnd,
            8 => EventKind::StallBegin,
            9 => EventKind::StallEnd,
            10 => EventKind::SplitBegin,
            11 => EventKind::SplitDualWrite,
            12 => EventKind::SplitCutover,
            13 => EventKind::CommitCheckpoint,
            14 => EventKind::ServerShed,
            15 => EventKind::SubcompactionBegin,
            16 => EventKind::SubcompactionEnd,
            _ => return None,
        })
    }
}

/// One engine event: fixed-size, `Copy`, allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Monotonic timestamp from [`now_ns`].
    pub ts_ns: u64,
    /// Nonzero for spanned events; begin/end (and the three split
    /// stages) of one logical operation share the same id. 0 for
    /// instantaneous events.
    pub span: u64,
    /// Kind-specific payload words (see [`EventKind`]).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// What happened.
    pub kind: EventKind,
    /// Stable shard id of the emitting shard (`u16::MAX` for
    /// engine-global emitters like the server edge).
    pub shard: u16,
}

/// The shard tag used by emitters that are not any one shard.
pub const GLOBAL_SHARD: u16 = u16::MAX;

impl Event {
    /// Render as one stable, grep-friendly text line (the format
    /// `obs_dump` prints and the metrics-smoke CI step asserts on).
    pub fn render(&self) -> String {
        format!(
            "event ts_us={:>10} shard={:>3} span={:>4} kind={} a={} b={}",
            self.ts_ns / 1_000,
            if self.shard == GLOBAL_SHARD {
                "-".to_string()
            } else {
                self.shard.to_string()
            },
            self.span,
            self.kind.name(),
            self.a,
            self.b,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn kind_roundtrips_through_u8() {
        for v in 0..=u8::MAX {
            if let Some(k) = EventKind::from_u8(v) {
                assert_eq!(k as u8, v);
                assert!(!k.name().is_empty());
            }
        }
        assert_eq!(EventKind::from_u8(0), None);
        assert_eq!(EventKind::from_u8(17), None);
    }

    #[test]
    fn render_is_stable() {
        let e = Event {
            ts_ns: 1_234_000,
            span: 7,
            a: 1,
            b: 2,
            kind: EventKind::FlushBegin,
            shard: 3,
        };
        let line = e.render();
        assert!(line.starts_with("event "));
        assert!(line.contains("kind=flush_begin"));
        assert!(line.contains("span=   7"));
    }
}
