//! The scrapeable surface: per-op histogram sets, the event observer,
//! and [`MetricsSnapshot`] — the one value that travels over the
//! `METRICS` opcode and renders as Prometheus-style text.
//!
//! Layering: this crate knows nothing about the engine. The engine
//! hangs an [`EngineObs`] off each shard (all sharing one [`Observer`])
//! and records into it; the sharding layer *folds* the per-shard
//! histograms (bucket-wise [`LatencyHistogram::merge`], never averages
//! of averages) and assembles the snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::event::{now_ns, Event, EventKind};
use crate::hist::{AtomicHistogram, LatencyHistogram};
use crate::ring::EventRing;

/// Default event-ring capacity used by [`EngineObs::solo`] (events; the
/// ring rounds up to a power of two).
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// The shared event sink: one per engine (all shards emit into it), so
/// the drained timeline interleaves shards in true order.
pub struct Observer {
    ring: EventRing,
    spans: AtomicU64,
}

impl Observer {
    pub fn new(ring_capacity: usize) -> Observer {
        Observer {
            ring: EventRing::new(ring_capacity),
            spans: AtomicU64::new(0),
        }
    }

    /// A fresh nonzero span id for a begin/end pair.
    #[inline]
    pub fn next_span(&self) -> u64 {
        self.spans.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Emit one event, stamped with the monotonic clock. Lock-free and
    /// allocation-free; a full ring drops the event and counts it.
    #[inline]
    pub fn emit(&self, kind: EventKind, shard: u16, span: u64, a: u64, b: u64) {
        self.ring.push(Event {
            ts_ns: now_ns(),
            span,
            a,
            b,
            kind,
            shard,
        });
    }

    /// Drain every ready event in enqueue order.
    pub fn drain(&self) -> Vec<Event> {
        self.ring.drain()
    }

    /// Drain into an existing buffer; returns the number drained.
    pub fn drain_into(&self, out: &mut Vec<Event>) -> usize {
        self.ring.drain_into(out)
    }

    /// Events dropped on ring overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }
}

/// The per-op latency recorders a single shard writes into.
#[derive(Default)]
pub struct OpHistograms {
    /// `Db::write` enqueue → fence publish (end-to-end commit latency).
    pub write: AtomicHistogram,
    /// Wall time the group leader spent in the WAL `sync` call.
    pub sync_wait: AtomicHistogram,
    /// `Db::get` end-to-end.
    pub get: AtomicHistogram,
    /// `Db::scan` end-to-end.
    pub scan: AtomicHistogram,
}

impl OpHistograms {
    /// Lower all four live recorders into single-writer histograms.
    pub fn snapshot(&self) -> OpHistSet {
        OpHistSet {
            write: self.write.snapshot(),
            sync_wait: self.sync_wait.snapshot(),
            get: self.get.snapshot(),
            scan: self.scan.snapshot(),
        }
    }
}

/// A snapshotted per-op histogram set — the unit the sharding layer
/// folds across shards.
#[derive(Clone, Default)]
pub struct OpHistSet {
    pub write: LatencyHistogram,
    pub sync_wait: LatencyHistogram,
    pub get: LatencyHistogram,
    pub scan: LatencyHistogram,
}

impl OpHistSet {
    /// Bucket-wise fold of another shard's distributions into this one.
    /// This is the correct cross-shard aggregation: quantiles of the
    /// merged histogram equal quantiles of the combined sample set,
    /// which no arithmetic on per-shard quantiles can reproduce.
    pub fn merge(&mut self, other: &OpHistSet) {
        self.write.merge(&other.write);
        self.sync_wait.merge(&other.sync_wait);
        self.get.merge(&other.get);
        self.scan.merge(&other.scan);
    }

    /// Summarize for the wire, tagged with `shard`.
    pub fn summarize(&self, shard: u16) -> OpLatencies {
        OpLatencies {
            shard,
            write: HistSummary::of(&self.write),
            sync_wait: HistSummary::of(&self.sync_wait),
            get: HistSummary::of(&self.get),
            scan: HistSummary::of(&self.scan),
        }
    }
}

/// One shard's observability handle: the shared observer plus this
/// shard's own histogram set and stable-id tag.
pub struct EngineObs {
    observer: Arc<Observer>,
    shard: u16,
    /// Per-op latency recorders (public: the engine records directly).
    pub ops: OpHistograms,
}

impl EngineObs {
    /// A handle tagged `shard`, emitting into a shared `observer`.
    pub fn new(observer: Arc<Observer>, shard: u16) -> EngineObs {
        EngineObs {
            observer,
            shard,
            ops: OpHistograms::default(),
        }
    }

    /// A standalone handle with its own observer — the single-`Db`
    /// (unsharded) configuration.
    pub fn solo(shard: u16) -> EngineObs {
        EngineObs::new(Arc::new(Observer::new(DEFAULT_RING_CAPACITY)), shard)
    }

    /// The shared event sink.
    pub fn observer(&self) -> &Arc<Observer> {
        &self.observer
    }

    /// This shard's stable id tag.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// A fresh span id (shared counter, so ids are unique engine-wide).
    #[inline]
    pub fn span(&self) -> u64 {
        self.observer.next_span()
    }

    /// Emit one event tagged with this shard.
    #[inline]
    pub fn emit(&self, kind: EventKind, span: u64, a: u64, b: u64) {
        self.observer.emit(kind, self.shard, span, a, b);
    }
}

/// Quantile summary of one histogram, small enough for the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSummary {
    pub count: u64,
    pub mean_ns: u64,
    pub max_ns: u64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
}

impl HistSummary {
    pub fn of(h: &LatencyHistogram) -> HistSummary {
        HistSummary {
            count: h.count(),
            mean_ns: h.mean(),
            max_ns: h.max(),
            p50_ns: h.value_at(0.50),
            p90_ns: h.value_at(0.90),
            p99_ns: h.value_at(0.99),
            p999_ns: h.value_at(0.999),
        }
    }
}

/// One shard's (or the fold's) per-op latency summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpLatencies {
    /// Stable shard id, or [`crate::GLOBAL_SHARD`] for the cross-shard fold.
    pub shard: u16,
    pub write: HistSummary,
    pub sync_wait: HistSummary,
    pub get: HistSummary,
    pub scan: HistSummary,
}

/// Everything a scrape returns: flat counters, folded + per-shard
/// latency distributions, and the recent event timeline.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Whether `Options::observability` was on. When off, only the
    /// counters are populated (today's `DbStats`, unperturbed).
    pub enabled: bool,
    /// Flat `DbStats` counters, name → value.
    pub counters: Vec<(String, u64)>,
    /// Cross-shard fold (histogram-merged, not averaged).
    pub total: OpLatencies,
    /// Per-shard summaries, one per live shard.
    pub shards: Vec<OpLatencies>,
    /// Recent events drained from the ring (enqueue order).
    pub events: Vec<Event>,
    /// Events lost to ring overflow since the engine opened.
    pub dropped_events: u64,
}

// ------------------------------------------------------------ wire codec
//
// The snapshot crosses the server protocol as an opaque payload, so it
// carries its own bounds-checked binary codec here (little-endian,
// mirroring the frame protocol's conventions). Decoding untrusted bytes
// must return a typed error, never panic or over-allocate: every count
// is validated against the bytes actually present before reserving.

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "metrics payload truncated: need {n} bytes, have {}",
                self.remaining()
            ));
        }
        let out = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Guard a decoded element count against the bytes present, so a
    /// count lie cannot drive a huge allocation.
    fn checked_count(&self, count: u32, min_elem_bytes: usize) -> Result<usize, String> {
        let count = count as usize;
        if count > self.remaining() / min_elem_bytes.max(1) + 1 {
            return Err(format!(
                "metrics count {count} impossible for {} remaining bytes",
                self.remaining()
            ));
        }
        Ok(count)
    }

    fn finish(&self) -> Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!(
                "metrics payload has {} trailing bytes",
                self.remaining()
            ));
        }
        Ok(())
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_summary(buf: &mut Vec<u8>, s: &HistSummary) {
    for v in [
        s.count, s.mean_ns, s.max_ns, s.p50_ns, s.p90_ns, s.p99_ns, s.p999_ns,
    ] {
        put_u64(buf, v);
    }
}

fn get_summary(c: &mut Cursor<'_>) -> Result<HistSummary, String> {
    Ok(HistSummary {
        count: c.u64()?,
        mean_ns: c.u64()?,
        max_ns: c.u64()?,
        p50_ns: c.u64()?,
        p90_ns: c.u64()?,
        p99_ns: c.u64()?,
        p999_ns: c.u64()?,
    })
}

fn put_op_latencies(buf: &mut Vec<u8>, l: &OpLatencies) {
    put_u16(buf, l.shard);
    put_summary(buf, &l.write);
    put_summary(buf, &l.sync_wait);
    put_summary(buf, &l.get);
    put_summary(buf, &l.scan);
}

fn get_op_latencies(c: &mut Cursor<'_>) -> Result<OpLatencies, String> {
    Ok(OpLatencies {
        shard: c.u16()?,
        write: get_summary(c)?,
        sync_wait: get_summary(c)?,
        get: get_summary(c)?,
        scan: get_summary(c)?,
    })
}

/// Bytes of one encoded [`OpLatencies`] (shard tag + 4 × 7 u64 fields).
const OP_LATENCIES_BYTES: usize = 2 + 4 * 7 * 8;
/// Bytes of one encoded [`Event`].
const EVENT_BYTES: usize = 8 * 4 + 1 + 2;

impl MetricsSnapshot {
    /// The snapshot an engine opened with observability off reports
    /// (counters are still filled in by the engine before sending).
    pub fn disabled() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Serialize for the wire (little-endian, self-delimiting).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.enabled as u8);
        put_u64(buf, self.dropped_events);
        put_u32(buf, self.counters.len() as u32);
        for (name, value) in &self.counters {
            put_u32(buf, name.len() as u32);
            buf.extend_from_slice(name.as_bytes());
            put_u64(buf, *value);
        }
        put_op_latencies(buf, &self.total);
        put_u32(buf, self.shards.len() as u32);
        for s in &self.shards {
            put_op_latencies(buf, s);
        }
        put_u32(buf, self.events.len() as u32);
        for e in &self.events {
            put_u64(buf, e.ts_ns);
            put_u64(buf, e.span);
            put_u64(buf, e.a);
            put_u64(buf, e.b);
            buf.push(e.kind as u8);
            put_u16(buf, e.shard);
        }
    }

    /// Decode an untrusted payload. Every failure is a typed message —
    /// truncation, count lies, unknown event kinds, trailing junk — and
    /// never a panic.
    pub fn decode(payload: &[u8]) -> Result<MetricsSnapshot, String> {
        let mut c = Cursor::new(payload);
        let enabled = match c.u8()? {
            0 => false,
            1 => true,
            other => return Err(format!("metrics enabled flag must be 0/1, got {other}")),
        };
        let dropped_events = c.u64()?;

        let raw = c.u32()?;
        let n = c.checked_count(raw, 4 + 8)?;
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            let raw = c.u32()?;
            let len = c.checked_count(raw, 1)?;
            let name = std::str::from_utf8(c.take(len)?)
                .map_err(|_| "metrics counter name is not UTF-8".to_string())?
                .to_string();
            counters.push((name, c.u64()?));
        }

        let total = get_op_latencies(&mut c)?;
        let raw = c.u32()?;
        let n = c.checked_count(raw, OP_LATENCIES_BYTES)?;
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(get_op_latencies(&mut c)?);
        }

        let raw = c.u32()?;
        let n = c.checked_count(raw, EVENT_BYTES)?;
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            let ts_ns = c.u64()?;
            let span = c.u64()?;
            let a = c.u64()?;
            let b = c.u64()?;
            let kind = c.u8()?;
            let shard = c.u16()?;
            let kind = EventKind::from_u8(kind)
                .ok_or_else(|| format!("metrics event kind {kind} unknown"))?;
            events.push(Event {
                ts_ns,
                span,
                a,
                b,
                kind,
                shard,
            });
        }
        c.finish()?;
        Ok(MetricsSnapshot {
            enabled,
            counters,
            total,
            shards,
            events,
            dropped_events,
        })
    }

    /// Prometheus-style text exposition: counters, per-op latency
    /// quantile gauges (the cross-shard fold plus one series per
    /// shard), the drop counter, and the recent event timeline as
    /// trailing comment lines.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE lsm_counter counter\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("lsm_{name} {value}\n"));
        }
        out.push_str(&format!(
            "lsm_observability_enabled {}\n",
            self.enabled as u8
        ));
        out.push_str(&format!("lsm_events_dropped {}\n", self.dropped_events));
        if self.enabled {
            out.push_str("# TYPE lsm_op_latency_ns summary\n");
            let mut render_shard = |label: &str, l: &OpLatencies| {
                for (op, s) in [
                    ("write", &l.write),
                    ("sync_wait", &l.sync_wait),
                    ("get", &l.get),
                    ("scan", &l.scan),
                ] {
                    for (q, v) in [
                        ("0.5", s.p50_ns),
                        ("0.9", s.p90_ns),
                        ("0.99", s.p99_ns),
                        ("0.999", s.p999_ns),
                        ("1", s.max_ns),
                    ] {
                        out.push_str(&format!(
                            "lsm_op_latency_ns{{op=\"{op}\",shard=\"{label}\",quantile=\"{q}\"}} {v}\n"
                        ));
                    }
                    out.push_str(&format!(
                        "lsm_op_latency_ns_count{{op=\"{op}\",shard=\"{label}\"}} {}\n",
                        s.count
                    ));
                    out.push_str(&format!(
                        "lsm_op_latency_ns_mean{{op=\"{op}\",shard=\"{label}\"}} {}\n",
                        s.mean_ns
                    ));
                }
            };
            render_shard("all", &self.total);
            for l in &self.shards {
                let label = l.shard.to_string();
                render_shard(&label, l);
            }
            // The timeline tail: the *most recent* events only, so a
            // scrape stays readable when the drain caught a full ring.
            const RENDERED_EVENTS: usize = 128;
            let skipped = self.events.len().saturating_sub(RENDERED_EVENTS);
            if skipped > 0 {
                out.push_str(&format!("# ... {skipped} earlier events elided\n"));
            }
            for e in &self.events[skipped..] {
                out.push_str("# ");
                out.push_str(&e.render());
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::GLOBAL_SHARD;

    fn sample_snapshot() -> MetricsSnapshot {
        let obs = EngineObs::solo(2);
        obs.ops.write.record(1_000);
        obs.ops.write.record(2_000);
        obs.ops.get.record(500);
        let span = obs.span();
        obs.emit(EventKind::FlushBegin, span, 0, 0);
        obs.emit(EventKind::FlushEnd, span, 128, 9_999);
        let set = obs.ops.snapshot();
        MetricsSnapshot {
            enabled: true,
            counters: vec![("lookups".into(), 7), ("flushes".into(), 1)],
            total: set.summarize(GLOBAL_SHARD),
            shards: vec![set.summarize(2)],
            events: obs.observer().drain(),
            dropped_events: obs.observer().dropped(),
        }
    }

    #[test]
    fn snapshot_roundtrips() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        snap.encode(&mut buf);
        let back = MetricsSnapshot::decode(&buf).expect("decode");
        assert_eq!(back, snap);
        assert_eq!(back.events.len(), 2);
        assert_eq!(back.events[0].span, back.events[1].span);
    }

    #[test]
    fn disabled_snapshot_roundtrips() {
        let mut snap = MetricsSnapshot::disabled();
        snap.counters.push(("write_batches".into(), 42));
        let mut buf = Vec::new();
        snap.encode(&mut buf);
        assert_eq!(MetricsSnapshot::decode(&buf).expect("decode"), snap);
    }

    #[test]
    fn corrupt_payloads_are_typed_errors_never_panics() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        snap.encode(&mut buf);

        // Every truncation point fails cleanly.
        for cut in 0..buf.len() {
            assert!(
                MetricsSnapshot::decode(&buf[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        // Trailing junk is rejected.
        let mut long = buf.clone();
        long.push(0);
        assert!(MetricsSnapshot::decode(&long).is_err());
        // Count lies cannot drive allocation.
        let mut lied = buf.clone();
        lied[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(MetricsSnapshot::decode(&lied).is_err());
        // A bad enabled flag is typed.
        let mut bad = buf.clone();
        bad[0] = 7;
        assert!(MetricsSnapshot::decode(&bad)
            .unwrap_err()
            .contains("enabled flag"));
        // Seeded byte flips: decode either succeeds or errors, never
        // panics (structural fields may survive a payload-word flip).
        let mut seed = 0x9e3779b97f4a7c15u64;
        for _ in 0..2_000 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut fuzzed = buf.clone();
            let at = (seed >> 33) as usize % fuzzed.len();
            fuzzed[at] ^= (seed >> 17) as u8 | 1;
            let _ = MetricsSnapshot::decode(&fuzzed);
        }
    }

    #[test]
    fn render_text_exposes_quantiles_and_events() {
        let text = sample_snapshot().render_text();
        assert!(text.contains("lsm_lookups 7"));
        assert!(text.contains("lsm_observability_enabled 1"));
        assert!(text.contains("op=\"write\",shard=\"all\",quantile=\"0.99\""));
        assert!(text.contains("op=\"get\",shard=\"2\",quantile=\"0.5\""));
        assert!(text.contains("# event "));
        assert!(text.contains("kind=flush_begin"));
    }

    #[test]
    fn fold_matches_combined_distribution() {
        // Two shards' histograms folded through OpHistSet::merge give
        // the quantiles of the union — the satellite's sum-of-averages
        // fix, asserted end-to-end.
        let a = EngineObs::solo(0);
        let b = EngineObs::solo(1);
        for _ in 0..90 {
            a.ops.get.record(100);
        }
        for _ in 0..10 {
            b.ops.get.record(1_000_000);
        }
        let mut fold = a.ops.snapshot();
        fold.merge(&b.ops.snapshot());
        let s = fold.summarize(GLOBAL_SHARD).get;
        assert_eq!(s.count, 100);
        assert!(s.p50_ns <= 100);
        assert!(s.p99_ns >= 900_000, "tail comes from the slow shard");
        // Mean of the fold is the true pooled mean, not (mean+mean)/2.
        assert_eq!(s.mean_ns, (90 * 100 + 10 * 1_000_000) / 100);
    }
}
