//! `lsm-obs`: engine-wide observability primitives.
//!
//! Production systems are debugged through traces, histograms, and
//! scrapeable metrics; flat counters alone cannot say *which* flush
//! stalled a writer or *when* a split's dual-write window opened. This
//! crate is the engine's shared observability substrate — deliberately
//! free of engine dependencies so every layer (engine, sharding,
//! server, benches) can record into it:
//!
//! * [`EventRing`] — a lock-free, fixed-capacity MPSC ring of
//!   structured [`Event`]s. Emitting never locks or allocates; a full
//!   ring drops the new event and counts the drop. Begin/end pairs
//!   share a span id for duration stitching.
//! * [`LatencyHistogram`] / [`AtomicHistogram`] — HDR-style
//!   log-bucketed distributions (exact below 128 ns, 64 sub-buckets per
//!   octave, ≤1/64 relative quantile error). The atomic variant is the
//!   multi-writer recorder the engine's hot paths use; snapshots lower
//!   into the single-writer form for folding and quantiles.
//! * [`MetricsSnapshot`] — counters + folded histogram quantiles +
//!   recent events, with a bounds-checked wire codec (the `METRICS`
//!   opcode payload) and a Prometheus-style [`MetricsSnapshot::render_text`].
//!
//! Cross-shard aggregation folds **histograms**, never averages of
//! per-shard quantiles — see [`OpHistSet::merge`].

pub mod event;
pub mod hist;
pub mod metrics;
pub mod ring;

pub use event::{now_ns, Event, EventKind, GLOBAL_SHARD};
pub use hist::{AtomicHistogram, LatencyHistogram};
pub use metrics::{
    EngineObs, HistSummary, MetricsSnapshot, Observer, OpHistSet, OpHistograms, OpLatencies,
    DEFAULT_RING_CAPACITY,
};
pub use ring::EventRing;
