//! Lock-free bounded MPSC ring buffer of [`Event`]s.
//!
//! Producers are the engine's hot paths — group-commit leaders, stall
//! gates, background workers — so the emit side must never take a lock
//! or allocate. The design is the classic bounded queue of per-slot
//! sequence numbers (Vyukov): each slot carries an `AtomicU64` ticket;
//! a producer claims a position with one CAS on the tail, writes the
//! event into the slot's cell, and publishes it by storing the slot's
//! ticket with `Release`. A full ring **drops the new event** and
//! counts it ([`EventRing::dropped`]) — backpressure on an
//! observability channel must never reach the write path, and
//! drop-newest is the only policy that needs no producer/consumer
//! coordination. The consumer side ([`EventRing::drain`]) is
//! single-consumer by construction: it is serialized by a mutex held
//! only on the drain path, which no producer ever touches.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::{Event, EventKind};

struct Slot {
    /// Ticket protocol: `seq == pos` ⇒ free for the producer claiming
    /// `pos`; `seq == pos + 1` ⇒ holds the event enqueued at `pos`,
    /// ready for the consumer; after consumption the consumer stores
    /// `pos + capacity`, re-arming the slot for the next lap.
    seq: AtomicU64,
    cell: UnsafeCell<Event>,
}

/// Fixed-capacity, lock-free (producer side) MPSC event ring.
pub struct EventRing {
    slots: Box<[Slot]>,
    /// Next enqueue position (monotone; slot = pos & mask).
    tail: AtomicU64,
    /// Next dequeue position. Only the drain-lock holder advances it.
    head: AtomicU64,
    /// Events discarded because the ring was full.
    dropped: AtomicU64,
    mask: u64,
    drain_lock: Mutex<()>,
}

// The UnsafeCell is published/consumed strictly through the slot ticket
// protocol (Release store after write, Acquire load before read), so
// cross-thread access to the cell contents is data-race-free.
unsafe impl Send for EventRing {}
unsafe impl Sync for EventRing {}

impl EventRing {
    /// A ring holding up to `capacity` events (rounded up to a power of
    /// two, minimum 8).
    pub fn new(capacity: usize) -> EventRing {
        let cap = capacity.max(8).next_power_of_two() as u64;
        let slots: Vec<Slot> = (0..cap)
            .map(|i| Slot {
                seq: AtomicU64::new(i),
                cell: UnsafeCell::new(Event {
                    ts_ns: 0,
                    span: 0,
                    a: 0,
                    b: 0,
                    kind: EventKind::WriteGroupCommit,
                    shard: 0,
                }),
            })
            .collect();
        EventRing {
            slots: slots.into_boxed_slice(),
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            mask: cap - 1,
            drain_lock: Mutex::new(()),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events dropped because the ring was full when they were emitted.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Enqueue one event. Lock-free and allocation-free; on a full ring
    /// the event is dropped (counted) rather than blocking the emitter.
    /// Returns whether the event was stored.
    pub fn push(&self, event: Event) -> bool {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // Free this lap: claim it.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // We own the slot until the Release store below.
                        unsafe { *slot.cell.get() = event };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq < pos {
                // Slot still holds an unconsumed event from the previous
                // lap: the ring is full. Drop-newest, never block.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                // Another producer claimed `pos` between our load and the
                // slot check; reread the tail.
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Drain every ready event, in enqueue order, into `out`. Returns
    /// the number drained. Concurrent drains serialize on an internal
    /// mutex (held only here — producers never see it).
    pub fn drain_into(&self, out: &mut Vec<Event>) -> usize {
        let _guard = self.drain_lock.lock().unwrap();
        let mut pos = self.head.load(Ordering::Relaxed);
        let mut n = 0;
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != pos + 1 {
                // Either empty, or a producer claimed the slot but has
                // not published yet — stop at the gap to preserve order.
                break;
            }
            out.push(unsafe { *slot.cell.get() });
            // Re-arm the slot for the lap `capacity` ahead.
            slot.seq
                .store(pos + self.slots.len() as u64, Ordering::Release);
            pos += 1;
            n += 1;
        }
        self.head.store(pos, Ordering::Relaxed);
        n
    }

    /// Convenience drain into a fresh vector.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::now_ns;
    use std::sync::Arc;

    fn ev(kind: EventKind, span: u64, a: u64, b: u64, shard: u16) -> Event {
        Event {
            ts_ns: now_ns(),
            span,
            a,
            b,
            kind,
            shard,
        }
    }

    #[test]
    fn fifo_within_capacity() {
        let ring = EventRing::new(16);
        for i in 0..10 {
            assert!(ring.push(ev(EventKind::WalSync, 0, i, 0, 0)));
        }
        let out = ring.drain();
        assert_eq!(out.len(), 10);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.a, i as u64);
        }
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_drops_newest_and_counts_exactly() {
        let ring = EventRing::new(8);
        let mut stored = 0;
        for i in 0..20u64 {
            if ring.push(ev(EventKind::WalSync, 0, i, 0, 0)) {
                stored += 1;
            }
        }
        assert_eq!(stored, 8);
        assert_eq!(ring.dropped(), 12, "exact drop count");
        let out = ring.drain();
        assert_eq!(out.len(), 8);
        // Drop-newest: the survivors are the *first* 8 events.
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.a, i as u64);
        }
        // Drained slots are reusable.
        assert!(ring.push(ev(EventKind::WalSync, 0, 99, 0, 0)));
        assert_eq!(ring.drain()[0].a, 99);
    }

    #[test]
    fn wraps_across_many_laps() {
        let ring = EventRing::new(8);
        let mut next = 0u64;
        for lap in 0..100u64 {
            for i in 0..5 {
                assert!(ring.push(ev(EventKind::WalSync, 0, lap * 5 + i, 0, 0)));
            }
            for e in ring.drain() {
                assert_eq!(e.a, next, "order preserved across wraps");
                next += 1;
            }
        }
        assert_eq!(next, 500);
        assert_eq!(ring.dropped(), 0);
    }

    /// The satellite's emit storm: many producers, a ring sized so that
    /// overflow definitely happens, then assertions that (a) no event is
    /// torn — each carries a self-consistent (producer, payload) pair —
    /// (b) span begin/end pairs survive in order per producer, and
    /// (c) stored + dropped accounts for every single emit.
    #[test]
    fn multi_producer_storm_no_tearing_exact_accounting() {
        const PRODUCERS: u64 = 8;
        const SPANS_PER_PRODUCER: u64 = 2_000;
        let ring = Arc::new(EventRing::new(1024));
        let drained = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicU64::new(0));

        // One live consumer tailing while producers emit.
        let consumer = {
            let ring = Arc::clone(&ring);
            let drained = Arc::clone(&drained);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || loop {
                let batch = ring.drain();
                drained.lock().unwrap().extend(batch);
                if stop.load(Ordering::Acquire) == 1 {
                    let batch = ring.drain();
                    drained.lock().unwrap().extend(batch);
                    break;
                }
                std::thread::yield_now();
            })
        };

        let stored_total = Arc::new(AtomicU64::new(0));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let ring = Arc::clone(&ring);
                let stored_total = Arc::clone(&stored_total);
                std::thread::spawn(move || {
                    let mut stored = 0u64;
                    for s in 0..SPANS_PER_PRODUCER {
                        let span = p * SPANS_PER_PRODUCER + s + 1;
                        // A torn event would break a == span ^ (p << 56)
                        // or pair a begin tag with an end payload.
                        if ring.push(ev(
                            EventKind::StallBegin,
                            span,
                            span ^ (p << 56),
                            p,
                            p as u16,
                        )) {
                            stored += 1;
                        }
                        if ring.push(ev(EventKind::StallEnd, span, span ^ (p << 56), p, p as u16)) {
                            stored += 1;
                        }
                    }
                    stored_total.fetch_add(stored, Ordering::Relaxed);
                })
            })
            .collect();
        for t in producers {
            t.join().unwrap();
        }
        stop.store(1, Ordering::Release);
        consumer.join().unwrap();

        let events = drained.lock().unwrap();
        let stored = stored_total.load(Ordering::Relaxed);
        let emitted = PRODUCERS * SPANS_PER_PRODUCER * 2;

        // (c) exact accounting: nothing lost, nothing duplicated.
        assert_eq!(events.len() as u64, stored);
        assert_eq!(stored + ring.dropped(), emitted);
        assert!(ring.dropped() > 0, "storm must actually overflow");

        // (a) no torn events: payload words are mutually consistent.
        for e in events.iter() {
            let p = e.b;
            assert!(p < PRODUCERS);
            assert_eq!(e.shard as u64, p, "shard/payload torn");
            assert_eq!(e.a, e.span ^ (p << 56), "a/span torn");
            assert!(matches!(
                e.kind,
                EventKind::StallBegin | EventKind::StallEnd
            ));
        }

        // (b) per-producer span pairing is monotone: a producer's spans
        // appear in increasing order, and an end never precedes its begin.
        for p in 0..PRODUCERS {
            let mut last_span = 0u64;
            let mut open: Option<u64> = None;
            for e in events.iter().filter(|e| e.b == p) {
                assert!(e.span >= last_span, "producer {p} span order violated");
                last_span = e.span;
                match e.kind {
                    // A begin's end may have been dropped (drop-newest),
                    // so a new begin can follow an unclosed one — but a
                    // surviving end must match the latest surviving begin.
                    EventKind::StallBegin => open = Some(e.span),
                    EventKind::StallEnd => {
                        if let Some(b) = open.take() {
                            assert!(b <= e.span, "end precedes its begin");
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}
