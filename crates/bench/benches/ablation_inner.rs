//! Ablation: inner-index structures over the *same* segmentation.
//!
//! The paper's tuning guide argues the inner index (how a lookup finds its
//! segment) matters far less than the position boundary. This bench isolates
//! segment location: identical greedy segments behind a sorted array (PLR),
//! a B+-tree (FITing-Tree), and — on the spline side — a radix table (RS)
//! vs a hist-tree (PLEX), all predicting against the same key set.

use criterion::{criterion_group, criterion_main, Criterion};
use learned_index::bptree::BPlusTree;
use learned_index::cone::segment_keys;
use learned_index::histtree::HistTree;
use learned_index::spline::build_spline;
use lsm_workloads::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_inner_structures(c: &mut Criterion) {
    let keys = Dataset::Longitude.generate(200_000, 3);
    let eps = 16;

    // Cone side: PLR's sorted array vs FITing-Tree's B+-tree.
    let segments = segment_keys(&keys, eps);
    let first_keys: Vec<u64> = segments.iter().map(|s| s.first_key).collect();
    let bptree = BPlusTree::build(&first_keys, 16);

    // Spline side: RS-style binary search vs PLEX's hist-tree.
    let knots = build_spline(&keys, eps);
    let knot_keys: Vec<u64> = knots.iter().map(|k| k.key).collect();
    let hist = HistTree::build(&knot_keys, 6, 16);

    let mut rng = StdRng::seed_from_u64(9);
    let probes: Vec<u64> = (0..1024)
        .map(|_| keys[rng.gen_range(0..keys.len())])
        .collect();

    let mut g = c.benchmark_group("inner_index_locate");
    g.sample_size(20);
    g.bench_function("sorted_array_binary_search", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 1023;
            std::hint::black_box(
                first_keys
                    .partition_point(|&k| k <= probes[i])
                    .saturating_sub(1),
            )
        });
    });
    g.bench_function("bptree", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 1023;
            std::hint::black_box(bptree.rank(probes[i]))
        });
    });
    g.bench_function("spline_binary_search", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 1023;
            std::hint::black_box(
                knot_keys
                    .partition_point(|&k| k <= probes[i])
                    .saturating_sub(1),
            )
        });
    });
    g.bench_function("hist_tree", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 1023;
            std::hint::black_box(hist.lookup(probes[i]))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_inner_structures);
criterion_main!(benches);
