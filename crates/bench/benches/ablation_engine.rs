//! Ablations of engine-level design choices:
//!
//! * binary vs exponential in-segment search (Ramadhan et al.'s extension);
//! * block cache on/off under a zipfian read workload (the "memory budget
//!   competitor" of Section 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use learned_index::IndexKind;
use lsm_io::{CostModel, SimStorage};
use lsm_tree::{Db, IndexChoice, Options, SearchStrategy};
use lsm_workloads::{Dataset, RequestDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn build_db(search: SearchStrategy, cache_bytes: usize, keys: &[u64]) -> Db {
    let mut opts = Options::small_for_tests();
    opts.index = IndexChoice::with_boundary(IndexKind::Pgm, 128);
    opts.write_buffer_bytes = 256 << 10;
    opts.sstable_target_bytes = 128 << 10;
    opts.search = search;
    opts.block_cache_bytes = cache_bytes;
    opts.wal = false;
    let db = Db::open(Arc::new(SimStorage::new(CostModel::default())), opts).expect("open");
    db.bulk_load(keys.iter().map(|&k| (k, vec![0u8; 24])))
        .expect("load");
    db
}

fn bench_search_strategy(c: &mut Criterion) {
    let keys = Dataset::Books.generate(60_000, 5);
    let mut g = c.benchmark_group("search_strategy_b128");
    g.sample_size(20);
    for (name, strategy) in [
        ("binary", SearchStrategy::Binary),
        ("exponential", SearchStrategy::Exponential),
    ] {
        let db = build_db(strategy, 0, &keys);
        let mut rng = StdRng::seed_from_u64(1);
        let chooser = RequestDistribution::Uniform.chooser(keys.len());
        let probes: Vec<u64> = (0..1024).map(|_| keys[chooser.next(&mut rng)]).collect();
        g.bench_with_input(BenchmarkId::from_parameter(name), &db, |b, db| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) & 1023;
                std::hint::black_box(db.get(probes[i]).expect("get"))
            });
        });
    }
    g.finish();
}

fn bench_block_cache(c: &mut Criterion) {
    let keys = Dataset::Random.generate(60_000, 6);
    let mut g = c.benchmark_group("block_cache_zipfian");
    g.sample_size(20);
    for (name, cache) in [("uncached", 0usize), ("cached_1MiB", 1 << 20)] {
        let db = build_db(SearchStrategy::Binary, cache, &keys);
        let mut rng = StdRng::seed_from_u64(2);
        let chooser = RequestDistribution::Zipfian { theta: 0.99 }.chooser(keys.len());
        let probes: Vec<u64> = (0..1024).map(|_| keys[chooser.next(&mut rng)]).collect();
        g.bench_with_input(BenchmarkId::from_parameter(name), &db, |b, db| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) & 1023;
                std::hint::black_box(db.get(probes[i]).expect("get"))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_search_strategy, bench_block_cache);
criterion_main!(benches);
