//! Future direction #2 (paper §6.2): learned indexes across the LSM design
//! space. Compares leveling vs tiering under write and read workloads, with
//! fence pointers and PGM — the interaction the paper says current design-
//! space studies overlook.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use learned_index::IndexKind;
use lsm_tree::{CompactionPolicy, Db, IndexChoice, Options};
use lsm_workloads::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn opts(policy: CompactionPolicy, kind: IndexKind) -> Options {
    let mut o = Options::small_for_tests();
    o.index = IndexChoice::with_boundary(kind, 64);
    o.write_buffer_bytes = 64 << 10;
    o.sstable_target_bytes = 64 << 10;
    o.compaction = policy;
    o.wal = false;
    o
}

fn bench_policies(c: &mut Criterion) {
    const N: u64 = 15_000;
    let policies = [
        ("leveling", CompactionPolicy::Leveling),
        ("tiering", CompactionPolicy::Tiering { runs_per_level: 4 }),
    ];

    let mut g = c.benchmark_group("policy_write_path");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N));
    for (pname, policy) in policies {
        for kind in [IndexKind::FencePointers, IndexKind::Pgm] {
            let label = format!("{pname}/{}", kind.abbrev());
            g.bench_with_input(
                BenchmarkId::from_parameter(label),
                &(policy, kind),
                |b, &(p, k)| {
                    b.iter(|| {
                        let db = Db::open_memory(opts(p, k)).expect("open");
                        for i in 0..N {
                            db.put((i * 2_654_435_761) % (1 << 30), &[7u8; 24])
                                .expect("put");
                        }
                        db.flush().expect("flush");
                    });
                },
            );
        }
    }
    g.finish();

    let mut g = c.benchmark_group("policy_point_lookup");
    g.sample_size(20);
    for (pname, policy) in policies {
        for kind in [IndexKind::FencePointers, IndexKind::Pgm] {
            let db = Db::open_memory(opts(policy, kind)).expect("open");
            let keys = Dataset::Random.generate(30_000, 8);
            for &k in &keys {
                db.put(k, &[1u8; 24]).expect("put");
            }
            db.flush().expect("flush");
            let mut rng = StdRng::seed_from_u64(3);
            let probes: Vec<u64> = (0..1024)
                .map(|_| keys[rng.gen_range(0..keys.len())])
                .collect();
            let label = format!("{pname}/{}", kind.abbrev());
            g.bench_with_input(BenchmarkId::from_parameter(label), &db, |b, db| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) & 1023;
                    std::hint::black_box(db.get(probes[i]).expect("get"))
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
