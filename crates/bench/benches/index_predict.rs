//! Criterion micro-bench: prediction latency per family (the "Prediction"
//! stage of Figure 7(B) / Table 1, isolated from I/O).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use learned_index::{IndexConfig, IndexKind};
use lsm_workloads::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_predict(c: &mut Criterion) {
    let keys = Dataset::Random.generate(200_000, 11);
    let config = IndexConfig {
        epsilon: 16,
        ..IndexConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(3);
    let probes: Vec<u64> = (0..1024)
        .map(|_| keys[rng.gen_range(0..keys.len())])
        .collect();

    let mut g = c.benchmark_group("index_predict_200k_random");
    g.sample_size(20);
    for kind in IndexKind::ALL {
        let idx = kind.build(&keys, &config);
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.abbrev()),
            &idx,
            |b, idx| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) & 1023;
                    std::hint::black_box(idx.predict(probes[i]))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_predict);
criterion_main!(benches);
