//! Criterion micro-bench: zipfian point-read cost as the engine-wide cache
//! budget grows — 0 (uncached baseline) through a budget large enough to
//! hold the skewed working set. Read charges on the simulated device are
//! counted on a virtual clock, not slept, so each sample is wall time
//! *plus* the modeled device time the iteration incurred (`iter_custom`);
//! the spread between parameters is the device time the cache absorbed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use learned_index::IndexKind;
use learned_lsm::{Granularity, Testbed, TestbedConfig};
use lsm_workloads::{Dataset, RequestDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_read_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_cache_40k_zipfian_b64");
    g.sample_size(20);
    for cache_kib in [0usize, 256, 1024, 4096] {
        let mut config = TestbedConfig::quick(IndexKind::Pgm, 64, Dataset::Random);
        config.num_keys = 40_000;
        config.value_width = 64;
        config.granularity = Granularity::SstBytes(256 << 10);
        config.write_buffer_bytes = 256 << 10;
        config.block_cache_bytes = cache_kib << 10;
        let mut tb = Testbed::new(config).expect("open");
        tb.load().expect("load");
        let keys: Vec<u64> = tb.keys().to_vec();
        // YCSB-C shape: rank 0 is hottest and ranks map onto sorted key
        // positions, so the head of the distribution is a dense key range.
        let chooser = RequestDistribution::Zipfian { theta: 0.99 }.chooser(keys.len());
        let mut rng = StdRng::seed_from_u64(17);
        let probes: Vec<u64> = (0..4096).map(|_| keys[chooser.next(&mut rng)]).collect();
        // Warm the cache so steady-state hit rates are what gets measured.
        for &k in &probes {
            tb.get(k).expect("warm");
        }
        let label = if cache_kib == 0 {
            "uncached".to_string()
        } else {
            format!("{cache_kib}kib")
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &tb, |b, tb| {
            let mut i = 0usize;
            b.iter_custom(|iters| {
                let io_before = tb.db().storage().stats().snapshot();
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    i = (i + 1) & 4095;
                    std::hint::black_box(tb.get(probes[i]).expect("get"));
                }
                let wall = start.elapsed();
                let modeled = tb.db().storage().stats().snapshot().since(&io_before);
                wall + std::time::Duration::from_nanos(modeled.sim_read_ns)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_read_cache);
criterion_main!(benches);
