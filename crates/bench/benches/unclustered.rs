//! Criterion bench: data-unclustered structures vs the packed sorted array
//! on the two operations Section 3.3 says LSM-trees care about — point
//! lookups and sequential scans.

use criterion::{criterion_group, criterion_main, Criterion};
use learned_unclustered::{AlexMap, LippMap, UnclusteredMap};
use lsm_workloads::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_unclustered(c: &mut Criterion) {
    let n = 100_000usize;
    let keys = Dataset::Random.generate(n, 21);
    let pairs: Vec<(u64, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    let alex = AlexMap::build(&pairs);
    let lipp = LippMap::build(&pairs);
    let packed: Vec<(u64, u64)> = pairs.clone();

    let mut rng = StdRng::seed_from_u64(4);
    let probes: Vec<u64> = (0..1024).map(|_| keys[rng.gen_range(0..n)]).collect();

    let mut g = c.benchmark_group("unclustered_point_lookup");
    g.sample_size(20);
    g.bench_function("sorted_array", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 1023;
            std::hint::black_box(packed.binary_search_by_key(&probes[i], |p| p.0).ok())
        });
    });
    g.bench_function("alex_like", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 1023;
            std::hint::black_box(alex.get(probes[i]))
        });
    });
    g.bench_function("lipp_like", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 1023;
            std::hint::black_box(lipp.get(probes[i]))
        });
    });
    g.finish();

    let mut g = c.benchmark_group("unclustered_scan_100");
    g.sample_size(20);
    g.bench_function("sorted_array", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 1023;
            let start = packed.partition_point(|p| p.0 < probes[i]);
            let end = (start + 100).min(packed.len());
            std::hint::black_box(packed[start..end].to_vec())
        });
    });
    g.bench_function("alex_like", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 1023;
            std::hint::black_box(alex.scan(probes[i], 100))
        });
    });
    g.bench_function("lipp_like", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 1023;
            std::hint::black_box(lipp.scan(probes[i], 100))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_unclustered);
criterion_main!(benches);
