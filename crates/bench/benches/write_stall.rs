//! Criterion bench: write throughput under maintenance scheduling and
//! backpressure. Loads the same key set into a fresh tree on the simulated
//! NVMe under `Maintenance::Synchronous` (flush + merge cascade inline in
//! the write path) and `Maintenance::Background` with loose and tight
//! L0 triggers; the headline metric is the repo's standard "CPU measured +
//! modeled I/O" latency per load. A final summary prints the stall
//! counters so the backpressure cost is visible next to the latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use learned_index::IndexKind;
use lsm_tree::{Db, Maintenance, Options};
use lsm_workloads::{value_for_key, Dataset};

const KEYS: usize = 20_000;
const VALUE_WIDTH: usize = 64;

fn bench_opts(
    maintenance: Maintenance,
    slowdown: usize,
    stop: usize,
    l0_trigger: usize,
) -> Options {
    let mut o = Options::default();
    o.index.kind = IndexKind::Pgm;
    o.value_width = VALUE_WIDTH;
    o.write_buffer_bytes = 512 << 10;
    o.sstable_target_bytes = 512 << 10;
    o.maintenance = maintenance;
    // The stop trigger must sit above the compaction trigger, or writers
    // block on a compaction that is never due.
    o.l0_compaction_trigger = l0_trigger;
    o.l0_slowdown_trigger = slowdown;
    o.l0_stop_trigger = stop;
    o
}

fn load(keys: &[u64], opts: Options) -> Db {
    let db = Db::open_sim(opts, lsm_io::CostModel::default()).expect("open");
    for &k in keys {
        db.put(k, &value_for_key(k, VALUE_WIDTH)).expect("put");
    }
    db.flush().expect("flush");
    db.wait_for_maintenance();
    assert_eq!(db.background_error(), None);
    db
}

/// Wall time + modeled sim I/O time of one full load, in nanoseconds — the
/// same machine-independent latency convention every report in this repo
/// uses.
fn headline_ns(load: impl Fn() -> Db) -> u64 {
    let wall = std::time::Instant::now();
    let db = load();
    let cpu = wall.elapsed().as_nanos() as u64;
    cpu + db.storage().stats().snapshot().sim_write_ns
}

fn bench_write_stall(c: &mut Criterion) {
    let keys = Dataset::Random.generate(KEYS, 0xfeed);

    // (name, scheduling, slowdown, stop, l0 compaction trigger)
    let variants: [(&str, Maintenance, usize, usize, usize); 3] = [
        ("synchronous", Maintenance::Synchronous, 8, 12, 4),
        ("background", Maintenance::background(), 8, 12, 4),
        ("background_tight", Maintenance::background(), 3, 5, 2),
    ];

    let mut g = c.benchmark_group("write_stall_20k_sim");
    g.sample_size(10);
    g.throughput(Throughput::Elements(KEYS as u64));
    for (name, maint, slowdown, stop, trigger) in variants {
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                std::hint::black_box(headline_ns(|| {
                    load(&keys, bench_opts(maint, slowdown, stop, trigger))
                }))
            })
        });
    }
    g.finish();

    // One summary pass per variant: the stall/overlap counters behind the
    // latencies above.
    println!("\nstall + overlap summary (one load each):");
    for (name, maint, slowdown, stop, trigger) in variants {
        let db = load(&keys, bench_opts(maint, slowdown, stop, trigger));
        let s = db.stats().snapshot();
        println!(
            "  {name:18} flushes {:3}  compactions {:3}  rotations {:3}  \
             slowdowns {:4}  stops {:2}  stall {:6.2} ms  overlapped writes {:5}",
            s.flushes,
            s.compactions,
            s.imm_rotations,
            s.stall_slowdowns,
            s.stall_stops,
            s.stall_ns as f64 / 1e6,
            s.writes_during_maintenance,
        );
    }
}

criterion_group!(benches, bench_write_stall);
criterion_main!(benches);
