//! Criterion micro-bench: end-to-end point lookup per index family on a
//! loaded multi-level tree (Figure 6's latency axis at one boundary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use learned_index::IndexKind;
use learned_lsm::{Granularity, Testbed, TestbedConfig};
use lsm_workloads::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_point_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("point_lookup_40k_random_b64");
    g.sample_size(20);
    for kind in IndexKind::ALL {
        let mut config = TestbedConfig::quick(kind, 64, Dataset::Random);
        config.num_keys = 40_000;
        config.value_width = 64;
        config.granularity = Granularity::SstBytes(256 << 10);
        config.write_buffer_bytes = 256 << 10;
        let mut tb = Testbed::new(config).expect("open");
        tb.load().expect("load");
        let keys: Vec<u64> = tb.keys().to_vec();
        let mut rng = StdRng::seed_from_u64(5);
        let probes: Vec<u64> = (0..1024)
            .map(|_| keys[rng.gen_range(0..keys.len())])
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(kind.abbrev()), &tb, |b, tb| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) & 1023;
                std::hint::black_box(tb.get(probes[i]).expect("get"))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_point_lookup);
criterion_main!(benches);
