//! Criterion bench: multi-threaded write throughput through the pipelined
//! group commit (writer queue + fused WAL records + parallel skiplist
//! inserts). A fixed total of batches is split across 1/2/4 writer threads
//! against one shared tree, in two configurations:
//!
//! * **`write_concurrency_mem`** — CPU-bound: in-memory storage, no
//!   durability, buffer large enough that the measured region never
//!   flushes. Isolates the queue + WAL framing + skiplist insert path;
//!   its thread curve tracks the host's core count (flat on one core,
//!   scaling with the parallel skiplist apply phase on many).
//! * **`write_concurrency_durable`** — flush-bound: simulated device with
//!   a realized 100 µs `sync` latency and `WriteOptions::durable()`. This
//!   is the configuration group commit exists for: the leader's commit
//!   window fuses every concurrent writer's batch into one record, so the
//!   flush count drops by the thread count — ≥2× 1-thread throughput at
//!   4 writers regardless of host core count. The headline line printed
//!   at the end reports this scaling directly, with the fusion stats
//!   (groups vs batches, WAL syncs) that explain it.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use learned_index::IndexKind;
use lsm_io::CostModel;
use lsm_tree::{Db, Maintenance, Options, WriteBatch, WriteOptions};
use lsm_workloads::value_for_key;

const BATCH: usize = 32;
const TOTAL_BATCHES: usize = 1_024;
const VALUE_WIDTH: usize = 64;

/// Realized flush latency for the durable configuration — loosely an NVMe
/// FLUSH with a disabled volatile cache.
const SYNC_NS: u64 = 100_000;

#[derive(Clone, Copy)]
enum Config {
    /// CPU-bound: memory storage, unsynced writes.
    Mem,
    /// Flush-bound: simulated device, synced writes.
    Durable,
}

fn bench_opts(observability: bool) -> Options {
    let mut o = Options::default();
    o.index.kind = IndexKind::Pgm;
    o.value_width = VALUE_WIDTH;
    // The whole load fits the buffer, so no flush or compaction runs
    // inside the measured region — the bench sees only queue, WAL and
    // skiplist insert work (plus, in the durable config, the WAL flushes).
    o.write_buffer_bytes = 256 << 20;
    o.maintenance = Maintenance::Background {
        flush_threads: 1,
        compaction_threads: 1,
    };
    o.observability = observability;
    o
}

/// Split `TOTAL_BATCHES` across `threads` writers against one shared tree;
/// returns `(wall_ns, wal_syncs, write_groups)` once every batch is
/// acknowledged (and therefore visible).
fn run_load(config: Config, threads: usize) -> (u64, u64, u64) {
    run_load_with(config, threads, false)
}

fn run_load_with(config: Config, threads: usize, observability: bool) -> (u64, u64, u64) {
    let db = Arc::new(match config {
        Config::Mem => Db::open_memory(bench_opts(observability)).expect("open"),
        Config::Durable => Db::open_sim(
            bench_opts(observability),
            CostModel::with_sync_latency(SYNC_NS),
        )
        .expect("open"),
    });
    let per_thread = TOTAL_BATCHES / threads;
    let started = std::time::Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let wopts = match config {
                    Config::Mem => WriteOptions::default(),
                    Config::Durable => WriteOptions::durable(),
                };
                for r in 0..per_thread {
                    let mut batch = WriteBatch::with_capacity(BATCH);
                    let base = ((t * per_thread + r) * BATCH) as u64;
                    for i in 0..BATCH as u64 {
                        batch.put(base + i, &value_for_key(base + i, VALUE_WIDTH));
                    }
                    db.write(batch, &wopts).expect("write");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let wall = started.elapsed().as_nanos() as u64;
    let s = db.stats().snapshot();
    (wall, s.wal_syncs, s.write_groups)
}

fn bench_config(c: &mut Criterion, name: &str, config: Config) {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.throughput(Throughput::Elements((TOTAL_BATCHES * BATCH) as u64));
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("writers", threads), &threads, |b, &t| {
            b.iter(|| std::hint::black_box(run_load(config, t)))
        });
    }
    // Observability overhead at the most contended point (tracked in
    // BENCH_PR8.json): 4 writers racing the commit pipeline with event
    // emission and histograms on must stay within 5% of the plain path.
    g.bench_with_input(BenchmarkId::new("writers_obs", 4usize), &4usize, |b, &t| {
        b.iter(|| std::hint::black_box(run_load_with(config, t, true)))
    });
    g.finish();
}

fn bench_write_concurrency(c: &mut Criterion) {
    bench_config(c, "write_concurrency_mem", Config::Mem);
    bench_config(c, "write_concurrency_durable", Config::Durable);

    // Print the scaling headline once so `cargo bench --bench
    // write_concurrency` shows the commit pipeline's parallel speedup
    // directly, with the fusion stats that produce it.
    let (one, syncs1, groups1) = run_load(Config::Durable, 1);
    let (four, syncs4, groups4) = run_load(Config::Durable, 4);
    println!(
        "\nheadline group-commit scaling (durable): 1 thread {:.2} ms ({} groups, {} syncs), \
         4 threads {:.2} ms ({} groups, {} syncs), speedup {:.2}x",
        one as f64 / 1e6,
        groups1,
        syncs1,
        four as f64 / 1e6,
        groups4,
        syncs4,
        one as f64 / four.max(1) as f64,
    );
}

criterion_group!(benches, bench_write_concurrency);
criterion_main!(benches);
