//! Criterion bench: live shard rebalancing under a skewed insert stream.
//!
//! A zipfian-density insert stream lands on a 2-shard learned-range
//! engine whose initial boundary was trained on a *uniform* sample — the
//! worst case live splitting exists for. The bench compares the stream
//! with splits **off** (frozen topology: one shard swallows everything,
//! deep compaction debt) against splits **on** (the topology grows
//! online: drains + dual-write windows included in the measured cost).
//! The headline metric is the repo's standard "measured CPU + modeled
//! I/O" per-insert latency; the summary prints the split counts and the
//! final resident imbalance both ways.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lsm_bench::{runner, Scale};

const SEED: u64 = 0x9eba;

fn bench_rebalance(c: &mut Criterion) {
    let scale = Scale::smoke();
    let mut g = c.benchmark_group("rebalance_smoke");
    g.sample_size(10);
    g.throughput(Throughput::Elements(scale.keys as u64));
    for splits_on in [false, true] {
        let label = if splits_on { "splits-on" } else { "splits-off" };
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &splits_on,
            |b, &splits_on| {
                b.iter(|| {
                    let record = runner::rebalance_stream(&scale, splits_on, SEED)
                        .expect("rebalance stream");
                    std::hint::black_box(record)
                })
            },
        );
    }
    g.finish();

    println!("\nrebalance summary (smoke scale):");
    for splits_on in [false, true] {
        let r = runner::rebalance_stream(&scale, splits_on, SEED).expect("rebalance summary");
        println!(
            "  splits {}  {:8.2} µs/insert  {} splits → {} shards  resident imbalance {:5.1}%  stalls {:6.2} ms",
            if r.splits_on { "on " } else { "off" },
            r.avg_insert_us,
            r.splits,
            r.final_shards,
            r.resident_imbalance * 100.0,
            r.stall_ms,
        );
    }
}

criterion_group!(benches, bench_rebalance);
criterion_main!(benches);
