//! Criterion bench: YCSB mixes against the sharded engine.
//!
//! Runs workload A (update-heavy — the mix that stresses the cross-shard
//! write fence) and workload E (scan-heavy — the mix that stresses the
//! k-way merged iterator) at 1 and 4 shards, smoke scale, on the simulated
//! NVMe. The headline metric is the repo's standard "measured CPU +
//! modeled I/O" per-op latency; a summary pass prints the per-mix records
//! (including the learned router's load imbalance) for all six workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use learned_index::IndexKind;
use lsm_bench::{runner, Scale};
use lsm_workloads::Dataset;

const SEED: u64 = 0x5a4d;

fn bench_sharded_ycsb(c: &mut Criterion) {
    let scale = Scale::smoke();
    let mut g = c.benchmark_group("sharded_ycsb_smoke");
    g.sample_size(10);
    g.throughput(Throughput::Elements(scale.ops as u64));
    for shards in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{shards}-shard")),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let records = runner::ycsb_sharded(
                        &scale,
                        Dataset::Random,
                        shards,
                        IndexKind::Pgm,
                        SEED,
                        None,
                        0,
                    )
                    .expect("ycsb");
                    std::hint::black_box(records)
                })
            },
        );
    }
    g.finish();

    // One summary pass: the six mixes at 4 shards, with router balance.
    println!("\nsharded YCSB summary (4 shards, smoke scale):");
    for r in runner::ycsb_sharded(&scale, Dataset::Random, 4, IndexKind::Pgm, SEED, None, 0)
        .expect("ycsb summary")
    {
        println!(
            "  YCSB-{:1}  {:8.2} µs/op  load imbalance {:5.1}%  stalls {:6.2} ms",
            r.workload,
            r.avg_op_us,
            r.load_imbalance * 100.0,
            r.stall_ms,
        );
    }
}

criterion_group!(benches, bench_sharded_ycsb);
criterion_main!(benches);
