//! Criterion micro-bench: index training throughput per family (the "Learn"
//! stage of Figure 9, isolated).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use learned_index::{IndexConfig, IndexKind};
use lsm_workloads::Dataset;

fn bench_build(c: &mut Criterion) {
    let keys = Dataset::Books.generate(200_000, 7);
    let config = IndexConfig {
        epsilon: 32,
        ..IndexConfig::default()
    };
    let mut g = c.benchmark_group("index_build_200k_books");
    g.sample_size(10);
    g.throughput(Throughput::Elements(keys.len() as u64));
    for kind in IndexKind::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.abbrev()),
            &kind,
            |b, &k| {
                b.iter(|| k.build(std::hint::black_box(&keys), &config));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
