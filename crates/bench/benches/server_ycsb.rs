//! Criterion bench: YCSB mixes through the `lsm-server` network front end.
//!
//! Where `sharded_ycsb` measures the engine called in-process, this bench
//! drives the same six mixes through the full request path — frame
//! encode/decode, the in-memory duplex transport, reader threads,
//! admission control, the shared worker pool, and the pipelined client —
//! at a fixed open-loop arrival rate. The summary pass prints the
//! coordinated-omission-free latency quantiles per mix plus the
//! admission-control shed counts, and ends with the engine's
//! sharded-stats report fetched through the `STATS` opcode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use learned_index::IndexKind;
use lsm_bench::{runner, Scale};
use lsm_workloads::Dataset;

const SEED: u64 = 0x5e12;

fn bench_server_ycsb(c: &mut Criterion) {
    let scale = Scale::smoke();
    let mut g = c.benchmark_group("server_ycsb_smoke");
    g.sample_size(10);
    g.throughput(Throughput::Elements(scale.ops as u64));
    for shards in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{shards}-shard")),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let out = runner::ycsb_server(
                        &scale,
                        Dataset::Random,
                        shards,
                        IndexKind::Pgm,
                        SEED,
                        None,
                        0,
                    )
                    .expect("server ycsb");
                    std::hint::black_box(out)
                })
            },
        );
    }
    g.finish();

    // One summary pass: the six mixes at 4 shards through the wire.
    println!("\nserver YCSB summary (4 shards, smoke scale, open-loop):");
    let (records, stats) =
        runner::ycsb_server(&scale, Dataset::Random, 4, IndexKind::Pgm, SEED, None, 0)
            .expect("server ycsb summary");
    for r in records {
        println!(
            "  YCSB-{:1}  rate {:8.0}/s (achieved {:8.0}/s)  p50 {:8.1} µs  \
             p99 {:8.1} µs  p99.9 {:8.1} µs  shed {:4}  errors {:2}",
            r.workload,
            r.target_rate,
            r.achieved_rate,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            r.shed,
            r.errors,
        );
    }
    println!("  stats via STATS opcode: {stats}");
}

criterion_group!(benches, bench_server_ycsb);
criterion_main!(benches);
