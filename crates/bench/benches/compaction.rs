//! Criterion bench: range-partitioned parallel compaction
//! (`Options::max_subcompactions`) under a sustained zipfian write stream.
//!
//! The stream runs to steady state on the simulated NVMe with background
//! maintenance (1 flush + 1 compaction worker) and deliberately tight L0
//! triggers, so compaction drain rate — not the write path — is the
//! binding constraint and every nanosecond the merge saves comes straight
//! out of writer stalls. Two metrics per knob setting, reported through
//! `iter_custom` so the shim's `median_ns` *is* the metric:
//!
//! * `compaction_stall_ns` — total write-stall wall time of one stream
//!   (slowdown delays + hard stops). This is the group the CI bench-smoke
//!   gate compares: 4 subcompactions must stall less than 1.
//! * `compaction_device_ns` — the repo's standard headline: CPU wall time
//!   of the stream + modeled device write time, machine-independent.
//!
//! A summary pass prints the stall *share* (stall / wall), compaction
//! counts and write amplification behind the two latencies.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use learned_index::IndexKind;
use lsm_tree::{Db, Maintenance, Options};
use lsm_workloads::{value_for_key, RequestDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

const OPS: usize = 60_000;
const KEY_POSITIONS: usize = 1 << 16;
const VALUE_WIDTH: usize = 64;
const ZIPF_THETA: f64 = 0.99;

fn bench_opts(max_subcompactions: usize) -> Options {
    let mut o = Options::default();
    o.index.kind = IndexKind::Pgm;
    o.value_width = VALUE_WIDTH;
    o.write_buffer_bytes = 128 << 10;
    o.sstable_target_bytes = 128 << 10;
    o.maintenance = Maintenance::background();
    // Tight triggers: the stream outruns a single-threaded merge, so the
    // stall counters see exactly what the parallel merge buys back.
    o.l0_compaction_trigger = 2;
    o.l0_slowdown_trigger = 4;
    o.l0_stop_trigger = 8;
    o.max_subcompactions = max_subcompactions;
    o
}

/// Spread a zipfian *position* over the key space so compaction inputs
/// span wide, cuttable ranges (hot positions stay hot — same key every
/// time — but neighbors in rank are far apart in key space).
fn key_of(pos: usize) -> u64 {
    (pos as u64).wrapping_mul(2_654_435_761) % (1 << 40)
}

struct RunOutcome {
    wall_ns: u64,
    stall_ns: u64,
    device_ns: u64,
    compactions: u64,
    subcompactions: u64,
    write_amp: f64,
}

/// One full zipfian stream against a fresh tree; drained to a quiesced
/// state so every knob setting pays for all the maintenance it queued.
fn run_stream(max_subcompactions: usize) -> RunOutcome {
    let db =
        Db::open_sim(bench_opts(max_subcompactions), lsm_io::CostModel::default()).expect("open");
    let chooser = RequestDistribution::Zipfian { theta: ZIPF_THETA }.chooser(KEY_POSITIONS);
    let mut rng = StdRng::seed_from_u64(0xC0AC);
    let wall = std::time::Instant::now();
    for _ in 0..OPS {
        let k = key_of(chooser.next(&mut rng));
        db.put(k, &value_for_key(k, VALUE_WIDTH)).expect("put");
    }
    db.flush().expect("flush");
    db.wait_for_maintenance();
    assert_eq!(db.background_error(), None);
    let wall_ns = wall.elapsed().as_nanos() as u64;
    let s = db.stats().snapshot();
    RunOutcome {
        wall_ns,
        stall_ns: s.stall_ns,
        device_ns: wall_ns + db.storage().stats().snapshot().sim_write_ns,
        compactions: s.compactions,
        subcompactions: s.subcompactions,
        write_amp: s.write_amplification(),
    }
}

const VARIANTS: [(&str, usize); 2] = [("subc1", 1), ("subc4", 4)];

fn bench_compaction(c: &mut Criterion) {
    let mut g = c.benchmark_group("compaction_stall_ns");
    g.sample_size(10);
    for (name, subc) in VARIANTS {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let mut total = 0u64;
                for _ in 0..iters {
                    total += run_stream(subc).stall_ns;
                }
                Duration::from_nanos(total)
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("compaction_device_ns");
    g.sample_size(10);
    for (name, subc) in VARIANTS {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let mut total = 0u64;
                for _ in 0..iters {
                    total += run_stream(subc).device_ns;
                }
                Duration::from_nanos(total)
            })
        });
    }
    g.finish();

    println!("\nsubcompaction summary (one stream each, {OPS} zipfian puts):");
    for (name, subc) in VARIANTS {
        let r = run_stream(subc);
        println!(
            "  {name:6} stall {:8.2} ms  share {:5.1}%  wall {:8.2} ms  \
             device {:8.2} ms  compactions {:3}  subcompactions {:4}  wamp {:.2}",
            r.stall_ns as f64 / 1e6,
            100.0 * r.stall_ns as f64 / r.wall_ns.max(1) as f64,
            r.wall_ns as f64 / 1e6,
            r.device_ns as f64 / 1e6,
            r.compactions,
            r.subcompactions,
            r.write_amp,
        );
    }
}

criterion_group!(benches, bench_compaction);
criterion_main!(benches);
