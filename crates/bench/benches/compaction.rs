//! Criterion micro-bench: write path incl. flush + compaction + index
//! training per family (Figure 9's total compaction cost, isolated).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use learned_index::IndexKind;
use lsm_tree::{Db, IndexChoice, Options};

fn write_heavy(kind: IndexKind, n: u64) {
    let mut opts = Options::small_for_tests();
    opts.index = IndexChoice::with_boundary(kind, 64);
    opts.write_buffer_bytes = 64 << 10;
    opts.sstable_target_bytes = 32 << 10;
    let db = Db::open_memory(opts).expect("open");
    for k in 0..n {
        db.put((k * 2_654_435_761) % (1 << 40), &[7u8; 32])
            .expect("put");
    }
    db.flush().expect("flush");
}

fn bench_compaction(c: &mut Criterion) {
    const N: u64 = 20_000;
    let mut g = c.benchmark_group("write_20k_with_compactions");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N));
    for kind in IndexKind::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.abbrev()),
            &kind,
            |b, &k| {
                b.iter(|| write_heavy(k, N));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_compaction);
criterion_main!(benches);
