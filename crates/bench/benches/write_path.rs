//! Criterion bench: the group-commit write path. Loads the same key set
//! into a fresh tree on the simulated NVMe per-key (`put`) and as
//! `WriteBatch`es of growing size (`Db::write`); the headline metric is the
//! repo's standard "CPU measured + modeled I/O" latency per load. Batched
//! loading must beat per-key by ≥2× (asserted by the
//! `write_batch_speedup_is_at_least_2x` integration test; this bench shows
//! the curve).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use learned_index::IndexKind;
use lsm_tree::{Db, Options, WriteBatch, WriteOptions};
use lsm_workloads::{value_for_key, Dataset};

const KEYS: usize = 20_000;
const VALUE_WIDTH: usize = 64;

fn bench_opts(observability: bool) -> Options {
    let mut o = Options::default();
    o.index.kind = IndexKind::Pgm;
    o.value_width = VALUE_WIDTH;
    o.write_buffer_bytes = 512 << 10;
    o.sstable_target_bytes = 512 << 10;
    o.observability = observability;
    o
}

fn load_per_key(keys: &[u64]) -> Db {
    let db = Db::open_sim(bench_opts(false), lsm_io::CostModel::default()).expect("open");
    for &k in keys {
        db.put(k, &value_for_key(k, VALUE_WIDTH)).expect("put");
    }
    db
}

fn load_batched_with(keys: &[u64], batch_size: usize, observability: bool) -> Db {
    let db = Db::open_sim(bench_opts(observability), lsm_io::CostModel::default()).expect("open");
    let wopts = WriteOptions::default();
    for chunk in keys.chunks(batch_size) {
        let mut batch = WriteBatch::with_capacity(chunk.len());
        for &k in chunk {
            batch.put(k, &value_for_key(k, VALUE_WIDTH));
        }
        db.write(batch, &wopts).expect("write");
    }
    db
}

fn load_batched(keys: &[u64], batch_size: usize) -> Db {
    load_batched_with(keys, batch_size, false)
}

/// Wall time + modeled sim I/O time of one full load, in nanoseconds — the
/// same machine-independent latency convention every report in this repo
/// uses.
fn headline_ns(load: impl Fn() -> Db) -> u64 {
    let wall = std::time::Instant::now();
    let db = load();
    let cpu = wall.elapsed().as_nanos() as u64;
    cpu + db.storage().stats().snapshot().sim_write_ns
}

fn bench_write_path(c: &mut Criterion) {
    let keys = Dataset::Random.generate(KEYS, 0xbeef);

    let mut g = c.benchmark_group("write_path_20k_sim");
    g.sample_size(10);
    g.throughput(Throughput::Elements(KEYS as u64));
    g.bench_function("per_key_put", |b| {
        b.iter(|| std::hint::black_box(headline_ns(|| load_per_key(&keys))))
    });
    for batch_size in [16usize, 128, 1024] {
        g.bench_with_input(
            BenchmarkId::new("batched", batch_size),
            &batch_size,
            |b, &bs| b.iter(|| std::hint::black_box(headline_ns(|| load_batched(&keys, bs)))),
        );
    }
    // The observability overhead bar (tracked in BENCH_PR8.json): the
    // same batched load with event emission and latency histograms on
    // must stay within 5% of the plain path.
    g.bench_function("batched_obs/1024", |b| {
        b.iter(|| std::hint::black_box(headline_ns(|| load_batched_with(&keys, 1024, true))))
    });
    g.finish();

    // Print the headline ratio once so `cargo bench --bench write_path`
    // shows the group-commit saving directly.
    let per_key = headline_ns(|| load_per_key(&keys));
    let batched = headline_ns(|| load_batched(&keys, 1024));
    println!(
        "\nheadline load latency (cpu + modeled I/O): per-key {:.2} ms, batched(1024) {:.2} ms, speedup {:.1}x",
        per_key as f64 / 1e6,
        batched as f64 / 1e6,
        per_key as f64 / batched.max(1) as f64,
    );
}

criterion_group!(benches, bench_write_path);
criterion_main!(benches);
