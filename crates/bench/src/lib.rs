//! Shared plumbing for the experiment binaries.
//!
//! Every `figN` binary accepts the same flags:
//!
//! * `--full` — paper scale (6.4 M keys × 1000 B values; hours, needs RAM);
//!   default is the *quick* profile, which preserves every shape at
//!   laptop scale (see `DESIGN.md`, "Scale" substitution).
//! * `--keys N`, `--ops N`, `--dataset NAME` — override the profile;
//! * `--out PATH` — additionally write the records as JSON.

pub mod runner;

use lsm_workloads::Dataset;

/// Experiment scale profile.
#[derive(Debug, Clone)]
pub struct Scale {
    pub keys: usize,
    pub value_width: usize,
    pub sst_bytes: u64,
    pub write_buffer_bytes: usize,
    pub ops: usize,
}

impl Scale {
    /// Laptop-scale profile: the tree still spans 3+ levels and the largest
    /// position boundary still covers multiple I/O blocks.
    pub fn quick() -> Self {
        Self {
            keys: 120_000,
            value_width: 64,
            sst_bytes: 512 << 10,
            write_buffer_bytes: 512 << 10,
            ops: 20_000,
        }
    }

    /// The paper's scale: 6.4 M keys, 1000-byte values, 64 MiB buffer.
    pub fn full() -> Self {
        Self {
            keys: 6_400_000,
            value_width: 1000,
            sst_bytes: 64 << 20,
            write_buffer_bytes: 64 << 20,
            ops: 1_000_000,
        }
    }

    /// Smallest profile that still exercises every code path — used by the
    /// integration smoke tests of the harness itself.
    pub fn smoke() -> Self {
        Self {
            keys: 20_000,
            value_width: 32,
            sst_bytes: 128 << 10,
            write_buffer_bytes: 128 << 10,
            ops: 2_000,
        }
    }
}

/// Parsed command-line options for experiment binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    pub scale: Scale,
    pub dataset: Dataset,
    pub all_datasets: bool,
    pub out: Option<String>,
    /// `--shards N`: run against an `N`-shard `ShardedDb` where the
    /// runner supports it (YCSB); 1 = the single-`Db` path.
    pub shards: usize,
    /// `--max-shards N`: allow live shard splitting up to `N` shards
    /// (0 = frozen topology, the default).
    pub max_shards: usize,
    /// `--split-threshold F`: resident-bytes overshoot (fraction of the
    /// fair target share) past which a shard is split live.
    pub split_threshold: f64,
    /// `--server`: drive the workload through the `lsm-server` network
    /// front end (frame protocol, admission control, open-loop arrivals)
    /// instead of calling the engine directly.
    pub server: bool,
    /// `--rate R`: open-loop arrival rate, requests/s, for `--server`
    /// runs. `None` (the default) calibrates per mix from a closed-loop
    /// burst.
    pub rate: Option<f64>,
    /// `--cache-mb N`: engine-wide cache budget in MiB (blocks + table
    /// handles, shared across every shard). 0 (the default) runs uncached.
    pub cache_mb: usize,
}

impl Cli {
    /// Parse `std::env::args`; prints usage and exits on error.
    pub fn parse() -> Cli {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse an explicit argument list.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Cli {
        let mut scale = Scale::quick();
        let mut dataset = Dataset::Random;
        let mut all_datasets = false;
        let mut out = None;
        let mut shards = 1usize;
        let mut max_shards = 0usize;
        let mut split_threshold = 0.2f64;
        let mut server = false;
        let mut rate = None;
        let mut cache_mb = 0usize;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut next_usize = |what: &str| -> usize {
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die(&format!("{what} needs a number")))
            };
            match arg.as_str() {
                "--full" => scale = Scale::full(),
                "--smoke" => scale = Scale::smoke(),
                "--keys" => scale.keys = next_usize("--keys"),
                "--ops" => scale.ops = next_usize("--ops"),
                "--shards" => shards = next_usize("--shards").max(1),
                "--max-shards" => max_shards = next_usize("--max-shards"),
                "--split-threshold" => {
                    split_threshold = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--split-threshold needs a number"));
                }
                "--server" => server = true,
                "--cache-mb" => cache_mb = next_usize("--cache-mb"),
                "--rate" => {
                    let r: f64 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--rate needs a number"));
                    // 0 = auto-calibrate, same as omitting the flag.
                    rate = (r > 0.0).then_some(r);
                }
                "--dataset" => {
                    let name = it.next().unwrap_or_else(|| die("--dataset needs a name"));
                    dataset = Dataset::from_name(&name)
                        .unwrap_or_else(|| die(&format!("unknown dataset {name}")));
                }
                "--all-datasets" => all_datasets = true,
                "--out" => out = Some(it.next().unwrap_or_else(|| die("--out needs a path"))),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --full | --smoke | --keys N | --ops N | --shards N | --max-shards N | --split-threshold F | --server | --rate R | --cache-mb N | --dataset NAME | --all-datasets | --out PATH"
                    );
                    std::process::exit(0);
                }
                other => die(&format!("unknown flag {other}")),
            }
        }
        Cli {
            scale,
            dataset,
            all_datasets,
            out,
            shards,
            max_shards,
            split_threshold,
            server,
            rate,
            cache_mb,
        }
    }

    /// Datasets selected by the flags.
    pub fn datasets(&self) -> Vec<Dataset> {
        if self.all_datasets {
            Dataset::ALL.to_vec()
        } else {
            vec![self.dataset]
        }
    }

    /// Write `json` to `--out` if given.
    pub fn maybe_write(&self, json: &str) {
        if let Some(path) = &self.out {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                eprintln!("wrote {path}");
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        Cli::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick_random() {
        let c = parse(&[]);
        assert_eq!(c.scale.keys, Scale::quick().keys);
        assert_eq!(c.dataset, Dataset::Random);
        assert!(!c.all_datasets);
    }

    #[test]
    fn overrides_apply() {
        let c = parse(&[
            "--keys",
            "500",
            "--ops",
            "7",
            "--dataset",
            "wiki",
            "--out",
            "/tmp/x.json",
        ]);
        assert_eq!(c.scale.keys, 500);
        assert_eq!(c.scale.ops, 7);
        assert_eq!(c.dataset, Dataset::Wiki);
        assert_eq!(c.out.as_deref(), Some("/tmp/x.json"));
        assert_eq!(c.cache_mb, 0, "uncached by default");
    }

    #[test]
    fn shards_flag_parses_and_defaults_to_one() {
        assert_eq!(parse(&[]).shards, 1);
        assert_eq!(parse(&["--shards", "4"]).shards, 4);
        assert_eq!(parse(&["--shards", "0"]).shards, 1, "clamped to >= 1");
    }

    #[test]
    fn server_and_rate_flags_parse() {
        let c = parse(&[]);
        assert!(!c.server);
        assert_eq!(c.rate, None);
        let c = parse(&["--server", "--rate", "5000"]);
        assert!(c.server);
        assert_eq!(c.rate, Some(5000.0));
        assert_eq!(parse(&["--rate", "0"]).rate, None, "0 = auto-calibrate");
    }

    #[test]
    fn full_profile_is_paper_scale() {
        let c = parse(&["--full"]);
        assert_eq!(c.scale.keys, 6_400_000);
        assert_eq!(c.scale.value_width, 1000);
    }

    #[test]
    fn all_datasets_selects_seven() {
        assert_eq!(parse(&["--all-datasets"]).datasets().len(), 7);
        assert_eq!(parse(&[]).datasets().len(), 1);
    }
}
