//! Figure 12: YCSB A–F — average op latency vs index memory, per index,
//! swept over position boundaries to trace the memory-latency curve.
//!
//! With `--shards N` (N > 1) the six mixes instead run against an
//! `N`-shard `ShardedDb` (learned range routing, shared worker pool) —
//! the engine-level sharding scenario rather than the paper's figure.
//! Add `--max-shards M` (and optionally `--split-threshold F`) to let
//! the topology split hot shards live during the runs.

use lsm_bench::{runner, Cli};

fn main() {
    let cli = Cli::parse();
    if cli.shards > 1 {
        let records = runner::ycsb_sharded(
            &cli.scale,
            cli.dataset,
            cli.shards,
            learned_index::IndexKind::Pgm,
            0x5eed,
            runner::Rebalance::from_flags(cli.max_shards, cli.split_threshold),
        )
        .expect("sharded ycsb experiment");
        println!("# YCSB A–F on a {}-shard ShardedDb", cli.shards);
        for r in &records {
            println!(
                "YCSB-{}  shards={}→{}  avg-op={:9.2}us  load-imbalance={:5.1}%  \
                 splits={}  stalls={:8.2}ms",
                r.workload,
                r.shards,
                r.final_shards,
                r.avg_op_us,
                r.load_imbalance * 100.0,
                r.splits,
                r.stall_ms
            );
        }
        cli.maybe_write(&learned_lsm::report::to_json(&records));
        return;
    }
    let boundaries = [128usize, 32, 8];
    let records = runner::fig12(&cli.scale, cli.dataset, &boundaries).expect("fig12 experiment");

    println!("# Figure 12 — YCSB A–F (latency vs memory)");
    let mut last = String::new();
    for r in &records {
        if r.workload != last {
            println!("\n[YCSB-{}]", r.workload);
            last = r.workload.clone();
        }
        println!(
            "{:6} pb={:4}  avg-op={:9.2}us  mem={:>12}B",
            r.index, r.position_boundary, r.avg_op_us, r.index_memory_bytes
        );
    }
    cli.maybe_write(&learned_lsm::report::to_json(&records));
}
