//! Figure 12: YCSB A–F — average op latency vs index memory, per index,
//! swept over position boundaries to trace the memory-latency curve.

use lsm_bench::{runner, Cli};

fn main() {
    let cli = Cli::parse();
    let boundaries = [128usize, 32, 8];
    let records = runner::fig12(&cli.scale, cli.dataset, &boundaries).expect("fig12 experiment");

    println!("# Figure 12 — YCSB A–F (latency vs memory)");
    let mut last = String::new();
    for r in &records {
        if r.workload != last {
            println!("\n[YCSB-{}]", r.workload);
            last = r.workload.clone();
        }
        println!(
            "{:6} pb={:4}  avg-op={:9.2}us  mem={:>12}B",
            r.index, r.position_boundary, r.avg_op_us, r.index_memory_bytes
        );
    }
    cli.maybe_write(&learned_lsm::report::to_json(&records));
}
