//! Figure 12: YCSB A–F — average op latency vs index memory, per index,
//! swept over position boundaries to trace the memory-latency curve.
//!
//! With `--shards N` (N > 1) the six mixes instead run against an
//! `N`-shard `ShardedDb` (learned range routing, shared worker pool) —
//! the engine-level sharding scenario rather than the paper's figure.
//! Add `--max-shards M` (and optionally `--split-threshold F`) to let
//! the topology split hot shards live during the runs.
//!
//! `--cache-mb N` gives every configuration an engine-wide cache budget
//! (shared across shards); the default 0 keeps the historical uncached
//! read path.
//!
//! With `--server` the six mixes are driven through the `lsm-server`
//! network front end at a fixed open-loop arrival rate (`--rate R`;
//! default auto-calibrates), reporting coordinated-omission-free latency
//! quantiles and admission-control sheds instead of closed-loop averages.

use lsm_bench::{runner, Cli};

fn main() {
    let cli = Cli::parse();
    if cli.server {
        let (records, stats) = runner::ycsb_server(
            &cli.scale,
            cli.dataset,
            cli.shards,
            learned_index::IndexKind::Pgm,
            0x5eed,
            cli.rate,
            cli.cache_mb,
        )
        .expect("server ycsb experiment");
        println!(
            "# YCSB A–F through lsm-server ({} shard(s), open-loop)",
            cli.shards
        );
        for r in &records {
            println!(
                "YCSB-{}  rate={:8.0}/s (achieved {:8.0}/s)  p50={:9.1}us  \
                 p99={:9.1}us  p99.9={:9.1}us  shed={}  errors={}",
                r.workload,
                r.target_rate,
                r.achieved_rate,
                r.p50_us,
                r.p99_us,
                r.p999_us,
                r.shed,
                r.errors
            );
        }
        println!("\nsharded stats (last mix, via STATS):\n{stats}");
        cli.maybe_write(&learned_lsm::report::to_json(&records));
        return;
    }
    if cli.shards > 1 {
        let records = runner::ycsb_sharded(
            &cli.scale,
            cli.dataset,
            cli.shards,
            learned_index::IndexKind::Pgm,
            0x5eed,
            runner::Rebalance::from_flags(cli.max_shards, cli.split_threshold),
            cli.cache_mb,
        )
        .expect("sharded ycsb experiment");
        println!("# YCSB A–F on a {}-shard ShardedDb", cli.shards);
        for r in &records {
            println!(
                "YCSB-{}  shards={}→{}  avg-op={:9.2}us  load-imbalance={:5.1}%  \
                 splits={}  stalls={:8.2}ms",
                r.workload,
                r.shards,
                r.final_shards,
                r.avg_op_us,
                r.load_imbalance * 100.0,
                r.splits,
                r.stall_ms
            );
        }
        cli.maybe_write(&learned_lsm::report::to_json(&records));
        return;
    }
    let boundaries = [128usize, 32, 8];
    let records = runner::fig12(&cli.scale, cli.dataset, &boundaries, cli.cache_mb)
        .expect("fig12 experiment");

    println!("# Figure 12 — YCSB A–F (latency vs memory)");
    let mut last = String::new();
    for r in &records {
        if r.workload != last {
            println!("\n[YCSB-{}]", r.workload);
            last = r.workload.clone();
        }
        println!(
            "{:6} pb={:4}  avg-op={:9.2}us  mem={:>12}B",
            r.index, r.position_boundary, r.avg_op_us, r.index_memory_bytes
        );
    }
    cli.maybe_write(&learned_lsm::report::to_json(&records));
}
