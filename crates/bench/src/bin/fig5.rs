//! Figure 5: CDFs of the seven datasets.
//!
//! Prints 25 normalized (key, fraction) points per dataset — plot them to
//! recreate the figure.

use lsm_bench::{runner, Cli};

fn main() {
    let cli = Cli::parse();
    let records = runner::fig5(cli.scale.keys, 25, 0xEDB7_2026);
    println!("# Figure 5 — dataset CDFs ({} keys each)", cli.scale.keys);
    for r in &records {
        println!("\n{}", r.dataset);
        for (x, y) in &r.points {
            println!("  {x:.4}\t{y:.4}");
        }
    }
    cli.maybe_write(&learned_lsm::report::to_json(&records));
}
