//! Table 1: point-lookup stage times for PLR with position boundary 10
//! across SSTable sizes (paper: 4 / 32 / 128 MB).

use lsm_bench::{runner, Cli};

fn main() {
    let cli = Cli::parse();
    let records = runner::table1(&cli.scale, cli.dataset).expect("table1 experiment");

    println!("# Table 1 — PLR stage times, boundary 10 (µs/op)");
    println!(
        "{:>16} {:>12} {:>12} {:>12}",
        "process", "SST small", "SST medium", "SST large"
    );
    let row = |name: &str, f: &dyn Fn(&learned_lsm::LookupReport) -> f64| {
        print!("{name:>16}");
        for r in &records {
            print!(" {:12.3}", f(r));
        }
        println!();
    };
    row("table lookup", &|r| r.breakdown.table_locate);
    row("prediction", &|r| r.breakdown.prediction);
    row("disk I/O", &|r| r.breakdown.disk_io);
    row("binary search", &|r| r.breakdown.binary_search);
    cli.maybe_write(&learned_lsm::report::to_json(&records));
}
