//! Figure 6: point-lookup latency and index memory vs position boundary
//! (256→8) for all seven indexes. Run with `--all-datasets` for the full
//! figure; defaults to the Random dataset like the paper's main body.

use lsm_bench::{runner, Cli};

fn main() {
    let cli = Cli::parse();
    let records =
        runner::fig6(&cli.scale, &cli.datasets(), &runner::BOUNDARIES).expect("fig6 experiment");
    println!("# Figure 6 — latency & memory vs position boundary");
    let mut last_dataset = String::new();
    for r in &records {
        if r.dataset != last_dataset {
            println!("\n[{}]", r.dataset);
            last_dataset = r.dataset.clone();
        }
        println!("{}", r.row());
    }
    cli.maybe_write(&learned_lsm::report::to_json(&records));
}
