//! Figure 7: query time breakdown — (A) per index type at boundary 64;
//! (B) prediction time as the boundary shrinks.

use lsm_bench::{runner, Cli};

fn main() {
    let cli = Cli::parse();
    let (by_kind, by_boundary) = runner::fig7(&cli.scale, cli.dataset).expect("fig7 experiment");

    println!("# Figure 7(A) — stage breakdown by index type (boundary 64, µs/op)");
    println!(
        "{:8} {:>10} {:>10} {:>10} {:>10}",
        "index", "locate", "predict", "disk I/O", "search"
    );
    for r in &by_kind {
        println!(
            "{:8} {:10.3} {:10.3} {:10.3} {:10.3}",
            r.index,
            r.breakdown.table_locate,
            r.breakdown.prediction,
            r.breakdown.disk_io,
            r.breakdown.binary_search
        );
    }

    println!("\n# Figure 7(B) — prediction time vs position boundary (µs/op)");
    println!("{:8} {:>8} {:>12}", "index", "boundary", "prediction");
    for r in &by_boundary {
        println!(
            "{:8} {:8} {:12.4}",
            r.index, r.position_boundary, r.breakdown.prediction
        );
    }

    let all: Vec<_> = by_kind.iter().chain(by_boundary.iter()).collect();
    cli.maybe_write(&learned_lsm::report::to_json(&all));
}
