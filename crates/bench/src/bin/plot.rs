//! ASCII scatter/line plots from the experiment JSON — eyeball the paper's
//! figures straight in the terminal.
//!
//! ```sh
//! cargo run --release -p lsm-bench --bin plot -- results/fig6.json latency
//! cargo run --release -p lsm-bench --bin plot -- results/fig6.json memory
//! ```
//!
//! Reads the `LookupReport` arrays the fig binaries emit with `--out` and
//! draws one series per index: x = position boundary (log2), y = the chosen
//! metric (log10 for memory).

use std::collections::BTreeMap;

/// Plot canvas dimensions.
const WIDTH: usize = 72;
const HEIGHT: usize = 20;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| {
        eprintln!("usage: plot <results.json> [latency|memory|blocks]");
        std::process::exit(2);
    });
    let metric = args.next().unwrap_or_else(|| "latency".into());

    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let records: Vec<serde_json::Value> = serde_json::from_str(&raw).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    });

    // series[index] = [(boundary, value)]
    let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for r in &records {
        let (Some(index), Some(boundary)) = (
            r.get("index").and_then(|v| v.as_str()),
            r.get("position_boundary").and_then(|v| v.as_u64()),
        ) else {
            continue;
        };
        let value = match metric.as_str() {
            "latency" => r.get("avg_latency_us").and_then(|v| v.as_f64()),
            "memory" => r
                .get("index_memory_bytes")
                .and_then(|v| v.as_u64())
                .map(|b| b as f64),
            "blocks" => r.get("blocks_per_op").and_then(|v| v.as_f64()),
            other => {
                eprintln!("unknown metric {other}");
                std::process::exit(2);
            }
        };
        if let Some(v) = value {
            series
                .entry(index.to_string())
                .or_default()
                .push((boundary as f64, v));
        }
    }
    if series.is_empty() {
        eprintln!("no plottable records in {path} (need index/position_boundary fields)");
        std::process::exit(1);
    }

    let log_y = metric == "memory";
    let ty = |v: f64| if log_y { v.max(1.0).log10() } else { v };
    let tx = |b: f64| b.max(1.0).log2();

    let (mut xmin, mut xmax) = (f64::MAX, f64::MIN);
    let (mut ymin, mut ymax) = (f64::MAX, f64::MIN);
    for pts in series.values() {
        for &(b, v) in pts {
            xmin = xmin.min(tx(b));
            xmax = xmax.max(tx(b));
            ymin = ymin.min(ty(v));
            ymax = ymax.max(ty(v));
        }
    }
    if (xmax - xmin).abs() < 1e-9 {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < 1e-9 {
        ymax = ymin + 1.0;
    }

    let mut grid = vec![vec![' '; WIDTH]; HEIGHT];
    let marks = ['F', 'T', 'P', 'X', 'R', 'M', 'G', '*'];
    let mut legend = Vec::new();
    for (si, (name, pts)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        legend.push(format!("{mark}={name}"));
        for &(b, v) in pts {
            let x = ((tx(b) - xmin) / (xmax - xmin) * (WIDTH - 1) as f64) as usize;
            let y = ((ty(v) - ymin) / (ymax - ymin) * (HEIGHT - 1) as f64) as usize;
            let row = HEIGHT - 1 - y.min(HEIGHT - 1);
            let col = x.min(WIDTH - 1);
            grid[row][col] = if grid[row][col] == ' ' { mark } else { '#' };
        }
    }

    println!(
        "{path} — {metric}{} vs position boundary (log2 x{})",
        if log_y { " (log10)" } else { "" },
        if log_y { ", '#' = overlap" } else { "" }
    );
    let label = |v: f64| {
        if log_y {
            format!("{:>9.0}", 10f64.powf(v))
        } else {
            format!("{v:>9.2}")
        }
    };
    for (i, row) in grid.iter().enumerate() {
        let frac = 1.0 - i as f64 / (HEIGHT - 1) as f64;
        let yv = ymin + frac * (ymax - ymin);
        let tick = if i % 4 == 0 { label(yv) } else { " ".repeat(9) };
        println!("{tick} |{}", row.iter().collect::<String>());
    }
    println!("{} +{}", " ".repeat(9), "-".repeat(WIDTH));
    println!(
        "{}  {:<10}{:>width$}",
        " ".repeat(9),
        format!("{}", 2f64.powf(xmin)),
        format!("{}", 2f64.powf(xmax)),
        width = WIDTH - 10
    );
    println!("\nlegend: {}", legend.join("  "));
}
