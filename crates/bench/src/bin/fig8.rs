//! Figure 8: impact of index granularity — SSTable size sweep plus the
//! level-grained model ("L"), for each learned index, across boundaries.

use lsm_bench::{runner, Cli};

fn main() {
    let cli = Cli::parse();
    let boundaries = [128usize, 64, 32, 16];
    let records = runner::fig8(&cli.scale, cli.dataset, &boundaries).expect("fig8 experiment");

    println!("# Figure 8 — granularity sweep (SST size label is relative; L = level model)");
    let mut last = usize::MAX;
    for r in &records {
        if r.position_boundary != last {
            println!("\n[position boundary {}]", r.position_boundary);
            last = r.position_boundary;
        }
        println!("{}", r.row());
    }
    cli.maybe_write(&learned_lsm::report::to_json(&records));
}
