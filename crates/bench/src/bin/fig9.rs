//! Figure 9: compaction time and its learn / write-model breakdown under a
//! write-only workload.

use lsm_bench::{runner, Cli};

fn main() {
    let cli = Cli::parse();
    let boundaries = [256usize, 128, 64, 32];
    let records = runner::fig9(&cli.scale, cli.dataset, &boundaries).expect("fig9 experiment");

    println!("# Figure 9 — compaction time and breakdown (write-only workload)");
    let mut last = usize::MAX;
    for r in &records {
        if r.position_boundary != last {
            println!("\n[position boundary {}]", r.position_boundary);
            last = r.position_boundary;
        }
        println!("{}", r.row());
    }
    cli.maybe_write(&learned_lsm::report::to_json(&records));
}
