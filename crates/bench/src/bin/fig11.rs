//! Figure 11: range-lookup latency and memory across range lengths
//! (2 / 128 / 512) and position boundaries.

use lsm_bench::{runner, Cli};

fn main() {
    let cli = Cli::parse();
    let boundaries = [128usize, 64, 32];
    let range_lens = [2usize, 128, 512];
    let records =
        runner::fig11(&cli.scale, cli.dataset, &boundaries, &range_lens).expect("fig11 experiment");

    println!("# Figure 11 — range lookups");
    let mut last = usize::MAX;
    for r in &records {
        if r.range_len != last {
            println!("\n[range length {}]", r.range_len);
            last = r.range_len;
        }
        println!("{}", r.row());
    }
    cli.maybe_write(&learned_lsm::report::to_json(&records));
}
