//! Figure 10: per-level read overhead vs index memory vs level size, under
//! uniform and read-latest request distributions.

use lsm_bench::{runner, Cli};

fn main() {
    let cli = Cli::parse();
    let records = runner::fig10(&cli.scale, cli.dataset).expect("fig10 experiment");

    println!("# Figure 10 — per-level shares (read overhead / index size / level size)");
    let mut last = String::new();
    println!(
        "{:12} {:>5} {:>12} {:>12} {:>12}",
        "dist", "level", "reads", "index", "entries"
    );
    for r in &records {
        if r.distribution != last {
            println!("--- {} ---", r.distribution);
            last = r.distribution.clone();
        }
        println!(
            "{:12} {:5} {:12.3} {:12.3} {:12.3}",
            r.distribution, r.level, r.read_share, r.index_share, r.entry_share
        );
    }
    cli.maybe_write(&learned_lsm::report::to_json(&records));
}
