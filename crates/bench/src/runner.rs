//! One runner function per table/figure. Binaries are thin wrappers; the
//! harness integration tests call these at smoke scale.

use learned_index::IndexKind;
use learned_lsm::{Granularity, LookupReport, RangeReport, Testbed, TestbedConfig};
use lsm_tree::sharding::imbalance;
use lsm_tree::{Maintenance, Options, Result, ShardedDb, ShardedOptions, WriteBatch, WriteOptions};
use lsm_workloads::{cdf, value_for_key, Dataset, Op, RequestDistribution, YcsbSpec, YcsbWorkload};
use serde::Serialize;

use crate::Scale;

/// Build a config from a scale profile.
pub fn config_for(
    scale: &Scale,
    kind: IndexKind,
    boundary: usize,
    dataset: Dataset,
    granularity: Granularity,
) -> TestbedConfig {
    let mut c = TestbedConfig::quick(kind, boundary, dataset);
    c.num_keys = scale.keys;
    c.value_width = scale.value_width;
    c.write_buffer_bytes = scale.write_buffer_bytes;
    c.granularity = granularity;
    c
}

fn loaded_testbed(
    scale: &Scale,
    kind: IndexKind,
    boundary: usize,
    dataset: Dataset,
    granularity: Granularity,
) -> Result<Testbed> {
    let mut tb = Testbed::new(config_for(scale, kind, boundary, dataset, granularity))?;
    tb.load()?;
    Ok(tb)
}

// ---------------------------------------------------------------- Figure 5

/// Normalized CDF sample of one dataset.
#[derive(Debug, Serialize)]
pub struct CdfRecord {
    pub dataset: String,
    pub points: Vec<(f64, f64)>,
}

/// Figure 5: CDFs of the seven datasets.
pub fn fig5(keys_per_dataset: usize, points: usize, seed: u64) -> Vec<CdfRecord> {
    Dataset::ALL
        .iter()
        .map(|d| {
            let keys = d.generate(keys_per_dataset, seed);
            CdfRecord {
                dataset: d.name().to_string(),
                points: cdf::sample_normalized_cdf(&keys, points),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Figure 6

/// Position boundaries used by the quick profile (same as the paper's).
pub const BOUNDARIES: [usize; 6] = [256, 128, 64, 32, 16, 8];

/// Figure 6: latency and memory vs position boundary, per index, per dataset.
pub fn fig6(
    scale: &Scale,
    datasets: &[Dataset],
    boundaries: &[usize],
) -> Result<Vec<LookupReport>> {
    let mut out = Vec::new();
    for &dataset in datasets {
        for kind in IndexKind::ALL {
            for &b in boundaries {
                let tb = loaded_testbed(
                    scale,
                    kind,
                    b,
                    dataset,
                    Granularity::SstBytes(scale.sst_bytes),
                )?;
                out.push(tb.run_point_lookups(scale.ops, RequestDistribution::Uniform)?);
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------- Figure 7

/// Figure 7: (A) per-stage query time by index type at one boundary;
/// (B) prediction time as the boundary shrinks.
pub fn fig7(scale: &Scale, dataset: Dataset) -> Result<(Vec<LookupReport>, Vec<LookupReport>)> {
    let mut by_kind = Vec::new();
    for kind in IndexKind::ALL {
        let tb = loaded_testbed(
            scale,
            kind,
            64,
            dataset,
            Granularity::SstBytes(scale.sst_bytes),
        )?;
        by_kind.push(tb.run_point_lookups(scale.ops, RequestDistribution::Uniform)?);
    }
    let mut by_boundary = Vec::new();
    for b in [128usize, 32, 8] {
        for kind in IndexKind::ALL {
            let tb = loaded_testbed(
                scale,
                kind,
                b,
                dataset,
                Granularity::SstBytes(scale.sst_bytes),
            )?;
            by_boundary.push(tb.run_point_lookups(scale.ops / 2, RequestDistribution::Uniform)?);
        }
    }
    Ok((by_kind, by_boundary))
}

// ---------------------------------------------------------------- Figure 8

/// Figure 8: index granularity (SSTable size + level model) sweep.
///
/// The quick profile scales the paper's 8–128 MiB down by 16× so the table
/// counts match.
pub fn fig8(scale: &Scale, dataset: Dataset, boundaries: &[usize]) -> Result<Vec<LookupReport>> {
    let base = scale.sst_bytes / 4;
    let grans = [
        Granularity::SstBytes(base),
        Granularity::SstBytes(base * 2),
        Granularity::SstBytes(base * 4),
        Granularity::SstBytes(base * 8),
        Granularity::SstBytes(base * 16),
        Granularity::Level {
            sst_bytes: base * 16,
        },
    ];
    let mut out = Vec::new();
    for &b in boundaries {
        for kind in IndexKind::LEARNED {
            for g in grans {
                let tb = loaded_testbed(scale, kind, b, dataset, g)?;
                out.push(tb.run_point_lookups(scale.ops / 4, RequestDistribution::Uniform)?);
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------- Write modes (ablation)

/// One point of the group-commit ablation: the same write-only workload
/// issued per-key or in `WriteBatch`es of `batch_size` entries.
#[derive(Debug, Serialize)]
pub struct WriteModeRecord {
    pub mode: String,
    pub batch_size: usize,
    /// Per-op write latency, µs (CPU measured + modeled I/O).
    pub avg_write_us: f64,
    /// WAL records appended over the whole load — group commit makes this
    /// `ops / batch_size` instead of `ops`.
    pub wal_appends: u64,
    pub speedup_vs_per_key: f64,
}

/// Group-commit ablation: per-key `put` vs batched `Db::write` for the same
/// write-only load on the simulated NVMe. The ≥2× speedup of batched
/// loading is the write-path headline of the `WriteBatch` API redesign.
pub fn write_modes(
    scale: &Scale,
    dataset: Dataset,
    batch_sizes: &[usize],
) -> Result<Vec<WriteModeRecord>> {
    let mut config = config_for(
        scale,
        IndexKind::Pgm,
        64,
        dataset,
        Granularity::SstBytes(scale.sst_bytes),
    );
    config.num_keys = 0;

    let mut per_key_tb = Testbed::new(config.clone())?;
    let per_key = per_key_tb.run_write_workload(scale.ops)?;
    let mut out = vec![WriteModeRecord {
        mode: "per-key".to_string(),
        batch_size: 1,
        avg_write_us: per_key.avg_write_us,
        wal_appends: per_key_tb.db().stats().snapshot().wal_appends,
        speedup_vs_per_key: 1.0,
    }];
    for &batch_size in batch_sizes {
        let mut tb = Testbed::new(config.clone())?;
        let r = tb.run_write_workload_batched(scale.ops, batch_size)?;
        out.push(WriteModeRecord {
            mode: "batched".to_string(),
            batch_size,
            avg_write_us: r.avg_write_us,
            wal_appends: tb.db().stats().snapshot().wal_appends,
            speedup_vs_per_key: per_key.avg_write_us / r.avg_write_us.max(1e-9),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------- Figure 9

/// Figure 9: compaction time and breakdown under a write-only workload.
pub fn fig9(
    scale: &Scale,
    dataset: Dataset,
    boundaries: &[usize],
) -> Result<Vec<learned_lsm::CompactionReport>> {
    let mut out = Vec::new();
    for &b in boundaries {
        for kind in IndexKind::ALL {
            let mut config = config_for(
                scale,
                kind,
                b,
                dataset,
                Granularity::SstBytes(scale.sst_bytes),
            );
            config.num_keys = 0;
            let mut tb = Testbed::new(config)?;
            out.push(tb.run_write_workload(scale.ops)?);
        }
    }
    Ok(out)
}

// --------------------------------------------------------------- Figure 10

/// Per-level proportions for one request distribution (Figure 10 bars).
#[derive(Debug, Serialize)]
pub struct LevelProfile {
    pub distribution: String,
    pub level: usize,
    pub read_share: f64,
    pub index_share: f64,
    pub entry_share: f64,
}

/// Figure 10: read overhead vs index size vs level size, per level, under
/// uniform and read-latest request distributions.
pub fn fig10(scale: &Scale, dataset: Dataset) -> Result<Vec<LevelProfile>> {
    let mut out = Vec::new();
    for (name, dist) in [
        ("uniform", RequestDistribution::Uniform),
        ("read-latest", RequestDistribution::Latest { theta: 0.99 }),
    ] {
        // Figure 10 needs the naturally layered tree the write path builds
        // (recency concentrated in upper levels), not a bulk load.
        let mut tb = Testbed::new(config_for(
            scale,
            IndexKind::Pgm,
            64,
            dataset,
            Granularity::SstBytes(scale.sst_bytes),
        ))?;
        tb.load_via_writes()?;
        let r = tb.run_point_lookups(scale.ops, dist)?;
        let reads: f64 = r.level_reads.iter().sum::<u64>() as f64;
        let mem: f64 = r.level_index_bytes.iter().sum::<u64>() as f64;
        let entries: f64 = r.level_entries.iter().sum::<u64>() as f64;
        for level in 0..r.level_entries.len() {
            if r.level_entries[level] == 0 && r.level_reads.get(level).copied().unwrap_or(0) == 0 {
                continue;
            }
            out.push(LevelProfile {
                distribution: name.to_string(),
                level,
                read_share: r.level_reads.get(level).copied().unwrap_or(0) as f64 / reads.max(1.0),
                index_share: r.level_index_bytes[level] as f64 / mem.max(1.0),
                entry_share: r.level_entries[level] as f64 / entries.max(1.0),
            });
        }
    }
    Ok(out)
}

// ----------------------------------------------------------------- Table 1

/// Table 1: point-lookup stage times for PLR at position boundary 10 across
/// SSTable sizes (paper: 4/32/128 MB).
pub fn table1(scale: &Scale, dataset: Dataset) -> Result<Vec<LookupReport>> {
    let mut out = Vec::new();
    for mult in [1u64, 8, 32] {
        let tb = loaded_testbed(
            scale,
            IndexKind::Plr,
            10,
            dataset,
            Granularity::SstBytes(scale.sst_bytes / 4 * mult),
        )?;
        out.push(tb.run_point_lookups(scale.ops, RequestDistribution::Uniform)?);
    }
    Ok(out)
}

// --------------------------------------------------------------- Figure 11

/// Figure 11: range lookups across range lengths and position boundaries.
pub fn fig11(
    scale: &Scale,
    dataset: Dataset,
    boundaries: &[usize],
    range_lens: &[usize],
) -> Result<Vec<RangeReport>> {
    let mut out = Vec::new();
    for &len in range_lens {
        for kind in IndexKind::ALL {
            for &b in boundaries {
                let tb = loaded_testbed(
                    scale,
                    kind,
                    b,
                    dataset,
                    Granularity::SstBytes(scale.sst_bytes),
                )?;
                let ops = (scale.ops / len.max(1)).clamp(50, scale.ops);
                out.push(tb.run_range_lookups(ops, len)?);
            }
        }
    }
    Ok(out)
}

// --------------------------------------------------------------- Figure 12

/// One YCSB measurement point (Figure 12 plots latency vs memory).
#[derive(Debug, Serialize)]
pub struct YcsbRecord {
    pub workload: String,
    pub index: String,
    pub position_boundary: usize,
    pub avg_op_us: f64,
    pub index_memory_bytes: u64,
}

// ----------------------------------------------------------- Sharded YCSB

/// One YCSB measurement point against a [`ShardedDb`] (the `--shards N`
/// scenario: same six mixes, engine-level range sharding underneath).
#[derive(Debug, Serialize)]
pub struct ShardedYcsbRecord {
    pub workload: String,
    pub index: String,
    pub shards: usize,
    pub ops: u64,
    /// Per-op latency, µs (measured CPU + modeled I/O — the repo's
    /// standard convention).
    pub avg_op_us: f64,
    /// Relative shard imbalance after the load (`max/mean - 1`); the
    /// learned range router's report card.
    pub load_imbalance: f64,
    /// Writer stall time accumulated during load + run, ms.
    pub stall_ms: f64,
    /// Live shard splits performed (0 with a frozen topology).
    pub splits: u64,
    /// Shard count at the end of the run (== `shards` when frozen).
    pub final_shards: usize,
}

/// Live-rebalancing knobs for the sharded runners: `None` freezes the
/// topology (PR 3 behaviour); `Some` enables online splits up to
/// `max_shards` at `split_threshold` overshoot of the fair share.
#[derive(Debug, Clone, Copy)]
pub struct Rebalance {
    pub max_shards: usize,
    pub split_threshold: f64,
}

impl Rebalance {
    /// From CLI flags: `--max-shards 0` means frozen.
    pub fn from_flags(max_shards: usize, split_threshold: f64) -> Option<Rebalance> {
        (max_shards > 0).then_some(Rebalance {
            max_shards,
            split_threshold,
        })
    }

    fn apply(knobs: Option<Rebalance>, mut opts: ShardedOptions) -> ShardedOptions {
        if let Some(r) = knobs {
            let min_split = opts.base.write_buffer_bytes as u64;
            opts = opts
                .with_max_shards(r.max_shards)
                .with_split_trigger(r.split_threshold, min_split);
        }
        opts
    }
}

/// Engine options for the sharded YCSB runs: background maintenance with
/// a small shared worker pool, sized from the scale profile. `cache_mb`
/// is the engine-wide cache budget (0 = uncached), shared by every shard.
fn sharded_ycsb_opts(scale: &Scale, kind: IndexKind, cache_mb: usize) -> Options {
    let mut o = Options::default();
    o.index.kind = kind;
    o.value_width = scale.value_width;
    o.write_buffer_bytes = scale.write_buffer_bytes;
    o.sstable_target_bytes = scale.sst_bytes;
    o.block_cache_bytes = cache_mb << 20;
    o.maintenance = Maintenance::Background {
        flush_threads: 2,
        compaction_threads: 2,
    };
    o
}

/// Run all six YCSB mixes against an `N`-shard [`ShardedDb`] on the
/// simulated NVMe (learned range routing, boundaries trained on a sample
/// of the load; `shards == 1` measures the degenerate single-shard case).
/// Each mix gets a freshly loaded engine, mirroring [`fig12`].
pub fn ycsb_sharded(
    scale: &Scale,
    dataset: Dataset,
    shards: usize,
    kind: IndexKind,
    seed: u64,
    rebalance: Option<Rebalance>,
    cache_mb: usize,
) -> Result<Vec<ShardedYcsbRecord>> {
    let mut out = Vec::new();
    let keys = dataset.generate(scale.keys, seed);
    for spec in YcsbSpec::ALL {
        let mut workload = YcsbWorkload::new(spec, keys.clone(), seed ^ 0xfc);
        let opts = Rebalance::apply(
            rebalance,
            ShardedOptions::learned(
                shards,
                workload.router_sample(16),
                sharded_ycsb_opts(scale, kind, cache_mb),
            ),
        );
        let db = ShardedDb::open_sim(opts, lsm_io::CostModel::default())?;

        // YCSB load phase: batched writes through the fence.
        let wopts = WriteOptions::default();
        for chunk in workload.keys().chunks(512) {
            let mut batch = WriteBatch::with_capacity(chunk.len());
            for &k in chunk {
                batch.put(k, &value_for_key(k, scale.value_width));
            }
            db.write(batch, &wopts)?;
        }
        db.flush()?;
        let load_imbalance = imbalance(&db.shard_entry_counts());

        let ops = if matches!(spec, YcsbSpec::E) {
            scale.ops / 10
        } else {
            scale.ops
        };
        let io_before = db.shard(0).storage().stats().snapshot();
        let wall = std::time::Instant::now();
        for _ in 0..ops {
            match workload.next_op() {
                Op::Read(k) => {
                    let _ = db.get(k)?;
                }
                Op::Update(k) | Op::Insert(k) => {
                    db.put(k, &value_for_key(k, scale.value_width))?;
                }
                Op::Scan(k, len) => {
                    let _ = db.scan(k, len)?;
                }
                Op::ReadModifyWrite(k) => {
                    let _ = db.get(k)?;
                    db.put(k, &value_for_key(k ^ 1, scale.value_width))?;
                }
            }
        }
        let cpu_ns = wall.elapsed().as_nanos() as u64;
        let io = db.shard(0).storage().stats().snapshot().since(&io_before);
        let stats = db.stats();
        out.push(ShardedYcsbRecord {
            workload: spec.name().to_string(),
            index: kind.abbrev().to_string(),
            shards,
            ops: ops as u64,
            avg_op_us: (cpu_ns + io.sim_total_ns()) as f64 / ops.max(1) as f64 / 1_000.0,
            load_imbalance,
            stall_ms: stats.stall_ns as f64 / 1e6,
            splits: stats.shard_splits,
            final_shards: db.shard_count(),
        });
        db.close()?;
    }
    Ok(out)
}

// ---------------------------------------------------------- YCSB / server

/// One YCSB mix driven through the network front end (`--server`): the
/// open-loop arrival schedule plus the latency quantiles it measured.
#[derive(Debug, Serialize)]
pub struct ServerYcsbRecord {
    pub workload: String,
    pub index: String,
    pub shards: usize,
    /// Requests on the wire (read-modify-write expands to two arrivals).
    pub requests: u64,
    /// Scheduled arrival rate, requests/s (calibrated when `--rate 0`).
    pub target_rate: f64,
    /// Completions per second actually achieved.
    pub achieved_rate: f64,
    /// Scheduled-arrival-to-response latency quantiles, µs — measured
    /// from the *schedule*, so queueing delay is never omitted.
    pub p50_us: f64,
    pub p99_us: f64,
    pub p999_us: f64,
    pub mean_us: f64,
    pub max_us: f64,
    /// Admission-control sheds (`RETRY_AFTER` answers) during the run.
    pub shed: u64,
    /// Other typed server errors during the run.
    pub errors: u64,
}

fn client_err(e: lsm_server::ClientError) -> lsm_tree::Error {
    lsm_tree::Error::Io(std::io::Error::other(format!("server client: {e}")))
}

/// Expand one YCSB op into wire requests. Read-modify-write becomes two
/// arrivals (the client really does send a GET and then a PUT).
fn push_requests(reqs: &mut Vec<lsm_server::Request>, op: Op, value_width: usize) {
    use lsm_server::Request;
    match op {
        Op::Read(k) => reqs.push(Request::Get { key: k }),
        Op::Update(k) | Op::Insert(k) => reqs.push(Request::Put {
            key: k,
            value: value_for_key(k, value_width),
            durable: false,
        }),
        Op::Scan(k, len) => reqs.push(Request::Scan {
            start: k,
            limit: len.min(lsm_server::MAX_SCAN_LIMIT) as u32,
        }),
        Op::ReadModifyWrite(k) => {
            reqs.push(Request::Get { key: k });
            reqs.push(Request::Put {
                key: k,
                value: value_for_key(k ^ 1, value_width),
                durable: false,
            });
        }
    }
}

/// Run all six YCSB mixes through the full network request path: a
/// [`lsm_server::Server`] over an `N`-shard [`ShardedDb`] on the simulated
/// NVMe, driven by the pipelined client at a fixed open-loop arrival rate.
///
/// `rate` is arrivals per second; `None` calibrates per mix by measuring
/// a short closed-loop burst through the same wire and scheduling at 70 %
/// of it, so the open loop runs loaded but not saturated. Latencies are
/// measured from *scheduled* arrival (coordinated-omission-free), and
/// admission-control sheds are counted, not hidden.
///
/// Returns the per-mix records plus the last mix's sharded-stats report,
/// fetched through the `STATS` opcode like any other request.
pub fn ycsb_server(
    scale: &Scale,
    dataset: Dataset,
    shards: usize,
    kind: IndexKind,
    seed: u64,
    rate: Option<f64>,
    cache_mb: usize,
) -> Result<(Vec<ServerYcsbRecord>, String)> {
    let (records, stats, _) =
        ycsb_server_inner(scale, dataset, shards, kind, seed, rate, cache_mb, false)?;
    Ok((records, stats))
}

/// [`ycsb_server`] with the engine's observability layer on: alongside
/// the stats JSON, scrape the full [`lsm_server::MetricsSnapshot`] (folded
/// per-shard latency histograms plus the event timeline) through the
/// `METRICS` opcode after the last mix.
pub fn ycsb_server_with_metrics(
    scale: &Scale,
    dataset: Dataset,
    shards: usize,
    kind: IndexKind,
    seed: u64,
    rate: Option<f64>,
    cache_mb: usize,
) -> Result<(Vec<ServerYcsbRecord>, String, lsm_server::MetricsSnapshot)> {
    let (records, stats, snap) =
        ycsb_server_inner(scale, dataset, shards, kind, seed, rate, cache_mb, true)?;
    Ok((records, stats, snap.expect("observability was on")))
}

#[allow(clippy::too_many_arguments)]
fn ycsb_server_inner(
    scale: &Scale,
    dataset: Dataset,
    shards: usize,
    kind: IndexKind,
    seed: u64,
    rate: Option<f64>,
    cache_mb: usize,
    observability: bool,
) -> Result<(
    Vec<ServerYcsbRecord>,
    String,
    Option<lsm_server::MetricsSnapshot>,
)> {
    use lsm_server::{Client, MemTransport, Server, ServerOptions};
    use std::sync::Arc;

    let mut out = Vec::new();
    let mut stats_json = String::new();
    let mut metrics = None;
    let keys = dataset.generate(scale.keys, seed);
    for spec in YcsbSpec::ALL {
        let mut workload = YcsbWorkload::new(spec, keys.clone(), seed ^ 0xc5);
        let mut base = sharded_ycsb_opts(scale, kind, cache_mb);
        base.observability = observability;
        let opts = ShardedOptions::learned(shards, workload.router_sample(16), base);
        let db = ShardedDb::open_sim(opts, lsm_io::CostModel::default())?;

        // YCSB load phase: batched writes straight into the engine (setup,
        // not measurement — the measured mix goes through the wire).
        let wopts = WriteOptions::default();
        for chunk in workload.keys().chunks(512) {
            let mut batch = WriteBatch::with_capacity(chunk.len());
            for &k in chunk {
                batch.put(k, &value_for_key(k, scale.value_width));
            }
            db.write(batch, &wopts)?;
        }
        db.flush()?;

        let (connector, listener) = MemTransport::endpoint();
        let server = Server::start(db, Arc::new(listener), ServerOptions::default());
        let client = Client::new(connector.connect()?);

        let ops = if matches!(spec, YcsbSpec::E) {
            scale.ops / 10
        } else {
            scale.ops
        };
        let mut reqs = Vec::with_capacity(ops + ops / 2);
        for _ in 0..ops {
            push_requests(&mut reqs, workload.next_op(), scale.value_width);
        }

        let target_rate = match rate {
            Some(r) => r,
            None => {
                // Closed-loop calibration through the same wire: measure
                // what one at-a-time traffic sustains, schedule at 70 %.
                let calib = (reqs.len() / 10).clamp(100, 2_000);
                let t = std::time::Instant::now();
                for i in 0..calib {
                    let id = client.submit(&reqs[i % reqs.len()]).map_err(client_err)?;
                    client.wait(id).map_err(client_err)?;
                }
                let measured = calib as f64 / t.elapsed().as_secs_f64().max(1e-9);
                (0.7 * measured).max(100.0)
            }
        };

        let summary =
            lsm_server::run_open_loop(&client, target_rate, reqs.len(), |i| reqs[i].clone())
                .map_err(client_err)?;
        stats_json = client.stats_json().map_err(client_err)?;
        if observability {
            // Scrape after the measured run so the histograms fold the
            // whole mix; draining the ring here also keeps it from
            // overflowing across mixes.
            metrics = Some(client.metrics().map_err(client_err)?);
        }

        out.push(ServerYcsbRecord {
            workload: spec.name().to_string(),
            index: kind.abbrev().to_string(),
            shards,
            requests: summary.ops as u64,
            target_rate,
            achieved_rate: summary.achieved_rate(),
            p50_us: summary.latency_at(0.50) as f64 / 1e3,
            p99_us: summary.latency_at(0.99) as f64 / 1e3,
            p999_us: summary.latency_at(0.999) as f64 / 1e3,
            mean_us: summary.hist.mean() as f64 / 1e3,
            max_us: summary.hist.max() as f64 / 1e3,
            shed: summary.shed as u64,
            errors: summary.errors as u64,
        });
        server.close()?;
    }
    Ok((out, stats_json, metrics))
}

// ------------------------------------------------------- live rebalancing

/// One measurement of the live-rebalancing scenario: a skewed insert
/// stream against a 2-shard engine whose initial boundaries were cut for
/// a uniform distribution.
#[derive(Debug, Serialize)]
pub struct RebalanceRecord {
    /// Whether live splitting was enabled.
    pub splits_on: bool,
    /// Per-insert latency, µs (measured CPU + modeled I/O).
    pub avg_insert_us: f64,
    /// Live splits performed.
    pub splits: u64,
    /// Final shard count.
    pub final_shards: usize,
    /// Resident-bytes imbalance (`max/mean - 1`) at the end.
    pub resident_imbalance: f64,
    /// Writer stall time, ms.
    pub stall_ms: f64,
}

/// The rebalance scenario behind the `rebalance` criterion bench: insert
/// `scale.keys` zipfian-density keys (dense near zero, sparse tail) into
/// a 2-shard learned-range engine whose boundary was trained on a
/// *uniform* sample — with live splitting on or off — and report the
/// cost and the final balance. Splits-off measures the cost of the
/// mismatch (one shard swallows the stream); splits-on measures what the
/// online topology pays to fix it.
pub fn rebalance_stream(scale: &Scale, splits_on: bool, seed: u64) -> Result<RebalanceRecord> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let uniform_sample: Vec<u64> = (0..4096u64).map(|i| i << 32).collect();
    let mut opts = ShardedOptions::learned(
        2,
        uniform_sample,
        sharded_ycsb_opts(scale, IndexKind::Pgm, 0),
    );
    if splits_on {
        opts = opts
            .with_max_shards(16)
            .with_split_trigger(0.2, 2 * scale.write_buffer_bytes as u64);
    }
    let db = ShardedDb::open_sim(opts, lsm_io::CostModel::default())?;
    let chooser = RequestDistribution::Zipfian { theta: 0.99 }.chooser(1 << 20);
    let mut rng = StdRng::seed_from_u64(seed);
    let value = vec![7u8; scale.value_width];
    let wall = std::time::Instant::now();
    let mut batch = WriteBatch::with_capacity(64);
    for _ in 0..scale.keys {
        let k = ((chooser.next(&mut rng) as u64) << 24) | rng.gen_range(0..1u64 << 24);
        batch.put(k, &value);
        if batch.len() >= 64 {
            db.write(std::mem::take(&mut batch), &WriteOptions::default())?;
        }
    }
    db.write(batch, &WriteOptions::default())?;
    db.flush()?;
    if splits_on {
        // Quiesce: drive the trigger until no shard is over target — the
        // cost of the drains is part of what this bench measures. (Under
        // a longer-lived stream the worker pool does this on its own;
        // the smoke-scale stream finishes in milliseconds.)
        while db.rebalance()? {}
    }
    let cpu_ns = wall.elapsed().as_nanos() as u64;
    let io = db.shard(0).storage().stats().snapshot();
    let stats = db.stats();
    let sharded = db.sharded_stats();
    let record = RebalanceRecord {
        splits_on,
        avg_insert_us: (cpu_ns + io.sim_total_ns()) as f64 / scale.keys.max(1) as f64 / 1_000.0,
        splits: stats.shard_splits,
        final_shards: db.shard_count(),
        resident_imbalance: sharded.resident_imbalance,
        stall_ms: stats.stall_ns as f64 / 1e6,
    };
    db.close()?;
    Ok(record)
}

/// Figure 12: six YCSB workloads, each index at several memory budgets
/// (obtained by sweeping the position boundary). `cache_mb` sets the
/// engine cache budget (0 = uncached, the historical behaviour).
pub fn fig12(
    scale: &Scale,
    dataset: Dataset,
    boundaries: &[usize],
    cache_mb: usize,
) -> Result<Vec<YcsbRecord>> {
    let mut out = Vec::new();
    for spec in YcsbSpec::ALL {
        for kind in IndexKind::ALL {
            for &b in boundaries {
                let mut config = config_for(
                    scale,
                    kind,
                    b,
                    dataset,
                    Granularity::SstBytes(scale.sst_bytes),
                );
                config.block_cache_bytes = cache_mb << 20;
                let mut tb = Testbed::new(config)?;
                tb.load()?;
                let ops = if matches!(spec, YcsbSpec::E) {
                    scale.ops / 10
                } else {
                    scale.ops
                };
                let avg_op_us = tb.run_ycsb(spec, ops)?;
                out.push(YcsbRecord {
                    workload: spec.name().to_string(),
                    index: kind.abbrev().to_string(),
                    position_boundary: b,
                    avg_op_us,
                    index_memory_bytes: tb.index_memory_bytes(),
                });
            }
        }
    }
    Ok(out)
}
