//! Memory-budget allocation across levels — the paper's first future
//! direction (Section 6.2): "a more sophisticated algorithm for dynamically
//! allocating memory budgets for learned indexes, taking into account
//! workloads, query distribution, and dataset characteristics".
//!
//! Observation 5 shows that a uniform position boundary misallocates memory
//! when the read distribution is skewed across levels. This allocator takes
//! (a) each level's keys, (b) its measured/estimated share of lookups, and
//! (c) a total index-memory budget, and greedily assigns *per-level position
//! boundaries*: repeatedly spend bytes where they buy the most expected I/O
//! time per byte. The result plugs directly into
//! `lsm_tree::Options::per_level_epsilon`.

use learned_index::{IndexConfig, IndexKind};

/// What the allocator needs to know about one level.
#[derive(Debug, Clone)]
pub struct LevelWorkload {
    /// The level's keys (or a uniform sample — memory estimates scale).
    pub keys: Vec<u64>,
    /// Fraction of point lookups this level serves (Figure 10's read share).
    pub read_share: f64,
    /// How many per-SSTable indexes the level splits into (1 = level model).
    pub tables: usize,
}

/// Device/layout parameters for the expected-cost model (Section 4.1).
#[derive(Debug, Clone)]
pub struct BoundaryAllocator {
    pub kind: IndexKind,
    /// Bytes per on-disk entry.
    pub entry_bytes: usize,
    /// I/O block size.
    pub block_bytes: usize,
    /// Modeled nanoseconds per block read.
    pub read_block_ns: u64,
    /// Candidate position boundaries, coarse → fine.
    pub candidates: Vec<usize>,
}

impl Default for BoundaryAllocator {
    fn default() -> Self {
        Self {
            kind: IndexKind::Pgm,
            entry_bytes: 1036,
            block_bytes: 4096,
            read_block_ns: 2_100,
            candidates: vec![256, 128, 64, 32, 16, 8],
        }
    }
}

/// The allocator's output.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationPlan {
    /// Chosen position boundary per level (aligned with the input slice).
    pub per_level_boundary: Vec<usize>,
    /// Estimated index memory per level at the chosen boundary.
    pub per_level_memory: Vec<usize>,
    /// Total estimated index memory.
    pub total_memory: usize,
    /// Expected modeled I/O nanoseconds per lookup under the read shares.
    pub expected_io_ns: f64,
}

impl AllocationPlan {
    /// Convert to the engine's `per_level_epsilon` override.
    pub fn to_per_level_epsilon(&self) -> Vec<usize> {
        self.per_level_boundary
            .iter()
            .map(|b| (b / 2).max(1))
            .collect()
    }
}

impl BoundaryAllocator {
    /// Worst-case blocks fetched for one lookup at `boundary`.
    fn io_ns(&self, boundary: usize) -> f64 {
        let span = (boundary.max(1) * self.entry_bytes) as u64;
        let blocks = span.div_ceil(self.block_bytes as u64) + 1;
        (blocks * self.read_block_ns) as f64
    }

    /// Measure the index memory a level costs at a given boundary by
    /// actually training the chosen index family over its keys, split at the
    /// level's table granularity.
    fn memory_at(&self, level: &LevelWorkload, boundary: usize) -> usize {
        if level.keys.is_empty() {
            return 0;
        }
        let config = IndexConfig {
            epsilon: (boundary / 2).max(1),
            ..IndexConfig::default()
        };
        let chunks = level.tables.max(1);
        let per = level.keys.len().div_ceil(chunks);
        level
            .keys
            .chunks(per)
            .map(|chunk| self.kind.build(chunk, &config).size_bytes())
            .sum()
    }

    /// Greedy allocation: start at the coarsest boundary everywhere, then
    /// repeatedly take the refinement with the best expected-time gain per
    /// byte that still fits the budget.
    pub fn allocate(&self, levels: &[LevelWorkload], budget_bytes: usize) -> AllocationPlan {
        assert!(!self.candidates.is_empty());
        let coarse = self.candidates[0];
        // Precompute the memory matrix level × candidate.
        let mem: Vec<Vec<usize>> = levels
            .iter()
            .map(|lvl| {
                self.candidates
                    .iter()
                    .map(|&b| self.memory_at(lvl, b))
                    .collect()
            })
            .collect();

        let mut choice = vec![0usize; levels.len()]; // candidate index per level
        let mut total: usize = mem.iter().map(|row| row[0]).sum();

        loop {
            let mut best: Option<(usize, f64, usize)> = None; // (level, gain/byte, extra)
            for (li, lvl) in levels.iter().enumerate() {
                let ci = choice[li];
                if ci + 1 >= self.candidates.len() {
                    continue;
                }
                let cur_b = self.candidates[ci];
                let next_b = self.candidates[ci + 1];
                let gain = lvl.read_share * (self.io_ns(cur_b) - self.io_ns(next_b));
                let extra = mem[li][ci + 1].saturating_sub(mem[li][ci]);
                if total + extra > budget_bytes || gain <= 0.0 {
                    continue;
                }
                let density = gain / (extra.max(1)) as f64;
                if best.is_none_or(|(_, d, _)| density > d) {
                    best = Some((li, density, extra));
                }
            }
            match best {
                Some((li, _, extra)) => {
                    choice[li] += 1;
                    total += extra;
                }
                None => break,
            }
        }

        let per_level_boundary: Vec<usize> = choice.iter().map(|&ci| self.candidates[ci]).collect();
        let per_level_memory: Vec<usize> = choice
            .iter()
            .enumerate()
            .map(|(li, &ci)| mem[li][ci])
            .collect();
        let expected_io_ns = levels
            .iter()
            .zip(&per_level_boundary)
            .map(|(lvl, &b)| lvl.read_share * self.io_ns(b))
            .sum();
        let total_memory = per_level_memory.iter().sum::<usize>();
        AllocationPlan {
            per_level_boundary,
            per_level_memory,
            total_memory,
            expected_io_ns,
        }
        .normalized(coarse)
    }
}

impl AllocationPlan {
    /// Guard against empty-level artifacts: levels with no keys keep the
    /// coarsest boundary.
    fn normalized(mut self, coarse: usize) -> Self {
        for (b, &m) in self
            .per_level_boundary
            .iter_mut()
            .zip(&self.per_level_memory)
        {
            if m == 0 {
                *b = coarse;
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Irregular (pseudo-random) keys so index memory genuinely grows as the
    /// boundary tightens.
    fn level(n: u64, seed: u64, read_share: f64, tables: usize) -> LevelWorkload {
        let mut keys: Vec<u64> = (0..n)
            .map(|i| {
                // splitmix64: full avalanche so sorted keys are genuinely
                // random (a weaker mix yields a low-discrepancy sequence
                // that a single segment can model at any ε).
                let mut z = (i ^ seed).wrapping_add(0x9e3779b97f4a7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                (z ^ (z >> 31)) % (1 << 50)
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        LevelWorkload {
            keys,
            read_share,
            tables,
        }
    }

    #[test]
    fn hot_level_gets_tighter_boundary() {
        let levels = vec![
            level(5_000, 1, 0.8, 4),   // hot small level
            level(50_000, 2, 0.2, 16), // cold big level
        ];
        let alloc = BoundaryAllocator::default();
        let uniform_coarse: usize = levels.iter().map(|l| alloc.memory_at(l, 256)).sum();
        // Budget: enough to fully refine the hot level, nowhere near enough
        // for the cold one.
        let hot_delta = alloc.memory_at(&levels[0], 8) - alloc.memory_at(&levels[0], 256);
        let budget = uniform_coarse + hot_delta + hot_delta / 4;
        let plan = alloc.allocate(&levels, budget);
        assert!(
            plan.per_level_boundary[0] < plan.per_level_boundary[1],
            "hot level must be refined first: {:?}",
            plan.per_level_boundary
        );
        assert!(plan.total_memory <= budget);
    }

    #[test]
    fn plan_respects_budget_and_improves_cost() {
        let levels = vec![level(2_000, 11, 0.3, 2), level(20_000, 13, 0.7, 8)];
        let alloc = BoundaryAllocator::default();
        let coarse_cost: f64 = levels.iter().map(|l| l.read_share * alloc.io_ns(256)).sum();
        let plan = alloc.allocate(&levels, 1 << 20);
        assert!(plan.expected_io_ns < coarse_cost, "refinement must help");
        assert!(plan.total_memory <= 1 << 20);
        assert_eq!(plan.per_level_boundary.len(), 2);
    }

    #[test]
    fn zero_budget_keeps_coarsest() {
        let levels = vec![level(5_000, 7, 1.0, 4)];
        let alloc = BoundaryAllocator::default();
        let plan = alloc.allocate(&levels, 0);
        assert_eq!(plan.per_level_boundary, vec![256]);
    }

    #[test]
    fn unlimited_budget_reaches_finest() {
        let levels = vec![level(5_000, 7, 1.0, 4)];
        let alloc = BoundaryAllocator::default();
        let plan = alloc.allocate(&levels, usize::MAX);
        assert_eq!(plan.per_level_boundary, vec![8]);
    }

    #[test]
    fn epsilon_conversion() {
        let plan = AllocationPlan {
            per_level_boundary: vec![256, 32, 8],
            per_level_memory: vec![1, 1, 1],
            total_memory: 3,
            expected_io_ns: 0.0,
        };
        assert_eq!(plan.to_per_level_epsilon(), vec![128, 16, 4]);
    }

    #[test]
    fn empty_level_is_harmless() {
        let levels = vec![
            LevelWorkload {
                keys: vec![],
                read_share: 0.5,
                tables: 1,
            },
            level(1_000, 3, 0.5, 1),
        ];
        let plan = BoundaryAllocator::default().allocate(&levels, 1 << 16);
        assert_eq!(plan.per_level_boundary.len(), 2);
        assert_eq!(plan.per_level_memory[0], 0);
    }
}
