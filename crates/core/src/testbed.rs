//! The testbed: one engine instance wired to a configuration-space point,
//! with dataset loading and the workload runners behind every figure.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use learned_index::IndexConfig;
use lsm_tree::types::MAX_SEQ;
use lsm_tree::{Db, Error, Result, WriteBatch, WriteOptions};
use lsm_workloads::{value_for_key, Op, RequestDistribution, YcsbSpec, YcsbWorkload};

use crate::config::TestbedConfig;
use crate::level_model::LevelModel;
use crate::report::{CompactionReport, LookupReport, RangeReport};

/// An engine instance plus the loaded key set and (optionally) level models.
pub struct Testbed {
    config: TestbedConfig,
    db: Db,
    /// Loaded dataset keys, sorted (lookup workloads draw from these).
    keys: Vec<u64>,
    /// Insertion order when loaded through the write path (newest last);
    /// gives the "read-latest" distribution its recency semantics.
    insertion_order: Option<Vec<u64>>,
    /// One model per level when granularity is [`Granularity::Level`].
    level_models: Vec<Option<LevelModel>>,
}

impl Testbed {
    /// Open a fresh simulated-NVMe testbed for `config` (nothing loaded yet).
    pub fn new(config: TestbedConfig) -> Result<Testbed> {
        let db = Db::open_sim(config.to_options(), lsm_io::CostModel::default())?;
        Ok(Testbed {
            config,
            db,
            keys: Vec::new(),
            insertion_order: None,
            level_models: Vec::new(),
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TestbedConfig {
        &self.config
    }

    /// The underlying engine.
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// Loaded keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Generate the configured dataset and bulk-load it into a leveled tree
    /// (the read experiments' load phase), then build level models if the
    /// granularity asks for them.
    pub fn load(&mut self) -> Result<()> {
        let c = &self.config;
        self.keys = c.dataset.generate(c.num_keys, c.seed);
        let vw = c.value_width;
        self.db
            .bulk_load(self.keys.iter().map(|&k| (k, value_for_key(k, vw))))?;
        if c.granularity.is_level() {
            self.build_level_models()?;
        }
        Ok(())
    }

    /// Batch size used by the write-path load phases: large enough that the
    /// group-commit saving dominates, small enough that memtable flush
    /// boundaries stay fine-grained.
    pub const LOAD_BATCH: usize = 512;

    /// Load the dataset through the normal write path (random insertion
    /// order, flushes, compactions), producing the naturally layered tree
    /// the paper's per-level experiments (Figure 10) rely on — newer data
    /// concentrated in upper levels. Writes go through [`Db::write`] in
    /// [`Self::LOAD_BATCH`]-entry `WriteBatch`es (one WAL record and one
    /// lock acquisition per batch), which is what makes write-path loading
    /// affordable at experiment scale.
    pub fn load_via_writes(&mut self) -> Result<()> {
        let c = &self.config;
        self.keys = c.dataset.generate(c.num_keys, c.seed);
        let vw = c.value_width;
        let mut order: Vec<usize> = (0..self.keys.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(c.seed ^ 0x10ad));
        let mut inserted = Vec::with_capacity(order.len());
        let wopts = WriteOptions::default();
        for chunk in order.chunks(Self::LOAD_BATCH) {
            let mut batch = WriteBatch::with_capacity(chunk.len());
            for &i in chunk {
                let k = self.keys[i];
                batch.put(k, &value_for_key(k, vw));
                inserted.push(k);
            }
            self.db.write(batch, &wopts)?;
        }
        self.db.flush()?;
        self.insertion_order = Some(inserted);
        if c.granularity.is_level() {
            self.build_level_models()?;
        }
        Ok(())
    }

    /// Train one model per non-empty sorted level (Figure 8's "L" point).
    pub fn build_level_models(&mut self) -> Result<()> {
        let version = self.db.version();
        let index_config = IndexConfig {
            epsilon: self.config.epsilon(),
            ..IndexConfig::default()
        };
        let mut models = Vec::with_capacity(version.levels.len());
        for (level, tables) in version.levels.iter().enumerate() {
            if level == 0 || tables.is_empty() {
                models.push(None);
                continue;
            }
            let readers = tables
                .iter()
                .map(|t| std::sync::Arc::clone(&t.reader))
                .collect();
            models.push(Some(LevelModel::build(
                readers,
                self.config.index_kind,
                &index_config,
            )?));
        }
        self.level_models = models;
        Ok(())
    }

    /// Point lookup honouring the granularity mode.
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>> {
        if self.level_models.iter().all(Option::is_none) {
            return self.db.get(key);
        }
        // Level-model path (read-only phase: the memtable is empty and L0
        // was consumed by the bulk load).
        debug_assert_eq!(self.db.memtable_len(), 0);
        let stats = self.db.stats();
        stats
            .lookups
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let version = self.db.version();
        for t in &version.levels[0] {
            if let Some(hit) = t.reader.get(key, MAX_SEQ, stats)? {
                return Ok(hit);
            }
        }
        for model in self.level_models.iter().flatten() {
            if let Some(hit) = model.get(key, MAX_SEQ, stats)? {
                return Ok(hit);
            }
        }
        Ok(None)
    }

    /// Index memory in effect: level models when enabled, per-table indexes
    /// otherwise.
    pub fn index_memory_bytes(&self) -> u64 {
        if self.level_models.iter().any(Option::is_some) {
            // L0 tables (if any) still carry their own indexes.
            let l0: usize = self.db.version().levels[0]
                .iter()
                .map(|t| t.reader.index_bytes())
                .sum();
            let models: usize = self
                .level_models
                .iter()
                .flatten()
                .map(LevelModel::size_bytes)
                .sum();
            (l0 + models) as u64
        } else {
            self.db.index_memory_bytes() as u64
        }
    }

    /// Run `ops` point lookups drawn from `dist` over the loaded keys and
    /// report the paper's metrics.
    pub fn run_point_lookups(&self, ops: usize, dist: RequestDistribution) -> Result<LookupReport> {
        if self.keys.is_empty() {
            return Err(Error::Corruption("load() must run before lookups".into()));
        }
        let chooser = dist.chooser(self.keys.len());
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9d);
        // "Latest" ranks mean recency when the load preserved insertion
        // order; otherwise they fall back to key order.
        let latest = matches!(dist, RequestDistribution::Latest { .. })
            .then(|| self.insertion_order.as_deref())
            .flatten();

        let stats_before = self.db.stats().snapshot();
        let io_before = self.db.storage().stats().snapshot();
        let wall = Instant::now();
        for _ in 0..ops {
            let pos = chooser.next(&mut rng);
            let key = match latest {
                Some(order) => order[order.len() - 1 - pos],
                None => self.keys[pos],
            };
            let got = self.get(key)?;
            debug_assert!(got.is_some(), "loaded key {key} must be found");
        }
        let cpu_ns = wall.elapsed().as_nanos() as u64;
        let stats = self.db.stats().snapshot().since(&stats_before);
        let io = self.db.storage().stats().snapshot().since(&io_before);

        let version = self.db.version();
        Ok(LookupReport::from_counters(
            self.config.index_kind.abbrev().to_string(),
            self.config.dataset.name().to_string(),
            self.config.position_boundary,
            self.config.granularity.label(),
            ops as u64,
            cpu_ns,
            io.sim_read_ns,
            io.read_blocks,
            self.index_memory_bytes(),
            self.db.bloom_memory_bytes() as u64,
            (
                stats.table_locate_ns,
                stats.predict_ns,
                stats.io_cpu_ns,
                stats.search_ns,
            ),
            stats.level_reads.to_vec(),
            version
                .index_memory_by_level()
                .into_iter()
                .map(|b| b as u64)
                .collect(),
            (0..version.levels.len())
                .map(|l| version.level_entries(l))
                .collect(),
        ))
    }

    /// Run `ops` range lookups of `range_len` entries each (Figure 11).
    pub fn run_range_lookups(&self, ops: usize, range_len: usize) -> Result<RangeReport> {
        if self.keys.is_empty() {
            return Err(Error::Corruption("load() must run before lookups".into()));
        }
        let chooser = RequestDistribution::Uniform.chooser(self.keys.len());
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x11a);

        let io_before = self.db.storage().stats().snapshot();
        let wall = Instant::now();
        let mut returned = 0u64;
        for _ in 0..ops {
            let start = self.keys[chooser.next(&mut rng)];
            let got = self.db.scan(start, range_len)?;
            returned += got.len() as u64;
        }
        let cpu_ns = wall.elapsed().as_nanos() as u64;
        let io = self.db.storage().stats().snapshot().since(&io_before);

        Ok(RangeReport {
            index: self.config.index_kind.abbrev().to_string(),
            dataset: self.config.dataset.name().to_string(),
            position_boundary: self.config.position_boundary,
            range_len,
            ops: ops as u64,
            avg_latency_us: (cpu_ns + io.sim_read_ns) as f64 / ops.max(1) as f64 / 1_000.0,
            cpu_us_per_op: cpu_ns as f64 / ops.max(1) as f64 / 1_000.0,
            sim_io_us_per_op: io.sim_read_ns as f64 / ops.max(1) as f64 / 1_000.0,
            index_memory_bytes: self.index_memory_bytes(),
            entries_returned: returned,
        })
    }

    /// Run a write-only workload of `ops` puts through the normal write path
    /// (flushes + compactions included) and report the compaction breakdown
    /// (Figure 9). Call on a *fresh* testbed. Each op is its own
    /// one-entry batch (`Db::put`) — the per-key write mode.
    pub fn run_write_workload(&mut self, ops: usize) -> Result<CompactionReport> {
        self.run_write_workload_batched(ops, 1)
    }

    /// [`Testbed::run_write_workload`] with the writes grouped into
    /// `batch_size`-entry `WriteBatch`es — the group-commit write mode.
    /// Same workload, same flush/compaction work; the difference in
    /// `avg_write_us` against the per-key run is the WAL/group-commit
    /// saving.
    pub fn run_write_workload_batched(
        &mut self,
        ops: usize,
        batch_size: usize,
    ) -> Result<CompactionReport> {
        let c = &self.config;
        self.keys = c.dataset.generate(ops, c.seed);
        let vw = c.value_width;

        let io_before = self.db.storage().stats().snapshot();
        let wall = Instant::now();
        let wopts = WriteOptions::default();
        for chunk in self.keys.chunks(batch_size.max(1)) {
            let mut batch = WriteBatch::with_capacity(chunk.len());
            for &k in chunk {
                batch.put(k, &value_for_key(k, vw));
            }
            self.db.write(batch, &wopts)?;
        }
        self.db.flush()?;
        let cpu_ns = wall.elapsed().as_nanos() as u64;
        let io = self.db.storage().stats().snapshot().since(&io_before);
        let stats = self.db.stats().snapshot();
        let cb = stats.compaction_breakdown();

        Ok(CompactionReport {
            index: c.index_kind.abbrev().to_string(),
            position_boundary: c.position_boundary,
            write_ops: ops as u64,
            flushes: stats.flushes,
            compactions: stats.compactions,
            compact_total_ms: cb.total_ns as f64 / 1e6,
            kv_io_ms: cb.kv_io_ns as f64 / 1e6,
            train_ms: cb.train_ns as f64 / 1e6,
            model_write_ms: cb.model_write_ns as f64 / 1e6,
            train_pct: cb.train_fraction() * 100.0,
            model_write_pct: cb.model_write_fraction() * 100.0,
            bytes_read: stats.compact_bytes_read,
            bytes_written: stats.compact_bytes_written,
            index_memory_bytes: self.db.index_memory_bytes() as u64,
            avg_write_us: (cpu_ns + io.sim_total_ns()) as f64 / ops.max(1) as f64 / 1_000.0,
        })
    }

    /// Run one YCSB workload (Figure 12): returns the average op latency in
    /// µs and lets the caller pair it with [`Testbed::index_memory_bytes`].
    pub fn run_ycsb(&mut self, spec: YcsbSpec, ops: usize) -> Result<f64> {
        if self.keys.is_empty() {
            return Err(Error::Corruption("load() must run before YCSB".into()));
        }
        let mut workload = YcsbWorkload::new(spec, self.keys.clone(), self.config.seed ^ 0xfc);
        let vw = self.config.value_width;

        let io_before = self.db.storage().stats().snapshot();
        let wall = Instant::now();
        for _ in 0..ops {
            match workload.next_op() {
                Op::Read(k) => {
                    let _ = self.db.get(k)?;
                }
                Op::Update(k) | Op::Insert(k) => {
                    self.db.put(k, &value_for_key(k, vw))?;
                }
                Op::Scan(k, len) => {
                    let _ = self.db.scan(k, len)?;
                }
                Op::ReadModifyWrite(k) => {
                    let _ = self.db.get(k)?;
                    self.db.put(k, &value_for_key(k ^ 1, vw))?;
                }
            }
        }
        let cpu_ns = wall.elapsed().as_nanos() as u64;
        let io = self.db.storage().stats().snapshot().since(&io_before);
        Ok((cpu_ns + io.sim_total_ns()) as f64 / ops.max(1) as f64 / 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Granularity;
    use learned_index::IndexKind;
    use lsm_workloads::Dataset;

    fn tiny_config(kind: IndexKind) -> TestbedConfig {
        let mut c = TestbedConfig::quick(kind, 64, Dataset::Random);
        c.num_keys = 20_000;
        c.value_width = 32;
        c.granularity = Granularity::SstBytes(256 << 10);
        c.write_buffer_bytes = 256 << 10;
        c
    }

    #[test]
    fn load_and_lookup_every_kind() {
        for kind in IndexKind::ALL {
            let mut tb = Testbed::new(tiny_config(kind)).unwrap();
            tb.load().unwrap();
            let report = tb
                .run_point_lookups(500, RequestDistribution::Uniform)
                .unwrap();
            assert_eq!(report.ops, 500);
            assert!(report.avg_latency_us > 0.0, "{kind}");
            assert!(report.index_memory_bytes > 0, "{kind}");
            assert!(report.blocks_per_op > 0.0, "{kind}");
        }
    }

    #[test]
    fn level_granularity_cuts_memory() {
        let mut per_sst = Testbed::new(tiny_config(IndexKind::Pgm)).unwrap();
        per_sst.load().unwrap();
        let mut config = tiny_config(IndexKind::Pgm);
        config.granularity = Granularity::Level {
            sst_bytes: 256 << 10,
        };
        let mut level = Testbed::new(config).unwrap();
        level.load().unwrap();

        assert!(level.index_memory_bytes() < per_sst.index_memory_bytes());
        // Lookups still work through the level models.
        let report = level
            .run_point_lookups(300, RequestDistribution::Uniform)
            .unwrap();
        assert_eq!(report.ops, 300);
    }

    #[test]
    fn range_lookups_return_entries() {
        let mut tb = Testbed::new(tiny_config(IndexKind::RadixSpline)).unwrap();
        tb.load().unwrap();
        let r = tb.run_range_lookups(50, 20).unwrap();
        assert_eq!(r.ops, 50);
        assert!(r.entries_returned >= 50 * 15, "{}", r.entries_returned);
    }

    #[test]
    fn write_workload_reports_breakdown() {
        let mut c = tiny_config(IndexKind::Plex);
        c.num_keys = 0;
        let mut tb = Testbed::new(c).unwrap();
        let r = tb.run_write_workload(20_000).unwrap();
        assert!(r.flushes > 0);
        assert!(r.compactions > 0);
        assert!(r.train_ms > 0.0);
        assert!(r.train_pct < 60.0, "training dominates: {}", r.train_pct);
    }

    #[test]
    fn ycsb_all_specs_run() {
        let mut tb = Testbed::new(tiny_config(IndexKind::Pgm)).unwrap();
        tb.load().unwrap();
        for spec in YcsbSpec::ALL {
            let us = tb.run_ycsb(spec, 300).unwrap();
            assert!(us > 0.0, "{spec:?}");
        }
    }
}
