//! Level-grained learned indexes (paper Section 5.2, Figure 8's "L" point;
//! Bourbon's `LevelModel`).
//!
//! Instead of one model per SSTable, one model covers a whole sorted level:
//! the index is trained over the concatenation of all the level's keys and
//! predicts a *global* position, which a cumulative-count table maps back to
//! `(table, local position range)`. Fewer, larger models mean far less
//! memory (the paper reports >10× savings from 8 MiB SSTables to the level
//! model) at identical lookup latency.

use std::sync::Arc;

use learned_index::{IndexConfig, IndexKind, SegmentIndex};
use lsm_tree::sstable::TableReader;
use lsm_tree::stats::DbStats;
use lsm_tree::types::SeqNo;
use lsm_tree::Result;

/// One learned index spanning a whole sorted level.
pub struct LevelModel {
    index: Box<dyn SegmentIndex>,
    /// `cum[i]` = number of entries in tables `0..i`; `cum.len() = tables+1`.
    cum: Vec<usize>,
    tables: Vec<Arc<TableReader>>,
}

impl LevelModel {
    /// Train a level model over `tables` (sorted, non-overlapping). Reads
    /// every key of the level once — this is the training cost the level
    /// granularity trades for its memory savings.
    pub fn build(
        tables: Vec<Arc<TableReader>>,
        kind: IndexKind,
        config: &IndexConfig,
    ) -> Result<LevelModel> {
        debug_assert!(tables.windows(2).all(|w| w[0].max_key() < w[1].min_key()));
        let total: usize = tables.iter().map(|t| t.len()).sum();
        let mut keys = Vec::with_capacity(total);
        let mut cum = Vec::with_capacity(tables.len() + 1);
        cum.push(0);
        for t in &tables {
            keys.extend(t.read_all_keys()?);
            cum.push(keys.len());
        }
        let index = kind.build(&keys, config);
        Ok(LevelModel { index, cum, tables })
    }

    /// Point lookup through the level model: predict a global range, split
    /// it across the (at most two) tables it touches, and search each.
    pub fn get(
        &self,
        key: u64,
        snapshot: SeqNo,
        stats: &DbStats,
    ) -> Result<Option<Option<Vec<u8>>>> {
        if self.tables.is_empty() {
            return Ok(None);
        }
        let t0 = std::time::Instant::now();
        let bound = self.index.predict(key);
        stats.predict_ns.fetch_add(
            t0.elapsed().as_nanos() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        if bound.is_empty() {
            return Ok(None);
        }
        // Tables overlapped by [bound.lo, bound.hi).
        let first = self.cum.partition_point(|&c| c <= bound.lo) - 1;
        for (i, t) in self.tables.iter().enumerate().skip(first) {
            let table_start = self.cum[i];
            let table_end = self.cum[i + 1];
            if table_start >= bound.hi {
                break;
            }
            let lo = bound.lo.max(table_start) - table_start;
            let hi = bound.hi.min(table_end) - table_start;
            if lo >= hi {
                continue;
            }
            if let Some(hit) = t.get_in_positions(key, lo, hi, snapshot, stats)? {
                return Ok(Some(hit));
            }
        }
        Ok(None)
    }

    /// In-memory footprint: the model plus the cumulative table.
    pub fn size_bytes(&self) -> usize {
        self.index.size_bytes() + self.cum.len() * 8
    }

    /// Number of keys covered.
    pub fn key_count(&self) -> usize {
        *self.cum.last().unwrap_or(&0)
    }

    /// Number of tables covered.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Index kind in use.
    pub fn kind(&self) -> IndexKind {
        self.index.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_io::{MemStorage, Storage};
    use lsm_tree::sstable::TableBuilder;
    use lsm_tree::types::Entry;
    use lsm_tree::IndexChoice;

    fn table(storage: &MemStorage, name: &str, keys: &[u64]) -> Arc<TableReader> {
        let file = storage.create(name).unwrap();
        let mut b = TableBuilder::new(
            file,
            name.into(),
            IndexChoice::new(IndexKind::Plr, 8),
            16,
            10,
        );
        for (i, &k) in keys.iter().enumerate() {
            b.add(&Entry::put(k, i as u64 + 1, format!("v{k}").into_bytes()))
                .unwrap();
        }
        b.finish().unwrap();
        Arc::new(TableReader::open(storage, name).unwrap())
    }

    fn three_table_level(storage: &MemStorage) -> (Vec<Arc<TableReader>>, Vec<u64>) {
        let a: Vec<u64> = (0..1000u64).map(|i| i * 3).collect();
        let b: Vec<u64> = (1000..2000u64).map(|i| i * 3).collect();
        let c: Vec<u64> = (2000..3000u64).map(|i| i * 3).collect();
        let tables = vec![
            table(storage, "a", &a),
            table(storage, "b", &b),
            table(storage, "c", &c),
        ];
        let all: Vec<u64> = a.into_iter().chain(b).chain(c).collect();
        (tables, all)
    }

    #[test]
    fn finds_keys_across_table_boundaries() {
        let storage = MemStorage::new();
        let (tables, all) = three_table_level(&storage);
        for kind in [IndexKind::Pgm, IndexKind::Rmi, IndexKind::FencePointers] {
            let m = LevelModel::build(tables.clone(), kind, &IndexConfig::default()).unwrap();
            let stats = DbStats::new();
            for &k in all.iter().step_by(53) {
                let got = m.get(k, u64::MAX >> 8, &stats).unwrap();
                assert_eq!(
                    got,
                    Some(Some(format!("v{k}").into_bytes())),
                    "{kind} key {k}"
                );
            }
            assert_eq!(m.get(1, u64::MAX >> 8, &stats).unwrap(), None, "{kind}");
            assert_eq!(m.key_count(), 3000);
            assert_eq!(m.table_count(), 3);
        }
    }

    #[test]
    fn level_model_uses_less_memory_than_per_table() {
        let storage = MemStorage::new();
        let (tables, _) = three_table_level(&storage);
        let per_table: usize = tables.iter().map(|t| t.index_bytes()).sum();
        let m = LevelModel::build(tables, IndexKind::Plr, &IndexConfig::default()).unwrap();
        assert!(
            m.size_bytes() < per_table,
            "level model {} must beat per-table {}",
            m.size_bytes(),
            per_table
        );
    }

    #[test]
    fn empty_level() {
        let m = LevelModel::build(vec![], IndexKind::Pgm, &IndexConfig::default()).unwrap();
        let stats = DbStats::new();
        assert_eq!(m.get(5, u64::MAX >> 8, &stats).unwrap(), None);
        assert_eq!(m.key_count(), 0);
    }

    #[test]
    fn bound_straddling_two_tables_is_searched_in_both() {
        let storage = MemStorage::new();
        // Tiny tables so a 2ε window spans a boundary.
        let a: Vec<u64> = (0..20u64).collect();
        let b: Vec<u64> = (20..40u64).collect();
        let tables = vec![table(&storage, "a", &a), table(&storage, "b", &b)];
        let config = IndexConfig {
            epsilon: 16,
            ..IndexConfig::default()
        };
        let m = LevelModel::build(tables, IndexKind::FencePointers, &config).unwrap();
        let stats = DbStats::new();
        for k in 0..40u64 {
            assert!(
                m.get(k, u64::MAX >> 8, &stats).unwrap().is_some(),
                "key {k}"
            );
        }
    }
}
