//! The paper's unified testbed (Figure 4): one system where **index type**,
//! **position boundary**, and **index granularity** — the three-dimensional
//! configuration space of Section 4 — can each be varied independently, with
//! measurement plumbing that reproduces every table and figure of the
//! evaluation.
//!
//! Layering:
//!
//! * [`config`] — the configuration space and the paper's sweep grids;
//! * [`level_model`] — level-grained learned indexes (Bourbon's
//!   `LevelModel`): one model per sorted run instead of one per SSTable;
//! * [`testbed`] — [`Testbed`]: an engine instance wired to a configuration,
//!   with dataset loading and workload runners;
//! * [`report`] — measurement records that serialize to JSON and print as
//!   the rows/series the paper reports.

pub mod allocator;
pub mod config;
pub mod level_model;
pub mod report;
pub mod testbed;

pub use allocator::{AllocationPlan, BoundaryAllocator, LevelWorkload};
pub use config::{Granularity, TestbedConfig, PAPER_BOUNDARIES, PAPER_SST_MIB};
pub use level_model::LevelModel;
pub use report::{CompactionReport, LookupReport, RangeReport};
pub use testbed::Testbed;
