//! The three-dimensional configuration space of Section 4.1.

use learned_index::IndexKind;
use lsm_tree::{IndexChoice, Options};
use lsm_workloads::Dataset;

/// Position boundaries swept by Figure 6 (entries).
pub const PAPER_BOUNDARIES: [usize; 6] = [256, 128, 64, 32, 16, 8];

/// SSTable sizes swept by Figure 8 (MiB), plus the level model.
pub const PAPER_SST_MIB: [u64; 5] = [8, 16, 32, 64, 128];

/// Index granularity: per-SSTable models of a given table size, or one model
/// per level (Bourbon's `LevelModel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// One index per SSTable of roughly this many bytes.
    SstBytes(u64),
    /// One index per level (SSTables keep this size on disk, but lookups go
    /// through a level-grained model).
    Level { sst_bytes: u64 },
}

impl Granularity {
    /// The SSTable size in effect.
    pub fn sst_bytes(&self) -> u64 {
        match *self {
            Granularity::SstBytes(b) => b,
            Granularity::Level { sst_bytes } => sst_bytes,
        }
    }

    /// Whether level-grained models are active.
    pub fn is_level(&self) -> bool {
        matches!(self, Granularity::Level { .. })
    }

    /// Label used in Figure 8 ("8M", "512K", ..., "L").
    pub fn label(&self) -> String {
        match *self {
            Granularity::SstBytes(b) if b >= 1 << 20 => format!("{}M", b >> 20),
            Granularity::SstBytes(b) => format!("{}K", b >> 10),
            Granularity::Level { .. } => "L".to_string(),
        }
    }
}

/// One point in the configuration space, plus the experiment scale.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Index type (first dimension).
    pub index_kind: IndexKind,
    /// Position boundary in entries (second dimension; `2ε`).
    pub position_boundary: usize,
    /// Index granularity (third dimension).
    pub granularity: Granularity,
    /// Key distribution.
    pub dataset: Dataset,
    /// Number of key-value pairs loaded.
    pub num_keys: usize,
    /// Value payload bytes (paper: 1000).
    pub value_width: usize,
    /// Write buffer bytes (paper: 64 MiB for the write experiment).
    pub write_buffer_bytes: usize,
    /// Bloom bits per key (paper: 10).
    pub bloom_bits_per_key: usize,
    /// RNG seed for dataset + workload generation.
    pub seed: u64,
    /// Optional per-level error bounds (see
    /// `lsm_tree::Options::per_level_epsilon`); produced by the
    /// [`crate::BoundaryAllocator`].
    pub per_level_epsilon: Option<Vec<usize>>,
    /// Engine cache budget in bytes (blocks + table handles; 0 = uncached,
    /// the paper's default read path).
    pub block_cache_bytes: usize,
}

impl TestbedConfig {
    /// The paper's full-scale settings: 6.4 M keys × 1000-byte values.
    pub fn paper_scale(kind: IndexKind, boundary: usize, dataset: Dataset) -> Self {
        Self {
            index_kind: kind,
            position_boundary: boundary,
            granularity: Granularity::SstBytes(64 << 20),
            dataset,
            num_keys: 6_400_000,
            value_width: 1000,
            write_buffer_bytes: 64 << 20,
            bloom_bits_per_key: 10,
            seed: DEFAULT_SEED,
            per_level_epsilon: None,
            block_cache_bytes: 0,
        }
    }

    /// Scaled-down settings that preserve every shape: 200 K keys × 100-byte
    /// values, 1 MiB SSTables — the tree still has 3+ levels and the
    /// boundary still spans multiple I/O blocks at its large end.
    pub fn quick(kind: IndexKind, boundary: usize, dataset: Dataset) -> Self {
        Self {
            index_kind: kind,
            position_boundary: boundary,
            granularity: Granularity::SstBytes(1 << 20),
            dataset,
            num_keys: 200_000,
            value_width: 100,
            write_buffer_bytes: 1 << 20,
            bloom_bits_per_key: 10,
            seed: DEFAULT_SEED,
            per_level_epsilon: None,
            block_cache_bytes: 0,
        }
    }

    /// Engine options for this configuration.
    pub fn to_options(&self) -> Options {
        Options {
            write_buffer_bytes: self.write_buffer_bytes,
            sstable_target_bytes: self.granularity.sst_bytes(),
            size_ratio: 10,
            l0_compaction_trigger: 4,
            value_width: self.value_width,
            bloom_bits_per_key: self.bloom_bits_per_key,
            index: IndexChoice::with_boundary(self.index_kind, self.position_boundary),
            max_levels: 8,
            per_level_epsilon: self.per_level_epsilon.clone(),
            block_cache_bytes: self.block_cache_bytes,
            ..Options::default()
        }
    }

    /// Epsilon implied by the position boundary.
    pub fn epsilon(&self) -> usize {
        (self.position_boundary / 2).max(1)
    }
}

/// Default RNG seed shared by the experiment configs.
pub const DEFAULT_SEED: u64 = 0xEDB7_2026;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_builds_options() {
        let c = TestbedConfig::quick(IndexKind::Pgm, 64, Dataset::Random);
        let o = c.to_options();
        assert_eq!(o.index.position_boundary(), 64);
        assert_eq!(o.sstable_target_bytes, 1 << 20);
        assert_eq!(c.epsilon(), 32);
    }

    #[test]
    fn granularity_labels() {
        assert_eq!(Granularity::SstBytes(8 << 20).label(), "8M");
        assert_eq!(Granularity::Level { sst_bytes: 1 }.label(), "L");
        assert!(Granularity::Level { sst_bytes: 1 }.is_level());
    }
}
