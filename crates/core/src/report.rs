//! Measurement records for the experiment harness.
//!
//! Latency accounting: every record separates *measured CPU time* from
//! *modeled I/O time* (the simulated-NVMe charge, see `lsm-io::cost`). The
//! headline latency is their sum — machine-independent, page-cache-immune,
//! calibrated to the paper's hardware via Table 1.

use serde::Serialize;

/// Microseconds helper.
fn us(ns: u64, ops: u64) -> f64 {
    ns as f64 / ops.max(1) as f64 / 1_000.0
}

/// Per-op stage breakdown in microseconds (Table 1 rows).
#[derive(Debug, Clone, Copy, Serialize, Default)]
pub struct StageBreakdownUs {
    pub table_locate: f64,
    pub prediction: f64,
    pub disk_io: f64,
    pub binary_search: f64,
}

/// Point-lookup experiment record (Figures 6, 7, 8, 10, 12; Table 1).
#[derive(Debug, Clone, Serialize)]
pub struct LookupReport {
    pub index: String,
    pub dataset: String,
    pub position_boundary: usize,
    pub granularity: String,
    pub ops: u64,
    /// Headline per-op latency: CPU (measured) + I/O (modeled), µs.
    pub avg_latency_us: f64,
    pub cpu_us_per_op: f64,
    pub sim_io_us_per_op: f64,
    pub blocks_per_op: f64,
    /// Index memory — the x/y axis the paper plots against latency.
    pub index_memory_bytes: u64,
    pub bloom_memory_bytes: u64,
    pub breakdown: StageBreakdownUs,
    /// Reads served per level (Figure 10).
    pub level_reads: Vec<u64>,
    /// Per-level index memory (Figure 10).
    pub level_index_bytes: Vec<u64>,
    /// Per-level entry counts (Figure 10).
    pub level_entries: Vec<u64>,
}

impl LookupReport {
    /// Build from raw counters.
    #[allow(clippy::too_many_arguments)]
    pub fn from_counters(
        index: String,
        dataset: String,
        position_boundary: usize,
        granularity: String,
        ops: u64,
        cpu_ns: u64,
        sim_io_ns: u64,
        blocks: u64,
        index_memory_bytes: u64,
        bloom_memory_bytes: u64,
        stage_ns: (u64, u64, u64, u64),
        level_reads: Vec<u64>,
        level_index_bytes: Vec<u64>,
        level_entries: Vec<u64>,
    ) -> Self {
        let (locate, predict, io_cpu, search) = stage_ns;
        Self {
            index,
            dataset,
            position_boundary,
            granularity,
            ops,
            avg_latency_us: us(cpu_ns + sim_io_ns, ops),
            cpu_us_per_op: us(cpu_ns, ops),
            sim_io_us_per_op: us(sim_io_ns, ops),
            blocks_per_op: blocks as f64 / ops.max(1) as f64,
            index_memory_bytes,
            bloom_memory_bytes,
            breakdown: StageBreakdownUs {
                table_locate: us(locate, ops),
                prediction: us(predict, ops),
                disk_io: us(io_cpu + sim_io_ns, ops),
                binary_search: us(search, ops),
            },
            level_reads,
            level_index_bytes,
            level_entries,
        }
    }

    /// One fixed-width text row (figure regenerators print these).
    pub fn row(&self) -> String {
        format!(
            "{:6} {:10} pb={:4} g={:>3}  lat={:8.2}us  io={:7.2}us  blocks/op={:5.2}  mem={:>12}B",
            self.index,
            self.dataset,
            self.position_boundary,
            self.granularity,
            self.avg_latency_us,
            self.sim_io_us_per_op,
            self.blocks_per_op,
            self.index_memory_bytes,
        )
    }
}

/// Range-lookup record (Figure 11).
#[derive(Debug, Clone, Serialize)]
pub struct RangeReport {
    pub index: String,
    pub dataset: String,
    pub position_boundary: usize,
    pub range_len: usize,
    pub ops: u64,
    pub avg_latency_us: f64,
    pub cpu_us_per_op: f64,
    pub sim_io_us_per_op: f64,
    pub index_memory_bytes: u64,
    pub entries_returned: u64,
}

impl RangeReport {
    /// One fixed-width text row.
    pub fn row(&self) -> String {
        format!(
            "{:6} range={:4} pb={:4}  lat={:9.2}us  mem={:>12}B  entries/op={:6.1}",
            self.index,
            self.range_len,
            self.position_boundary,
            self.avg_latency_us,
            self.index_memory_bytes,
            self.entries_returned as f64 / self.ops.max(1) as f64,
        )
    }
}

/// Write/compaction record (Figure 9).
#[derive(Debug, Clone, Serialize)]
pub struct CompactionReport {
    pub index: String,
    pub position_boundary: usize,
    pub write_ops: u64,
    pub flushes: u64,
    pub compactions: u64,
    /// Wall time of all compactions, ms.
    pub compact_total_ms: f64,
    pub kv_io_ms: f64,
    pub train_ms: f64,
    pub model_write_ms: f64,
    /// Training share of compaction time (paper: <5%, PLEX 10–15%).
    pub train_pct: f64,
    pub model_write_pct: f64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub index_memory_bytes: u64,
    /// Average time per write op, µs (CPU + modeled I/O).
    pub avg_write_us: f64,
}

impl CompactionReport {
    /// One fixed-width text row.
    pub fn row(&self) -> String {
        format!(
            "{:6} pb={:4}  compact={:9.1}ms  learn={:6.1}ms ({:4.1}%)  write-model={:6.1}ms ({:4.1}%)  mem={:>12}B",
            self.index,
            self.position_boundary,
            self.compact_total_ms,
            self.train_ms,
            self.train_pct,
            self.model_write_ms,
            self.model_write_pct,
            self.index_memory_bytes,
        )
    }
}

/// Write a slice of serializable records as pretty JSON.
pub fn to_json<T: Serialize>(records: &[T]) -> String {
    serde_json::to_string_pretty(records).expect("records serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_report_math() {
        let r = LookupReport::from_counters(
            "PGM".into(),
            "random".into(),
            64,
            "64".into(),
            1000,
            2_000_000, // 2 µs CPU total... per 1000 ops = 2ns? no: 2ms/1000 = 2µs/op
            8_000_000, // 8 µs/op modeled
            3000,
            12345,
            678,
            (100_000, 200_000, 1_500_000, 200_000),
            vec![0, 10, 990],
            vec![0, 100, 900],
            vec![0, 1000, 9000],
        );
        assert!((r.avg_latency_us - 10.0).abs() < 1e-9);
        assert!((r.cpu_us_per_op - 2.0).abs() < 1e-9);
        assert!((r.blocks_per_op - 3.0).abs() < 1e-9);
        assert!((r.breakdown.prediction - 0.2).abs() < 1e-9);
        assert!(r.row().contains("PGM"));
    }

    #[test]
    fn json_emission() {
        let r = RangeReport {
            index: "RS".into(),
            dataset: "random".into(),
            position_boundary: 32,
            range_len: 128,
            ops: 10,
            avg_latency_us: 1.5,
            cpu_us_per_op: 0.5,
            sim_io_us_per_op: 1.0,
            index_memory_bytes: 99,
            entries_returned: 1280,
        };
        let s = to_json(&[r]);
        assert!(s.contains("\"range_len\": 128"));
    }
}
