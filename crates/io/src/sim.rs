//! Simulated block device: in-memory contents plus a deterministic cost model.
//!
//! This is the device the benchmark harness runs against. Reads and writes
//! behave exactly like [`crate::MemStorage`] but every call is charged in
//! whole blocks against the storage's [`IoStats`] virtual clock, so an
//! experiment's "I/O time" is a pure function of its access pattern.

use std::io;
use std::sync::Arc;

use crate::mem::{MemFile, MemStorage, MemWriter};
use crate::{CostModel, IoStats, RandomAccessFile, Storage, WritableFile};

/// In-memory storage with block-granular simulated I/O costs.
#[derive(Debug, Default)]
pub struct SimStorage {
    mem: MemStorage,
    model: CostModel,
}

impl SimStorage {
    /// New empty simulated device with the given cost model.
    pub fn new(model: CostModel) -> Self {
        Self {
            mem: MemStorage::new(),
            model,
        }
    }

    /// The cost model in effect.
    pub fn model(&self) -> &CostModel {
        &self.model
    }
}

struct SimFile {
    inner: MemFile,
    model: CostModel,
    stats: IoStats,
}

impl RandomAccessFile for SimFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        // Bypass MemFile's own stats (constructed with a detached sink); we
        // charge block-granular costs here instead.
        let n = self.inner.read_at(offset, buf)?;
        let blocks = self.model.blocks_spanned(offset, n);
        let ns = self.model.read_cost_ns(offset, n);
        self.stats.record_read(n as u64, blocks, ns);
        Ok(n)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

struct SimWriter {
    inner: MemWriter,
    model: CostModel,
    stats: IoStats,
}

impl WritableFile for SimWriter {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let offset = self.inner.written();
        self.inner.append(data)?;
        let blocks = self.model.blocks_spanned(offset, data.len());
        let ns = self.model.write_cost_ns(offset, data.len());
        self.stats.record_write(data.len() as u64, blocks, ns);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()?;
        if self.model.sync_ns > 0 {
            // Realized latency, not just a counted one: block the caller
            // like a real FLUSH would, so commit-queue dynamics (group
            // fusion behind a syncing leader) are physically reproduced.
            // See `CostModel::sync_ns`.
            self.stats.record_sync(self.model.sync_ns);
            std::thread::sleep(std::time::Duration::from_nanos(self.model.sync_ns));
        }
        Ok(())
    }

    fn written(&self) -> u64 {
        self.inner.written()
    }
}

impl Storage for SimStorage {
    fn open_read(&self, name: &str) -> io::Result<Arc<dyn RandomAccessFile>> {
        let data = self.mem.get(name).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no such file: {name}"))
        })?;
        Ok(Arc::new(SimFile {
            inner: MemFile {
                data,
                stats: IoStats::new(),
            },
            model: self.model,
            stats: self.mem.stats().clone(),
        }))
    }

    fn create(&self, name: &str) -> io::Result<Box<dyn WritableFile>> {
        let data = self.mem.insert_empty(name);
        Ok(Box::new(SimWriter {
            inner: MemWriter {
                data,
                stats: IoStats::new(),
                written: 0,
            },
            model: self.model,
            stats: self.mem.stats().clone(),
        }))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.mem.remove(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.mem.exists(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.mem.list()
    }

    fn size_of(&self, name: &str) -> io::Result<u64> {
        self.mem.size_of(name)
    }

    fn stats(&self) -> &IoStats {
        self.mem.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_charges_block_costs() {
        let s = SimStorage::new(CostModel::default());
        let mut w = s.create("f").unwrap();
        w.append(&vec![7u8; 3 * 4096]).unwrap();
        drop(w);
        s.stats().reset();

        let r = s.open_read("f").unwrap();
        let mut buf = [0u8; 100];
        r.read_exact_at(0, &mut buf).unwrap();
        let snap = s.stats().snapshot();
        assert_eq!(snap.read_calls, 1);
        assert_eq!(snap.read_blocks, 1);
        assert_eq!(snap.sim_read_ns, CostModel::default().read_cost_ns(0, 100));

        // A read crossing a block boundary costs two blocks.
        s.stats().reset();
        r.read_exact_at(4090, &mut buf).unwrap();
        assert_eq!(s.stats().snapshot().read_blocks, 2);
    }

    #[test]
    fn sequential_appends_accumulate_write_time() {
        let s = SimStorage::new(CostModel::default());
        let mut w = s.create("f").unwrap();
        for _ in 0..10 {
            w.append(&[0u8; 1000]).unwrap();
        }
        let snap = s.stats().snapshot();
        assert_eq!(snap.write_calls, 10);
        assert_eq!(snap.write_bytes, 10_000);
        assert!(snap.sim_write_ns > 0);
    }

    #[test]
    fn free_model_charges_nothing_but_counts_blocks() {
        let s = SimStorage::new(CostModel::free());
        let mut w = s.create("f").unwrap();
        w.append(&[1u8; 8192]).unwrap();
        drop(w);
        let r = s.open_read("f").unwrap();
        let mut buf = [0u8; 8192];
        r.read_exact_at(0, &mut buf).unwrap();
        let snap = s.stats().snapshot();
        assert_eq!(snap.sim_total_ns(), 0);
        assert_eq!(snap.read_blocks, 2);
    }
}
