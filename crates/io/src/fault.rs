//! Fault-injection storage wrapper for failure testing.
//!
//! Wraps any [`Storage`] and fails I/O operations on command: after a
//! countdown of operations, or on every operation matching a name substring.
//! Used by the engine's failure-injection tests to check that flushes and
//! compactions fail *cleanly* (no torn versions, reads keep working, a retry
//! succeeds once the fault clears).

use std::io;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::{IoStats, RandomAccessFile, Storage, WritableFile};

/// Shared fault control handle.
#[derive(Debug, Default)]
pub struct FaultControl {
    /// Remaining successful *write* operations before failures begin
    /// (negative = unlimited).
    writes_until_failure: AtomicI64,
    /// Fail every operation touching a file whose name contains this.
    poisoned_substring: RwLock<Option<String>>,
    /// Master switch.
    armed: AtomicBool,
}

impl FaultControl {
    /// Allow `n` more write operations, then fail all subsequent ones.
    pub fn fail_writes_after(&self, n: u64) {
        self.writes_until_failure.store(n as i64, Ordering::SeqCst);
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Fail every operation on files whose name contains `pat`.
    pub fn poison(&self, pat: &str) {
        *self.poisoned_substring.write() = Some(pat.to_string());
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Clear all faults.
    pub fn heal(&self) {
        self.armed.store(false, Ordering::SeqCst);
        self.writes_until_failure.store(-1, Ordering::SeqCst);
        *self.poisoned_substring.write() = None;
    }

    fn name_poisoned(&self, name: &str) -> bool {
        self.armed.load(Ordering::SeqCst)
            && self
                .poisoned_substring
                .read()
                .as_deref()
                .is_some_and(|p| name.contains(p))
    }

    fn consume_write_budget(&self) -> bool {
        if !self.armed.load(Ordering::SeqCst) {
            return true;
        }
        let left = self.writes_until_failure.load(Ordering::SeqCst);
        if left < 0 {
            return true;
        }
        self.writes_until_failure
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                (v > 0).then_some(v - 1)
            })
            .is_ok()
    }
}

fn injected() -> io::Error {
    io::Error::other("injected fault")
}

/// Storage wrapper that injects failures per its [`FaultControl`].
pub struct FaultStorage {
    inner: Arc<dyn Storage>,
    control: Arc<FaultControl>,
}

impl FaultStorage {
    /// Wrap `inner`; returns the storage and its control handle.
    pub fn wrap(inner: Arc<dyn Storage>) -> (Arc<FaultStorage>, Arc<FaultControl>) {
        let control = Arc::new(FaultControl::default());
        (
            Arc::new(FaultStorage {
                inner,
                control: Arc::clone(&control),
            }),
            control,
        )
    }
}

struct FaultWriter {
    inner: Box<dyn WritableFile>,
    control: Arc<FaultControl>,
    name: String,
}

impl WritableFile for FaultWriter {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        if self.control.name_poisoned(&self.name) || !self.control.consume_write_budget() {
            return Err(injected());
        }
        self.inner.append(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.control.name_poisoned(&self.name) {
            return Err(injected());
        }
        self.inner.sync()
    }

    fn written(&self) -> u64 {
        self.inner.written()
    }
}

struct FaultFile {
    inner: Arc<dyn RandomAccessFile>,
    control: Arc<FaultControl>,
    name: String,
}

impl RandomAccessFile for FaultFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        if self.control.name_poisoned(&self.name) {
            return Err(injected());
        }
        self.inner.read_at(offset, buf)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

impl Storage for FaultStorage {
    fn open_read(&self, name: &str) -> io::Result<Arc<dyn RandomAccessFile>> {
        if self.control.name_poisoned(name) {
            return Err(injected());
        }
        Ok(Arc::new(FaultFile {
            inner: self.inner.open_read(name)?,
            control: Arc::clone(&self.control),
            name: name.to_string(),
        }))
    }

    fn create(&self, name: &str) -> io::Result<Box<dyn WritableFile>> {
        if self.control.name_poisoned(name) {
            return Err(injected());
        }
        Ok(Box::new(FaultWriter {
            inner: self.inner.create(name)?,
            control: Arc::clone(&self.control),
            name: name.to_string(),
        }))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.inner.remove(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn size_of(&self, name: &str) -> io::Result<u64> {
        self.inner.size_of(name)
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStorage;

    #[test]
    fn write_budget_counts_down() {
        let (s, ctl) = FaultStorage::wrap(Arc::new(MemStorage::new()));
        ctl.fail_writes_after(2);
        let mut w = s.create("f").unwrap();
        w.append(b"1").unwrap();
        w.append(b"2").unwrap();
        assert!(w.append(b"3").is_err(), "third write must fail");
        ctl.heal();
        w.append(b"4").unwrap();
    }

    #[test]
    fn poisoned_files_fail_everything() {
        let (s, ctl) = FaultStorage::wrap(Arc::new(MemStorage::new()));
        s.create("keep").unwrap().append(b"x").unwrap();
        ctl.poison("bad");
        assert!(s.create("bad-file").is_err());
        assert!(s.create("fine").is_ok());
        let r = s.open_read("keep").unwrap();
        let mut b = [0u8; 1];
        r.read_exact_at(0, &mut b).unwrap();
        ctl.heal();
        assert!(s.create("bad-file").is_ok());
    }

    #[test]
    fn unarmed_control_is_transparent() {
        let (s, _ctl) = FaultStorage::wrap(Arc::new(MemStorage::new()));
        let mut w = s.create("f").unwrap();
        for _ in 0..100 {
            w.append(b"data").unwrap();
        }
        assert_eq!(s.size_of("f").unwrap(), 400);
    }
}
