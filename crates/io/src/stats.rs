//! Shared atomic I/O counters.
//!
//! Every [`crate::Storage`] carries an [`IoStats`]; files created from it
//! record their traffic there. Experiments snapshot the counters around a
//! measured region and diff the snapshots, which keeps the counters cheap
//! (relaxed atomics) and the harness allocation-free on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Atomic I/O counters shared by all files of one storage instance.
#[derive(Debug, Default)]
pub struct IoStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    read_calls: AtomicU64,
    read_bytes: AtomicU64,
    read_blocks: AtomicU64,
    write_calls: AtomicU64,
    write_bytes: AtomicU64,
    write_blocks: AtomicU64,
    /// Virtual nanoseconds charged by the cost model for reads.
    sim_read_ns: AtomicU64,
    /// Virtual nanoseconds charged by the cost model for writes.
    sim_write_ns: AtomicU64,
}

impl Clone for IoStats {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl IoStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read call of `bytes` bytes spanning `blocks` blocks with
    /// `sim_ns` modeled nanoseconds.
    pub fn record_read(&self, bytes: u64, blocks: u64, sim_ns: u64) {
        let c = &*self.inner;
        c.read_calls.fetch_add(1, Ordering::Relaxed);
        c.read_bytes.fetch_add(bytes, Ordering::Relaxed);
        c.read_blocks.fetch_add(blocks, Ordering::Relaxed);
        c.sim_read_ns.fetch_add(sim_ns, Ordering::Relaxed);
    }

    /// Record a write call.
    pub fn record_write(&self, bytes: u64, blocks: u64, sim_ns: u64) {
        let c = &*self.inner;
        c.write_calls.fetch_add(1, Ordering::Relaxed);
        c.write_bytes.fetch_add(bytes, Ordering::Relaxed);
        c.write_blocks.fetch_add(blocks, Ordering::Relaxed);
        c.sim_write_ns.fetch_add(sim_ns, Ordering::Relaxed);
    }

    /// Record a `sync` call with `sim_ns` modeled nanoseconds. Charged to
    /// the write clock; moves no bytes and counts no write call.
    pub fn record_sync(&self, sim_ns: u64) {
        self.inner.sim_write_ns.fetch_add(sim_ns, Ordering::Relaxed);
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        let c = &*self.inner;
        IoStatsSnapshot {
            read_calls: c.read_calls.load(Ordering::Relaxed),
            read_bytes: c.read_bytes.load(Ordering::Relaxed),
            read_blocks: c.read_blocks.load(Ordering::Relaxed),
            write_calls: c.write_calls.load(Ordering::Relaxed),
            write_bytes: c.write_bytes.load(Ordering::Relaxed),
            write_blocks: c.write_blocks.load(Ordering::Relaxed),
            sim_read_ns: c.sim_read_ns.load(Ordering::Relaxed),
            sim_write_ns: c.sim_write_ns.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        let c = &*self.inner;
        c.read_calls.store(0, Ordering::Relaxed);
        c.read_bytes.store(0, Ordering::Relaxed);
        c.read_blocks.store(0, Ordering::Relaxed);
        c.write_calls.store(0, Ordering::Relaxed);
        c.write_bytes.store(0, Ordering::Relaxed);
        c.write_blocks.store(0, Ordering::Relaxed);
        c.sim_read_ns.store(0, Ordering::Relaxed);
        c.sim_write_ns.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`] counters; subtract two to get the
/// traffic of a measured region.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    pub read_calls: u64,
    pub read_bytes: u64,
    pub read_blocks: u64,
    pub write_calls: u64,
    pub write_bytes: u64,
    pub write_blocks: u64,
    pub sim_read_ns: u64,
    pub sim_write_ns: u64,
}

impl IoStatsSnapshot {
    /// Counter deltas since `earlier` (saturating, so a reset in between
    /// yields zeros rather than wrapping).
    pub fn since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_calls: self.read_calls.saturating_sub(earlier.read_calls),
            read_bytes: self.read_bytes.saturating_sub(earlier.read_bytes),
            read_blocks: self.read_blocks.saturating_sub(earlier.read_blocks),
            write_calls: self.write_calls.saturating_sub(earlier.write_calls),
            write_bytes: self.write_bytes.saturating_sub(earlier.write_bytes),
            write_blocks: self.write_blocks.saturating_sub(earlier.write_blocks),
            sim_read_ns: self.sim_read_ns.saturating_sub(earlier.sim_read_ns),
            sim_write_ns: self.sim_write_ns.saturating_sub(earlier.sim_write_ns),
        }
    }

    /// Total modeled I/O nanoseconds (reads + writes).
    pub fn sim_total_ns(&self) -> u64 {
        self.sim_read_ns + self.sim_write_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = IoStats::new();
        s.record_read(100, 1, 2000);
        s.record_read(8192, 2, 2600);
        s.record_write(50, 1, 650);
        let snap = s.snapshot();
        assert_eq!(snap.read_calls, 2);
        assert_eq!(snap.read_bytes, 8292);
        assert_eq!(snap.read_blocks, 3);
        assert_eq!(snap.write_calls, 1);
        assert_eq!(snap.sim_read_ns, 4600);
        assert_eq!(snap.sim_write_ns, 650);
        assert_eq!(snap.sim_total_ns(), 5250);
    }

    #[test]
    fn clones_share_counters() {
        let a = IoStats::new();
        let b = a.clone();
        b.record_read(1, 1, 1);
        assert_eq!(a.snapshot().read_calls, 1);
    }

    #[test]
    fn since_diffs() {
        let s = IoStats::new();
        s.record_read(10, 1, 100);
        let before = s.snapshot();
        s.record_read(20, 2, 200);
        let after = s.snapshot();
        let d = after.since(&before);
        assert_eq!(d.read_calls, 1);
        assert_eq!(d.read_bytes, 20);
        assert_eq!(d.read_blocks, 2);
        assert_eq!(d.sim_read_ns, 200);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.record_write(10, 1, 10);
        s.reset();
        assert_eq!(s.snapshot(), IoStatsSnapshot::default());
    }
}
