//! Deterministic crash-point storage for recovery testing.
//!
//! [`CrashStorage`] wraps an in-memory file store and **halts the world**
//! after a configurable number of mutating storage operations: the N-th
//! and every later `create`/`append`/`sync`/`remove` fails with a
//! "simulated crash" error, so the byte image freezes at an exact,
//! reproducible operation boundary. [`CrashStorage::image`] then yields a
//! deep copy of that frozen state — exactly what a real crash would leave
//! on disk — which a test reopens as a fresh database, any number of
//! times (including re-crashing the recovery itself via
//! [`CrashStorage::over`]).
//!
//! This generalizes [`crate::FaultStorage`]: where the fault wrapper
//! injects *recoverable* errors (a budget of writes, a poisoned name) to
//! test clean failure paths, the crash storage models *termination* — no
//! operation succeeds after the crash point, and recovery only ever sees
//! the image. Because the index is an exact operation count rather than a
//! byte budget spread across unrelated files, a test can enumerate every
//! crash point of a protocol (`for n in 0..=total_ops`) instead of
//! sampling, and two runs of the same deterministic workload crash at the
//! same place — which is what lets the WAL stay enabled in
//! failure-injection tests.
//!
//! Reads are never failed: they cannot change the image, and the
//! in-process engine is expected to keep serving whatever it has in
//! memory until the test discards it (matching a kernel that still runs
//! while its disk went away).

use std::io;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use crate::{IoStats, MemStorage, RandomAccessFile, Storage, WritableFile};

/// Shared crash-point control handle.
#[derive(Debug)]
pub struct CrashControl {
    /// Mutating operations performed so far.
    ops: AtomicU64,
    /// Mutating operations allowed before the world halts (negative =
    /// disarmed, never crash).
    limit: AtomicI64,
    /// Set once the first operation has been refused.
    crashed: AtomicBool,
}

impl Default for CrashControl {
    fn default() -> Self {
        Self {
            ops: AtomicU64::new(0),
            limit: AtomicI64::new(-1),
            crashed: AtomicBool::new(false),
        }
    }
}

impl CrashControl {
    /// Halt the world after `n` *further* successful mutating operations
    /// past the current count: the `n+1`-th fails, and every one after it.
    /// `crash_after(0)` halts immediately.
    pub fn crash_after(&self, n: u64) {
        let at = self.ops.load(Ordering::SeqCst) + n;
        self.limit.store(at as i64, Ordering::SeqCst);
    }

    /// Disarm the crash point; operations succeed again ("the device came
    /// back") — used by ported fault-injection tests to model
    /// fail-then-heal with a deterministic failure index.
    pub fn disarm(&self) {
        self.limit.store(-1, Ordering::SeqCst);
        self.crashed.store(false, Ordering::SeqCst);
    }

    /// Mutating operations performed so far (the crash-point coordinate
    /// system: `crash_after(k)` halts at coordinate `ops() + k`).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Whether any operation has been refused since the last arm/disarm.
    pub fn has_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Count one mutating operation, failing it if the world has halted.
    /// Check-and-increment is a single CAS so concurrent writers can never
    /// slip an operation past the limit.
    fn tick(&self) -> io::Result<()> {
        let limit = self.limit.load(Ordering::SeqCst);
        let allowed = self
            .ops
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |ops| {
                (limit < 0 || ops < limit as u64).then_some(ops + 1)
            })
            .is_ok();
        if !allowed {
            self.crashed.store(true, Ordering::SeqCst);
            return Err(io::Error::other("simulated crash: storage halted"));
        }
        Ok(())
    }
}

/// In-memory storage that halts at an exact mutating-operation index.
pub struct CrashStorage {
    inner: MemStorage,
    control: Arc<CrashControl>,
}

impl CrashStorage {
    /// A fresh, empty crash-point store and its control handle.
    pub fn new() -> (Arc<CrashStorage>, Arc<CrashControl>) {
        Self::over(MemStorage::new())
    }

    /// A crash-point store over an existing byte image (e.g. one produced
    /// by [`CrashStorage::image`]) — this is how a test crashes the
    /// *recovery* of an earlier crash.
    pub fn over(image: MemStorage) -> (Arc<CrashStorage>, Arc<CrashControl>) {
        let control = Arc::new(CrashControl::default());
        (
            Arc::new(CrashStorage {
                inner: image,
                control: Arc::clone(&control),
            }),
            control,
        )
    }

    /// The control handle (also returned by the constructors).
    pub fn control(&self) -> &Arc<CrashControl> {
        &self.control
    }

    /// A deep copy of the current byte image — what the "disk" holds at
    /// this instant. After a crash the image is frozen (every mutation
    /// fails), so repeated calls return identical contents.
    pub fn image(&self) -> MemStorage {
        self.inner.deep_clone()
    }
}

/// Append side: every `append`/`sync` is one mutating operation.
struct CrashWriter {
    inner: Box<dyn WritableFile>,
    control: Arc<CrashControl>,
}

impl WritableFile for CrashWriter {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.control.tick()?;
        self.inner.append(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.control.tick()?;
        self.inner.sync()
    }

    fn written(&self) -> u64 {
        self.inner.written()
    }
}

impl Storage for CrashStorage {
    fn open_read(&self, name: &str) -> io::Result<Arc<dyn RandomAccessFile>> {
        self.inner.open_read(name)
    }

    fn create(&self, name: &str) -> io::Result<Box<dyn WritableFile>> {
        self.control.tick()?;
        Ok(Box::new(CrashWriter {
            inner: self.inner.create(name)?,
            control: Arc::clone(&self.control),
        }))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.control.tick()?;
        self.inner.remove(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn size_of(&self, name: &str) -> io::Result<u64> {
        self.inner.size_of(name)
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_halts_at_the_exact_op_index() {
        let (s, ctl) = CrashStorage::new();
        let mut w = s.create("f").unwrap(); // op 0
        w.append(b"one").unwrap(); // op 1
        ctl.crash_after(1);
        w.append(b"two").unwrap(); // op 2: last allowed
        assert!(w.append(b"three").is_err(), "world halted");
        assert!(w.sync().is_err(), "stays halted");
        assert!(s.create("g").is_err());
        assert!(s.remove("f").is_err());
        assert!(ctl.has_crashed());
        assert_eq!(ctl.ops(), 3);
        // The image froze with exactly the surviving bytes.
        assert_eq!(crate::read_all(&s.image(), "f").unwrap(), b"onetwo");
    }

    #[test]
    fn reads_survive_the_crash() {
        let (s, ctl) = CrashStorage::new();
        s.create("f").unwrap().append(b"data").unwrap();
        ctl.crash_after(0);
        let r = s.open_read("f").unwrap();
        let mut buf = [0u8; 4];
        r.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"data");
        assert!(s.exists("f"));
        assert_eq!(s.size_of("f").unwrap(), 4);
    }

    #[test]
    fn image_is_deep_and_repeatable() {
        let (s, ctl) = CrashStorage::new();
        s.create("f").unwrap().append(b"abc").unwrap();
        ctl.crash_after(0);
        let img1 = s.image();
        let img2 = s.image();
        // Mutating one image touches neither the other nor the source.
        img1.create("f").unwrap().append(b"zzzz").unwrap();
        assert_eq!(crate::read_all(&img2, "f").unwrap(), b"abc");
        assert_eq!(crate::read_all(&s.image(), "f").unwrap(), b"abc");
    }

    #[test]
    fn over_an_image_recrashes_recovery() {
        let (s, ctl) = CrashStorage::new();
        s.create("f").unwrap().append(b"v1").unwrap();
        ctl.crash_after(0);
        let (s2, ctl2) = CrashStorage::over(s.image());
        ctl2.crash_after(1);
        let mut w = s2.create("g").unwrap(); // allowed
        assert!(w.append(b"x").is_err(), "second crash");
        assert_eq!(crate::read_all(&s2.image(), "f").unwrap(), b"v1");
    }

    #[test]
    fn disarm_resumes_the_world() {
        let (s, ctl) = CrashStorage::new();
        let mut w = s.create("f").unwrap();
        ctl.crash_after(0);
        assert!(w.append(b"x").is_err());
        ctl.disarm();
        assert!(!ctl.has_crashed());
        w.append(b"y").unwrap();
        assert_eq!(s.size_of("f").unwrap(), 1);
    }
}
