//! Real-filesystem storage backed by `pread`/buffered appends.
//!
//! This is the backend to use when running the testbed against an actual
//! disk, mirroring the paper's use of the Linux `pread` interface. Counters
//! are still recorded (block counts use [`crate::DEFAULT_BLOCK_SIZE`]) but no
//! virtual time is charged — wall-clock time is the real thing here.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::{CostModel, IoStats, RandomAccessFile, Storage, WritableFile};

/// Named-file storage rooted at a directory on the local filesystem.
#[derive(Debug)]
pub struct FileStorage {
    root: PathBuf,
    stats: IoStats,
    model: CostModel,
}

impl FileStorage {
    /// Open (creating if needed) a storage rooted at `root`.
    pub fn new(root: impl AsRef<Path>) -> io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            stats: IoStats::new(),
            model: CostModel::free(),
        })
    }

    /// Root directory of this storage.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

struct OsFile {
    file: File,
    len: u64,
    stats: IoStats,
    model: CostModel,
}

impl RandomAccessFile for OsFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        #[cfg(unix)]
        let n = {
            use std::os::unix::fs::FileExt;
            // pread loop: FileExt::read_at may return short reads mid-file.
            let mut done = 0;
            while done < buf.len() {
                match self.file.read_at(&mut buf[done..], offset + done as u64) {
                    Ok(0) => break,
                    Ok(k) => done += k,
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            done
        };
        #[cfg(not(unix))]
        let n = {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = self.file.try_clone()?;
            f.seek(SeekFrom::Start(offset))?;
            f.read(buf)?
        };
        let blocks = self.model.blocks_spanned(offset, n);
        self.stats.record_read(n as u64, blocks, 0);
        Ok(n)
    }

    fn len(&self) -> u64 {
        self.len
    }
}

struct OsWriter {
    writer: BufWriter<File>,
    written: u64,
    stats: IoStats,
    model: CostModel,
}

impl WritableFile for OsWriter {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.writer.write_all(data)?;
        let blocks = self.model.blocks_spanned(self.written, data.len());
        self.written += data.len() as u64;
        self.stats.record_write(data.len() as u64, blocks, 0);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()
    }

    fn written(&self) -> u64 {
        self.written
    }
}

impl Drop for OsWriter {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

impl Storage for FileStorage {
    fn open_read(&self, name: &str) -> io::Result<Arc<dyn RandomAccessFile>> {
        let file = File::open(self.path(name))?;
        let len = file.metadata()?.len();
        Ok(Arc::new(OsFile {
            file,
            len,
            stats: self.stats.clone(),
            model: self.model,
        }))
    }

    fn create(&self, name: &str) -> io::Result<Box<dyn WritableFile>> {
        let path = self.path(name);
        // Directory-style names ("shard-0/000001.wal", as produced by
        // `PrefixedStorage`) map onto real subdirectories.
        if let Some(parent) = path.parent() {
            if parent != self.root {
                fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(OsWriter {
            writer: BufWriter::with_capacity(1 << 20, file),
            written: 0,
            stats: self.stats.clone(),
            model: self.model,
        }))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        fs::remove_file(self.path(name))
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    fn list(&self) -> io::Result<Vec<String>> {
        // Recursive: nested names are reported relative to the root with
        // `/` separators, matching what `create` accepted.
        fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
            for entry in fs::read_dir(dir)? {
                let entry = entry?;
                let ty = entry.file_type()?;
                if ty.is_dir() {
                    walk(root, &entry.path(), out)?;
                } else if ty.is_file() {
                    if let Ok(rel) = entry.path().strip_prefix(root) {
                        if let Some(name) = rel.to_str() {
                            out.push(name.replace(std::path::MAIN_SEPARATOR, "/"));
                        }
                    }
                }
            }
            Ok(())
        }
        let mut out = Vec::new();
        walk(&self.root, &self.root, &mut out)?;
        Ok(out)
    }

    fn size_of(&self, name: &str) -> io::Result<u64> {
        Ok(fs::metadata(self.path(name))?.len())
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_visible_after_drop() {
        let dir = tempfile::tempdir().unwrap();
        let s = FileStorage::new(dir.path()).unwrap();
        {
            let mut w = s.create("t").unwrap();
            w.append(b"0123456789").unwrap();
        }
        let r = s.open_read("t").unwrap();
        assert_eq!(r.len(), 10);
        let mut buf = [0u8; 4];
        r.read_exact_at(3, &mut buf).unwrap();
        assert_eq!(&buf, b"3456");
    }

    #[test]
    fn list_recurses_into_subdirectories() {
        let dir = tempfile::tempdir().unwrap();
        let s = FileStorage::new(dir.path()).unwrap();
        fs::create_dir(dir.path().join("empty-subdir")).unwrap();
        s.create("x").unwrap().append(b"1").unwrap();
        s.create("shard-0/wal").unwrap().append(b"2").unwrap();
        let mut names = s.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["shard-0/wal".to_string(), "x".to_string()]);
    }

    #[test]
    fn directory_style_names_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let s = FileStorage::new(dir.path()).unwrap();
        s.create("a/b/f").unwrap().append(b"nested").unwrap();
        assert!(s.exists("a/b/f"));
        assert_eq!(s.size_of("a/b/f").unwrap(), 6);
        let r = s.open_read("a/b/f").unwrap();
        let mut buf = [0u8; 6];
        r.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"nested");
        s.remove("a/b/f").unwrap();
        assert!(!s.exists("a/b/f"));
    }

    #[test]
    fn nested_root_created() {
        let dir = tempfile::tempdir().unwrap();
        let nested = dir.path().join("a/b/c");
        let s = FileStorage::new(&nested).unwrap();
        assert!(nested.exists());
        assert_eq!(s.root(), nested.as_path());
    }
}
