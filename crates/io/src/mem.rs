//! Plain in-memory storage. No cost model — used for fast unit tests and as
//! the byte store underlying [`crate::SimStorage`].

use std::collections::HashMap;
use std::io;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::{IoStats, RandomAccessFile, Storage, WritableFile};

type FileMap = HashMap<String, Arc<RwLock<Vec<u8>>>>;

/// An in-memory named-file store.
#[derive(Debug, Default)]
pub struct MemStorage {
    files: RwLock<FileMap>,
    stats: IoStats,
}

impl MemStorage {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn get(&self, name: &str) -> Option<Arc<RwLock<Vec<u8>>>> {
        self.files.read().get(name).cloned()
    }

    /// A deep copy of every file's current contents — a point-in-time disk
    /// image. The crash-point harness ([`crate::CrashStorage`]) hands these
    /// out so a test can "reopen the machine" from the exact bytes a halted
    /// world left behind, as many times as it likes.
    pub fn deep_clone(&self) -> MemStorage {
        let out = MemStorage::new();
        let mut files = out.files.write();
        for (name, data) in self.files.read().iter() {
            files.insert(name.clone(), Arc::new(RwLock::new(data.read().clone())));
        }
        drop(files);
        out
    }

    pub(crate) fn insert_empty(&self, name: &str) -> Arc<RwLock<Vec<u8>>> {
        let buf = Arc::new(RwLock::new(Vec::new()));
        self.files
            .write()
            .insert(name.to_string(), Arc::clone(&buf));
        buf
    }

    fn not_found(name: &str) -> io::Error {
        io::Error::new(io::ErrorKind::NotFound, format!("no such file: {name}"))
    }
}

/// Read side of an in-memory file.
pub(crate) struct MemFile {
    pub(crate) data: Arc<RwLock<Vec<u8>>>,
    pub(crate) stats: IoStats,
}

impl RandomAccessFile for MemFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let data = self.data.read();
        let off = offset as usize;
        if off >= data.len() {
            return Ok(0);
        }
        let n = buf.len().min(data.len() - off);
        buf[..n].copy_from_slice(&data[off..off + n]);
        self.stats.record_read(n as u64, 0, 0);
        Ok(n)
    }

    fn len(&self) -> u64 {
        self.data.read().len() as u64
    }
}

/// Append side of an in-memory file.
pub(crate) struct MemWriter {
    pub(crate) data: Arc<RwLock<Vec<u8>>>,
    pub(crate) stats: IoStats,
    pub(crate) written: u64,
}

impl WritableFile for MemWriter {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let mut buf = self.data.write();
        // Reserve with 50% headroom so the growth memcpy happens during the
        // large data-section appends, not during a later tiny append (which
        // would attribute the realloc cost to whatever small write followed —
        // e.g. an index model — and distort stage timings).
        let need = buf.len() + data.len();
        if buf.capacity() < need {
            buf.reserve(data.len() + need / 2);
        }
        buf.extend_from_slice(data);
        drop(buf);
        self.written += data.len() as u64;
        self.stats.record_write(data.len() as u64, 0, 0);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn written(&self) -> u64 {
        self.written
    }
}

impl Storage for MemStorage {
    fn open_read(&self, name: &str) -> io::Result<Arc<dyn RandomAccessFile>> {
        let data = self.get(name).ok_or_else(|| Self::not_found(name))?;
        Ok(Arc::new(MemFile {
            data,
            stats: self.stats.clone(),
        }))
    }

    fn create(&self, name: &str) -> io::Result<Box<dyn WritableFile>> {
        let data = self.insert_empty(name);
        Ok(Box::new(MemWriter {
            data,
            stats: self.stats.clone(),
            written: 0,
        }))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.files
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Self::not_found(name))
    }

    fn exists(&self, name: &str) -> bool {
        self.files.read().contains_key(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.files.read().keys().cloned().collect())
    }

    fn size_of(&self, name: &str) -> io::Result<u64> {
        self.get(name)
            .map(|d| d.read().len() as u64)
            .ok_or_else(|| Self::not_found(name))
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_truncates() {
        let s = MemStorage::new();
        s.create("f").unwrap().append(b"aaaa").unwrap();
        let w = s.create("f").unwrap();
        assert_eq!(w.written(), 0);
        assert_eq!(s.size_of("f").unwrap(), 0);
    }

    #[test]
    fn reader_sees_writes_through_shared_buffer() {
        let s = MemStorage::new();
        let mut w = s.create("f").unwrap();
        w.append(b"abc").unwrap();
        let r = s.open_read("f").unwrap();
        w.append(b"def").unwrap();
        assert_eq!(r.len(), 6);
        let mut buf = [0u8; 6];
        r.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn bytes_counted_in_stats() {
        let s = MemStorage::new();
        s.create("f").unwrap().append(&[0u8; 100]).unwrap();
        let r = s.open_read("f").unwrap();
        let mut buf = [0u8; 40];
        r.read_exact_at(0, &mut buf).unwrap();
        let snap = s.stats().snapshot();
        assert_eq!(snap.write_bytes, 100);
        assert_eq!(snap.read_bytes, 40);
    }
}
