//! Storage abstraction layer for the learned-LSM testbed.
//!
//! The paper's experiments run against a 2 TB NVMe SSD through `pread`. To
//! make the reproduction deterministic and machine-independent we model the
//! device instead of requiring the hardware: every experiment runs against a
//! [`Storage`] implementation, and three are provided:
//!
//! * [`FileStorage`] — real files on a local filesystem (functional parity,
//!   used by integration tests and anyone who wants to run on a real disk).
//! * [`MemStorage`] — plain in-memory files (fast unit tests).
//! * [`SimStorage`] — in-memory files plus a *deterministic I/O cost model*:
//!   each read/write is charged in 4096-byte blocks against a virtual clock,
//!   calibrated so that one random block read costs ~2.1 µs, matching Table 1
//!   of the paper ("Disk I/O 2.10–2.16 us/op"). All experiments report
//!   `cpu time (measured) + I/O time (modeled)`, which reproduces the paper's
//!   latency *shapes* exactly and is immune to page-cache noise.
//!
//! The traits intentionally mirror LevelDB's `Env`/`RandomAccessFile`/
//! `WritableFile` split because the testbed is a LevelDB-style system.

pub mod cost;
pub mod crash;
pub mod fault;
pub mod file;
pub mod mem;
pub mod prefix;
pub mod sim;
pub mod stats;

use std::io;
use std::sync::Arc;

pub use cost::{CostModel, DEFAULT_BLOCK_SIZE};
pub use crash::{CrashControl, CrashStorage};
pub use fault::{FaultControl, FaultStorage};
pub use file::FileStorage;
pub use mem::MemStorage;
pub use prefix::PrefixedStorage;
pub use sim::SimStorage;
pub use stats::{IoStats, IoStatsSnapshot};

/// A file that supports positional reads (`pread` semantics).
///
/// Implementations must be safe to share across threads; the LSM engine reads
/// SSTables concurrently from lookups and compactions.
pub trait RandomAccessFile: Send + Sync {
    /// Read up to `buf.len()` bytes starting at `offset`, returning the number
    /// of bytes read. Short reads only happen at end-of-file.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize>;

    /// Total length of the file in bytes.
    fn len(&self) -> u64;

    /// Whether the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read exactly `buf.len()` bytes at `offset`, failing on EOF.
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let n = self.read_at(offset, buf)?;
        if n != buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "short read: wanted {} bytes at offset {offset}, got {n}",
                    buf.len()
                ),
            ));
        }
        Ok(())
    }
}

/// An append-only output file, as produced by flushes and compactions.
pub trait WritableFile: Send + Sync {
    /// Append `data` to the end of the file.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;

    /// Flush buffered data to the underlying medium.
    fn sync(&mut self) -> io::Result<()>;

    /// Number of bytes appended so far.
    fn written(&self) -> u64;
}

/// A named-file store: the minimal `Env` surface the LSM engine needs.
pub trait Storage: Send + Sync {
    /// Open an existing file for positional reads.
    fn open_read(&self, name: &str) -> io::Result<Arc<dyn RandomAccessFile>>;

    /// Create (or truncate) a file for appending.
    fn create(&self, name: &str) -> io::Result<Box<dyn WritableFile>>;

    /// Delete a file. Deleting a missing file is an error.
    fn remove(&self, name: &str) -> io::Result<()>;

    /// Whether a file with this name exists.
    fn exists(&self, name: &str) -> bool;

    /// List all file names in the store, in unspecified order.
    fn list(&self) -> io::Result<Vec<String>>;

    /// Size of the named file in bytes.
    fn size_of(&self, name: &str) -> io::Result<u64>;

    /// The I/O statistics sink shared by all files of this storage.
    fn stats(&self) -> &IoStats;
}

/// Convenience: read a whole file into memory.
pub fn read_all(storage: &dyn Storage, name: &str) -> io::Result<Vec<u8>> {
    let f = storage.open_read(name)?;
    let mut buf = vec![0u8; f.len() as usize];
    f.read_exact_at(0, &mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_storage(s: &dyn Storage) {
        assert!(!s.exists("a"));
        {
            let mut w = s.create("a").unwrap();
            w.append(b"hello ").unwrap();
            w.append(b"world").unwrap();
            assert_eq!(w.written(), 11);
            w.sync().unwrap();
        }
        assert!(s.exists("a"));
        assert_eq!(s.size_of("a").unwrap(), 11);

        let r = s.open_read("a").unwrap();
        assert_eq!(r.len(), 11);
        let mut buf = [0u8; 5];
        r.read_exact_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");

        // Short read at EOF.
        let mut big = [0u8; 32];
        let n = r.read_at(6, &mut big).unwrap();
        assert_eq!(n, 5);

        // read_exact past EOF errors.
        let mut big = [0u8; 32];
        assert!(r.read_exact_at(6, &mut big).is_err());

        let listed = s.list().unwrap();
        assert!(listed.contains(&"a".to_string()));

        s.remove("a").unwrap();
        assert!(!s.exists("a"));
        assert!(s.remove("a").is_err());
        assert!(s.open_read("a").is_err());
    }

    #[test]
    fn mem_storage_contract() {
        exercise_storage(&MemStorage::new());
    }

    #[test]
    fn sim_storage_contract() {
        exercise_storage(&SimStorage::new(CostModel::default()));
    }

    #[test]
    fn file_storage_contract() {
        let dir = tempfile::tempdir().unwrap();
        exercise_storage(&FileStorage::new(dir.path()).unwrap());
    }

    #[test]
    fn read_all_roundtrip() {
        let s = MemStorage::new();
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut w = s.create("blob").unwrap();
        w.append(&payload).unwrap();
        drop(w);
        assert_eq!(read_all(&s, "blob").unwrap(), payload);
    }
}
