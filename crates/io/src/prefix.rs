//! A prefixed view of another storage: the "subdirectory" primitive.
//!
//! [`Storage`] is a flat namespace, so multi-instance deployments (one
//! engine per shard on one device) carve it into per-instance directories
//! by name prefix: a [`PrefixedStorage`] with prefix `shard-3/` maps every
//! file name `f` it is asked for onto `shard-3/f` in the underlying store
//! and shows only that subtree in [`Storage::list`]. Each shard therefore
//! keeps a fully independent `MANIFEST` + WAL set — crash recovery of one
//! shard never reads another's files — while all shards share one device
//! and one [`IoStats`] sink.

use std::io;
use std::sync::Arc;

use crate::{IoStats, RandomAccessFile, Storage, WritableFile};

/// A view of `inner` restricted to names under `prefix`.
pub struct PrefixedStorage {
    inner: Arc<dyn Storage>,
    prefix: String,
}

impl PrefixedStorage {
    /// View of `inner` under `prefix` (conventionally ending in `/`).
    pub fn new(inner: Arc<dyn Storage>, prefix: impl Into<String>) -> Self {
        Self {
            inner,
            prefix: prefix.into(),
        }
    }

    /// The prefix this view prepends.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    fn full(&self, name: &str) -> String {
        format!("{}{name}", self.prefix)
    }
}

impl Storage for PrefixedStorage {
    fn open_read(&self, name: &str) -> io::Result<Arc<dyn RandomAccessFile>> {
        self.inner.open_read(&self.full(name))
    }

    fn create(&self, name: &str) -> io::Result<Box<dyn WritableFile>> {
        self.inner.create(&self.full(name))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.inner.remove(&self.full(name))
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(&self.full(name))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self
            .inner
            .list()?
            .into_iter()
            .filter_map(|n| n.strip_prefix(&self.prefix).map(str::to_string))
            .collect())
    }

    fn size_of(&self, name: &str) -> io::Result<u64> {
        self.inner.size_of(&self.full(name))
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStorage;

    #[test]
    fn views_are_disjoint_namespaces() {
        let base: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let a = PrefixedStorage::new(Arc::clone(&base), "a/");
        let b = PrefixedStorage::new(Arc::clone(&base), "b/");
        a.create("f").unwrap().append(b"from-a").unwrap();
        b.create("f").unwrap().append(b"from-b!").unwrap();

        assert_eq!(a.size_of("f").unwrap(), 6);
        assert_eq!(b.size_of("f").unwrap(), 7);
        assert_eq!(a.list().unwrap(), vec!["f".to_string()]);
        assert_eq!(b.list().unwrap(), vec!["f".to_string()]);
        // The underlying store sees both, under their full names.
        let mut all = base.list().unwrap();
        all.sort();
        assert_eq!(all, vec!["a/f".to_string(), "b/f".to_string()]);

        a.remove("f").unwrap();
        assert!(!a.exists("f"));
        assert!(b.exists("f"), "removing a/f must not touch b/f");
    }

    #[test]
    fn read_write_roundtrip_through_view() {
        let base: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let v = PrefixedStorage::new(Arc::clone(&base), "shard-0/");
        v.create("wal").unwrap().append(b"payload").unwrap();
        let r = v.open_read("wal").unwrap();
        let mut buf = [0u8; 7];
        r.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"payload");
        assert_eq!(v.prefix(), "shard-0/");
        assert!(v.open_read("missing").is_err());
    }
}
