//! Deterministic I/O cost model for the simulated NVMe device.
//!
//! The paper's testbed machine uses a 2 TB NVMe SSD; Table 1 reports a point
//! lookup spends 2.10–2.16 µs in "Disk I/O" when the position boundary is 10
//! entries (i.e. the lookup touches one or two 4096-byte blocks). We charge
//! every access in block units against a virtual clock so that experiments are
//! reproducible on any machine and unaffected by the OS page cache.

/// Default I/O block size in bytes (Linux `pread` granularity used by the
/// paper, and LevelDB's default data-block size).
pub const DEFAULT_BLOCK_SIZE: usize = 4096;

/// Cost model parameters for the simulated device.
///
/// The defaults are calibrated against Table 1 of the paper: a single-block
/// random read costs `read_base_ns + read_block_ns ≈ 2.1 µs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// I/O transfer granularity in bytes. Reads are rounded up to whole blocks.
    pub block_size: usize,
    /// Fixed per-read-call overhead (submission + completion), nanoseconds.
    pub read_base_ns: u64,
    /// Added cost for each block transferred by a read, nanoseconds.
    pub read_block_ns: u64,
    /// Fixed per-write-call overhead, nanoseconds.
    pub write_base_ns: u64,
    /// Added cost per block written, nanoseconds. Sequential writes are
    /// cheaper than random reads on NVMe.
    pub write_block_ns: u64,
    /// Flush (`sync`) latency, nanoseconds. Unlike the counted read/write
    /// costs above, this one is **realized**: [`crate::SimStorage`] actually
    /// sleeps the calling thread for this long on every `sync`, because the
    /// interesting behaviour of a durable commit path — writers piling into
    /// the commit queue while the leader is stuck in `fsync`, letting the
    /// next leader fuse them into one record — only emerges when the leader
    /// is genuinely blocked. `0` (the default) keeps `sync` free and
    /// instant, preserving the pre-existing pure-virtual-clock behaviour.
    pub sync_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            block_size: DEFAULT_BLOCK_SIZE,
            read_base_ns: 1500,
            read_block_ns: 600,
            write_base_ns: 400,
            write_block_ns: 250,
            sync_ns: 0,
        }
    }
}

impl CostModel {
    /// A cost model that charges nothing — turns a [`crate::SimStorage`] into
    /// a counting-only [`crate::MemStorage`].
    pub fn free() -> Self {
        Self {
            block_size: DEFAULT_BLOCK_SIZE,
            read_base_ns: 0,
            read_block_ns: 0,
            write_base_ns: 0,
            write_block_ns: 0,
            sync_ns: 0,
        }
    }

    /// The default model plus a realized flush latency of `sync_ns`
    /// nanoseconds per `sync` call — loosely an NVMe FLUSH (tens of µs).
    /// See [`CostModel::sync_ns`] for why this one actually sleeps.
    pub fn with_sync_latency(sync_ns: u64) -> Self {
        Self {
            sync_ns,
            ..Self::default()
        }
    }

    /// Number of blocks touched by an access of `len` bytes starting at
    /// `offset` (block-aligned span, so an unaligned 10-byte read crossing a
    /// block boundary counts as 2 blocks).
    pub fn blocks_spanned(&self, offset: u64, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let bs = self.block_size as u64;
        let first = offset / bs;
        let last = (offset + len as u64 - 1) / bs;
        last - first + 1
    }

    /// Modeled nanoseconds for a positional read.
    pub fn read_cost_ns(&self, offset: u64, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        self.read_base_ns + self.blocks_spanned(offset, len) * self.read_block_ns
    }

    /// Modeled nanoseconds for an append of `len` bytes beginning at file
    /// offset `offset`.
    pub fn write_cost_ns(&self, offset: u64, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        self.write_base_ns + self.blocks_spanned(offset, len) * self.write_block_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_single_block_read_is_about_2us() {
        let m = CostModel::default();
        let ns = m.read_cost_ns(0, 100);
        assert!((1_800..=2_400).contains(&ns), "got {ns}");
    }

    #[test]
    fn blocks_spanned_alignment() {
        let m = CostModel::default();
        assert_eq!(m.blocks_spanned(0, 0), 0);
        assert_eq!(m.blocks_spanned(0, 1), 1);
        assert_eq!(m.blocks_spanned(0, 4096), 1);
        assert_eq!(m.blocks_spanned(0, 4097), 2);
        assert_eq!(m.blocks_spanned(4095, 2), 2);
        assert_eq!(m.blocks_spanned(4096, 4096), 1);
        assert_eq!(m.blocks_spanned(10, 8192), 3);
    }

    #[test]
    fn zero_len_costs_nothing() {
        let m = CostModel::default();
        assert_eq!(m.read_cost_ns(123, 0), 0);
        assert_eq!(m.write_cost_ns(123, 0), 0);
    }

    #[test]
    fn free_model_costs_nothing() {
        let m = CostModel::free();
        assert_eq!(m.read_cost_ns(0, 1 << 20), 0);
        assert_eq!(m.write_cost_ns(0, 1 << 20), 0);
    }

    #[test]
    fn bigger_reads_cost_more() {
        let m = CostModel::default();
        assert!(m.read_cost_ns(0, 64 * 1024) > m.read_cost_ns(0, 4096));
    }
}
