//! The quantitative Section 3.3 argument: why data-unclustered indexes do
//! not fit LSM-trees.
//!
//! The paper gives two reasons: (1) they replace the compact SSTable layout
//! with discontinuous structures, and (2) range lookups and compaction
//! iterators — sequential consumers — would pay pointer jumps and wasted
//! slots. [`layout_profile`] measures exactly those quantities for a given
//! structure and workload, next to the data-clustered baseline (a packed
//! sorted array), so the claim is a number instead of an assertion.

use crate::UnclusteredMap;

/// Layout metrics for one structure under one scan workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutProfile {
    pub name: String,
    /// Resident bytes per live key (1.0 entry = 16 B packed).
    pub bytes_per_key: f64,
    /// Space overhead versus the packed array (1.0 = no overhead).
    pub space_amplification: f64,
    /// Pointer dereferences per scanned entry.
    pub hops_per_scanned_entry: f64,
    /// Whether entries live in one contiguous allocation an LSM-tree could
    /// stream or mmap.
    pub contiguous: bool,
}

/// Packed sorted-array baseline: 16 bytes per pair, zero hops, contiguous.
pub fn clustered_baseline(n: usize) -> LayoutProfile {
    LayoutProfile {
        name: "sorted-array".into(),
        bytes_per_key: 16.0,
        space_amplification: 1.0,
        hops_per_scanned_entry: 0.0,
        contiguous: true,
    }
    .tap_n(n)
}

impl LayoutProfile {
    fn tap_n(self, _n: usize) -> Self {
        self
    }
}

/// Profile `map` by running `scans` range scans of `scan_len` entries
/// spread over the key space `[0, key_span)`.
pub fn layout_profile(
    name: &str,
    map: &dyn UnclusteredMap,
    key_span: u64,
    scans: usize,
    scan_len: usize,
) -> LayoutProfile {
    let n = map.len().max(1);
    let hops_before = map.pointer_hops();
    let mut scanned = 0usize;
    for i in 0..scans.max(1) {
        let start = (i as u64 * key_span) / scans.max(1) as u64;
        scanned += map.scan(start, scan_len).len();
    }
    let hops = map.pointer_hops() - hops_before;
    LayoutProfile {
        name: name.to_string(),
        bytes_per_key: map.size_bytes() as f64 / n as f64,
        space_amplification: map.size_bytes() as f64 / (n as f64 * 16.0),
        hops_per_scanned_entry: hops as f64 / scanned.max(1) as f64,
        contiguous: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlexMap, LippMap};

    fn pairs(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|i| (i * 11, i)).collect()
    }

    #[test]
    fn unclustered_structures_pay_space_amplification() {
        let p = pairs(20_000);
        let alex = AlexMap::build(&p);
        let lipp = LippMap::build(&p);
        let pa = layout_profile("alex", &alex, 220_000, 50, 100);
        let pl = layout_profile("lipp", &lipp, 220_000, 50, 100);
        let base = clustered_baseline(20_000);

        assert!(
            pa.space_amplification > 1.2,
            "ALEX gaps: {}",
            pa.space_amplification
        );
        assert!(
            pl.space_amplification > 1.2,
            "LIPP slack: {}",
            pl.space_amplification
        );
        assert!((base.space_amplification - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unclustered_scans_chase_pointers() {
        let p = pairs(20_000);
        let alex = AlexMap::build(&p);
        let lipp = LippMap::build(&p);
        let pa = layout_profile("alex", &alex, 220_000, 50, 100);
        let pl = layout_profile("lipp", &lipp, 220_000, 50, 100);
        assert!(pa.hops_per_scanned_entry > 0.0);
        assert!(pl.hops_per_scanned_entry > 0.0);
        assert_eq!(clustered_baseline(1).hops_per_scanned_entry, 0.0);
    }

    #[test]
    fn contiguity_flags() {
        let p = pairs(1_000);
        let alex = AlexMap::build(&p);
        assert!(!layout_profile("alex", &alex, 11_000, 5, 10).contiguous);
        assert!(clustered_baseline(1_000).contiguous);
    }
}
