//! Data-unclustered learned indexes (paper Sections 3.2–3.3).
//!
//! The paper classifies ALEX and LIPP as *data-unclustered*: they own their
//! data layout (gapped arrays, pointer-linked nodes) instead of indexing a
//! contiguous sorted array. That buys them in-place updates — and is exactly
//! why the paper rules them out for LSM-trees, whose SSTables are immutable,
//! contiguous, and scanned sequentially.
//!
//! This crate reproduces that *analysis*, not just the assertion:
//!
//! * [`alex::AlexMap`] — ALEX-like updatable map: model-routed **gapped
//!   arrays** with exponential search and node splits;
//! * [`lipp::LippMap`] — LIPP-like updatable map: per-node models that
//!   predict **exact slots**, conflicts push keys into child nodes;
//! * [`analysis`] — the quantitative Section 3.3 argument: memory per key,
//!   pointer hops per range scan, and layout fragmentation, side by side
//!   with a data-clustered sorted array.

pub mod alex;
pub mod analysis;
pub mod lipp;

pub use alex::AlexMap;
pub use analysis::{layout_profile, LayoutProfile};
pub use lipp::LippMap;

/// Common interface for the updatable in-memory maps in this crate.
pub trait UnclusteredMap {
    /// Insert or overwrite.
    fn insert(&mut self, key: u64, value: u64);

    /// Point lookup.
    fn get(&self, key: u64) -> Option<u64>;

    /// In-order key-value pairs starting at `start`, at most `limit`.
    /// For data-unclustered structures this requires pointer traversal —
    /// the cost the paper's Section 3.3 calls out.
    fn scan(&self, start: u64, limit: usize) -> Vec<(u64, u64)>;

    /// Number of live keys.
    fn len(&self) -> usize;

    /// Whether the map is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes (slots, models, pointers — including the
    /// empty slots the layout reserves).
    fn size_bytes(&self) -> usize;

    /// Pointer dereferences (node hops) performed since construction —
    /// instrumentation for the compatibility analysis.
    fn pointer_hops(&self) -> u64;
}
