//! ALEX-like updatable learned map (paper Figure 3(A)).
//!
//! Structure: a model-routed set of **data nodes**, each a *gapped array* —
//! key-value slots interleaved with empty slots so inserts shift only a few
//! elements. Lookups route through the root model, predict an in-node slot
//! with the node's linear model, and finish with exponential search. Full
//! nodes split in two and retrain, mirroring ALEX's adaptive behaviour at a
//! simplified scale (one routing level; the original nests inner nodes).
//!
//! The data-unclustered essence is preserved: key-value pairs live scattered
//! across per-node heap allocations with deliberate gaps — there is no
//! single contiguous sorted array an LSM-tree could mmap or stream.

use std::cell::Cell;

use crate::UnclusteredMap;

/// Target fill factor of a data node's gapped array.
const DENSITY: f64 = 0.7;
/// Split threshold: keys per node.
const MAX_NODE_KEYS: usize = 256;

/// One gapped-array data node.
#[derive(Debug, Clone)]
struct DataNode {
    /// Smallest key the node may hold (routing boundary).
    min_key: u64,
    /// Gapped slots: `None` = hole for future inserts.
    slots: Vec<Option<(u64, u64)>>,
    /// Linear model: slot ≈ slope * (key - min_key) + intercept.
    slope: f64,
    intercept: f64,
    len: usize,
}

impl DataNode {
    /// Build from sorted pairs, leaving gaps at `DENSITY` fill.
    fn build(pairs: &[(u64, u64)]) -> DataNode {
        debug_assert!(!pairs.is_empty());
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        let n = pairs.len();
        let cap = ((n as f64 / DENSITY).ceil() as usize).max(n + 2);
        let min_key = pairs[0].0;
        let max_key = pairs[n - 1].0;
        let span = (max_key - min_key).max(1) as f64;
        let slope = (cap - 1) as f64 / span;
        let mut slots = vec![None; cap];
        // Model-placed: each pair lands at its predicted slot or the next
        // free one (ALEX's "model-based insertion").
        for &(k, v) in pairs {
            let mut i = ((k - min_key) as f64 * slope) as usize;
            i = i.min(cap - 1);
            while slots[i].is_some() {
                i += 1;
                if i == cap {
                    // Extremely skewed tail: extend.
                    slots.push(None);
                }
            }
            slots[i] = Some((k, v));
        }
        DataNode {
            min_key,
            slots,
            slope,
            intercept: 0.0,
            len: n,
        }
    }

    #[inline]
    fn predict_slot(&self, key: u64) -> usize {
        let d = key.saturating_sub(self.min_key) as f64;
        let p = self.slope * d + self.intercept;
        if p <= 0.0 {
            0
        } else {
            (p as usize).min(self.slots.len() - 1)
        }
    }

    /// Exponential search outward from the predicted slot.
    fn find(&self, key: u64) -> Option<u64> {
        let start = self.predict_slot(key);
        // Scan outward; gapped arrays keep keys near their predicted slot,
        // so the walk is short in practice.
        if let Some((k, v)) = self.slots[start] {
            if k == key {
                return Some(v);
            }
        }
        let mut step = 1usize;
        loop {
            let right = start + step;
            let left = start.checked_sub(step);
            let mut out_of_range = true;
            if right < self.slots.len() {
                out_of_range = false;
                if let Some((k, v)) = self.slots[right] {
                    if k == key {
                        return Some(v);
                    }
                }
            }
            if let Some(l) = left {
                out_of_range = false;
                if let Some((k, v)) = self.slots[l] {
                    if k == key {
                        return Some(v);
                    }
                }
            }
            if out_of_range {
                return None;
            }
            step += 1;
            // Termination: bounded by node size.
            if step > self.slots.len() {
                return None;
            }
        }
    }

    /// Insert; `false` if the node is full and must split.
    fn insert(&mut self, key: u64, value: u64) -> bool {
        // Overwrite?
        let cap = self.slots.len();
        let start = self.predict_slot(key);
        // Walk to the correct insertion region: find the slot holding `key`,
        // or the nearest gap that keeps slot order consistent with key order.
        // Simplification of ALEX: scan right from the prediction to the
        // first slot whose key ≥ `key` (or a gap), shifting as needed.
        let mut i = start;
        // Back up while the previous occupied slot holds a larger key.
        while i > 0 {
            match self.slots[i - 1] {
                Some((k, _)) if k >= key => i -= 1,
                _ => break,
            }
        }
        // Advance over smaller keys.
        while i < cap {
            match self.slots[i] {
                Some((k, _)) if k < key => i += 1,
                _ => break,
            }
        }
        if i < cap {
            if let Some((k, _)) = self.slots[i] {
                if k == key {
                    self.slots[i] = Some((key, value));
                    return true;
                }
            }
        }
        if self.len >= MAX_NODE_KEYS {
            return false;
        }
        // Shift right until a gap absorbs the displacement.
        let mut j = i;
        while j < cap && self.slots[j].is_some() {
            j += 1;
        }
        if j == cap {
            self.slots.push(None);
        }
        let j = j.min(self.slots.len() - 1);
        for m in (i..j).rev() {
            self.slots[m + 1] = self.slots[m];
        }
        if i >= self.slots.len() {
            self.slots.push(None);
        }
        let last = self.slots.len() - 1;
        self.slots[i.min(last)] = Some((key, value));
        self.len += 1;
        true
    }

    /// Live pairs in key order.
    fn pairs(&self) -> Vec<(u64, u64)> {
        self.slots.iter().flatten().copied().collect()
    }

    fn size_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Option<(u64, u64)>>() + 48
    }
}

/// ALEX-like map: routing table over gapped-array data nodes.
#[derive(Debug, Default)]
pub struct AlexMap {
    /// Data nodes sorted by `min_key`; located by binary search (stands in
    /// for ALEX's inner-node model routing at this scale).
    nodes: Vec<DataNode>,
    len: usize,
    hops: Cell<u64>,
}

impl AlexMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk-build from sorted distinct pairs.
    pub fn build(pairs: &[(u64, u64)]) -> Self {
        let mut nodes = Vec::new();
        for chunk in pairs.chunks(MAX_NODE_KEYS / 2) {
            nodes.push(DataNode::build(chunk));
        }
        Self {
            nodes,
            len: pairs.len(),
            hops: Cell::new(0),
        }
    }

    fn node_for(&self, key: u64) -> Option<usize> {
        if self.nodes.is_empty() {
            return None;
        }
        self.hops.set(self.hops.get() + 1); // root → data node pointer
        Some(
            self.nodes
                .partition_point(|n| n.min_key <= key)
                .saturating_sub(1),
        )
    }

    /// Number of data nodes (grows as inserts split).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl UnclusteredMap for AlexMap {
    fn insert(&mut self, key: u64, value: u64) {
        if self.nodes.is_empty() {
            self.nodes.push(DataNode::build(&[(key, value)]));
            self.len = 1;
            return;
        }
        let idx = self.node_for(key).expect("non-empty");
        let existed = self.nodes[idx].find(key).is_some();
        if self.nodes[idx].insert(key, value) {
            if !existed {
                self.len += 1;
            }
            return;
        }
        // Split: rebuild the node as two half-full nodes, then retry.
        let pairs = self.nodes[idx].pairs();
        let mid = pairs.len() / 2;
        let left = DataNode::build(&pairs[..mid]);
        let right = DataNode::build(&pairs[mid..]);
        self.nodes[idx] = left;
        self.nodes.insert(idx + 1, right);
        let idx = self.node_for(key).expect("non-empty");
        let ok = self.nodes[idx].insert(key, value);
        debug_assert!(ok, "fresh half-full node must accept the key");
        if !existed {
            self.len += 1;
        }
    }

    fn get(&self, key: u64) -> Option<u64> {
        let idx = self.node_for(key)?;
        self.nodes[idx].find(key)
    }

    fn scan(&self, start: u64, limit: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(limit);
        let Some(mut idx) = self.node_for(start) else {
            return out;
        };
        while idx < self.nodes.len() && out.len() < limit {
            self.hops.set(self.hops.get() + 1); // next node dereference
                                                // Walking a gapped array touches the holes too — part of the
                                                // unclustered scan cost.
            for (k, v) in self.nodes[idx].slots.iter().flatten() {
                if *k >= start {
                    out.push((*k, *v));
                    if out.len() == limit {
                        break;
                    }
                }
            }
            idx += 1;
        }
        out
    }

    fn len(&self) -> usize {
        self.len
    }

    fn size_bytes(&self) -> usize {
        self.nodes.iter().map(DataNode::size_bytes).sum::<usize>() + self.nodes.len() * 8
        // routing pointers
    }

    fn pointer_hops(&self) -> u64 {
        self.hops.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sorted_pairs(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|i| (i * 7 + 1, i)).collect()
    }

    #[test]
    fn build_and_get() {
        let pairs = sorted_pairs(10_000);
        let m = AlexMap::build(&pairs);
        assert_eq!(m.len(), 10_000);
        for &(k, v) in pairs.iter().step_by(37) {
            assert_eq!(m.get(k), Some(v), "key {k}");
        }
        assert_eq!(m.get(0), None);
        assert_eq!(m.get(3), None);
        assert_eq!(m.get(u64::MAX), None);
    }

    #[test]
    fn inserts_split_nodes_and_stay_correct() {
        let mut m = AlexMap::build(&sorted_pairs(1_000));
        let before = m.node_count();
        let mut oracle: BTreeMap<u64, u64> = sorted_pairs(1_000).into_iter().collect();
        // Dense inserts into one region force splits.
        for i in 0..2_000u64 {
            let k = 3_000 + i;
            m.insert(k, i);
            oracle.insert(k, i);
        }
        assert!(m.node_count() > before, "splits must have happened");
        assert_eq!(m.len(), oracle.len());
        for (&k, &v) in oracle.iter().step_by(53) {
            assert_eq!(m.get(k), Some(v), "key {k}");
        }
    }

    #[test]
    fn overwrite_does_not_grow() {
        let mut m = AlexMap::build(&sorted_pairs(100));
        m.insert(1, 999);
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(1), Some(999));
    }

    #[test]
    fn scan_is_ordered_and_complete() {
        let pairs = sorted_pairs(5_000);
        let m = AlexMap::build(&pairs);
        let got = m.scan(70, 100);
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(got[0].0, 71); // first key ≥ 70 is 10*7+1
    }

    #[test]
    fn empty_and_single() {
        let mut m = AlexMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(5), None);
        assert!(m.scan(0, 10).is_empty());
        m.insert(5, 50);
        assert_eq!(m.get(5), Some(50));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn memory_includes_gaps() {
        let pairs = sorted_pairs(10_000);
        let m = AlexMap::build(&pairs);
        let raw = 10_000 * 16;
        assert!(
            m.size_bytes() > raw,
            "gapped arrays must cost more than packed pairs: {} vs {raw}",
            m.size_bytes()
        );
    }

    #[test]
    fn random_workload_matches_btreemap() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = AlexMap::new();
        let mut oracle = BTreeMap::new();
        for _ in 0..20_000 {
            let k = rng.gen_range(0..5_000u64);
            if rng.gen_bool(0.7) {
                let v = rng.gen::<u32>() as u64;
                m.insert(k, v);
                oracle.insert(k, v);
            } else {
                assert_eq!(m.get(k), oracle.get(&k).copied(), "key {k}");
            }
        }
        assert_eq!(m.len(), oracle.len());
    }
}
