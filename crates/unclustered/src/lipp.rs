//! LIPP-like updatable learned map (paper Figure 3(B)).
//!
//! Every node owns a slot array and a linear model that maps a key to
//! *exactly one* slot (no search at all). A slot is `Null` (free), `Data`
//! (one pair), or `Node` (a child built from keys that collided there).
//! Lookups follow model predictions down the tree; inserts turn collisions
//! into children — the FMCD idea simplified to "allocate slots with slack
//! so conflicts are rare".
//!
//! The layout is maximally unclustered: every conflict adds another heap
//! allocation reachable only through a pointer, and an in-order scan is a
//! depth-first traversal.

use std::cell::Cell;

use crate::UnclusteredMap;

/// Slot-per-key slack: more slots → fewer conflicts → flatter tree.
const SLACK: f64 = 1.5;
/// Minimum slots per node.
const MIN_SLOTS: usize = 8;

#[derive(Debug)]
enum Slot {
    Null,
    Data(u64, u64),
    Node(Box<LippNode>),
}

#[derive(Debug)]
struct LippNode {
    min_key: u64,
    /// slot ≈ slope * (key - min_key)
    slope: f64,
    slots: Vec<Slot>,
}

impl LippNode {
    /// Build over sorted distinct pairs.
    fn build(pairs: &[(u64, u64)]) -> LippNode {
        debug_assert!(!pairs.is_empty());
        let n = pairs.len();
        let min_key = pairs[0].0;
        let max_key = pairs[n - 1].0;
        let slots_len = ((n as f64 * SLACK) as usize).max(MIN_SLOTS);
        let span = (max_key - min_key).max(1) as f64;
        let slope = (slots_len - 1) as f64 / span;
        let mut node = LippNode {
            min_key,
            slope,
            slots: (0..slots_len).map(|_| Slot::Null).collect(),
        };
        // Group colliding keys, then place each group.
        let mut group: Vec<(u64, u64)> = Vec::new();
        let mut group_slot = usize::MAX;
        let flush = |node: &mut LippNode, group: &mut Vec<(u64, u64)>, slot: usize| {
            if group.is_empty() {
                return;
            }
            node.slots[slot] = if group.len() == 1 {
                Slot::Data(group[0].0, group[0].1)
            } else {
                Slot::Node(Box::new(LippNode::build(group)))
            };
            group.clear();
        };
        for &(k, v) in pairs {
            let s = node.predict(k);
            if s != group_slot {
                flush(&mut node, &mut group, group_slot.min(slots_len - 1));
                group_slot = s;
            }
            group.push((k, v));
        }
        flush(&mut node, &mut group, group_slot.min(slots_len - 1));
        node
    }

    #[inline]
    fn predict(&self, key: u64) -> usize {
        let d = key.saturating_sub(self.min_key) as f64;
        let p = self.slope * d;
        if p <= 0.0 {
            0
        } else {
            (p as usize).min(self.slots.len() - 1)
        }
    }

    fn get(&self, key: u64, hops: &Cell<u64>) -> Option<u64> {
        match &self.slots[self.predict(key)] {
            Slot::Null => None,
            Slot::Data(k, v) => (*k == key).then_some(*v),
            Slot::Node(child) => {
                hops.set(hops.get() + 1);
                child.get(key, hops)
            }
        }
    }

    fn insert(&mut self, key: u64, value: u64) -> bool {
        let s = self.predict(key);
        match &mut self.slots[s] {
            slot @ Slot::Null => {
                *slot = Slot::Data(key, value);
                true
            }
            Slot::Data(k, v) => {
                if *k == key {
                    *v = value;
                    return false;
                }
                // Conflict: the slot becomes a child holding both keys.
                let mut pair = [(*k, *v), (key, value)];
                pair.sort_unstable_by_key(|p| p.0);
                self.slots[s] = Slot::Node(Box::new(LippNode::build(&pair)));
                true
            }
            Slot::Node(child) => child.insert(key, value),
        }
    }

    fn scan_into(&self, start: u64, limit: usize, out: &mut Vec<(u64, u64)>, hops: &Cell<u64>) {
        // The model is monotone, so every slot before `predict(start)` holds
        // only keys < start — skip them instead of filtering one by one.
        let first = self.predict(start);
        for slot in &self.slots[first..] {
            if out.len() >= limit {
                return;
            }
            match slot {
                Slot::Null => {}
                Slot::Data(k, v) => {
                    if *k >= start {
                        out.push((*k, *v));
                    }
                }
                Slot::Node(child) => {
                    hops.set(hops.get() + 1);
                    child.scan_into(start, limit, out, hops);
                }
            }
        }
    }

    fn size_bytes(&self) -> usize {
        let own = self.slots.len() * std::mem::size_of::<Slot>() + 40;
        let children: usize = self
            .slots
            .iter()
            .map(|s| match s {
                Slot::Node(c) => c.size_bytes(),
                _ => 0,
            })
            .sum();
        own + children
    }

    fn depth(&self) -> usize {
        1 + self
            .slots
            .iter()
            .map(|s| match s {
                Slot::Node(c) => c.depth(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }
}

/// LIPP-like map.
#[derive(Debug)]
pub struct LippMap {
    root: Option<LippNode>,
    len: usize,
    hops: Cell<u64>,
}

impl Default for LippMap {
    fn default() -> Self {
        Self::new()
    }
}

impl LippMap {
    /// Empty map.
    pub fn new() -> Self {
        Self {
            root: None,
            len: 0,
            hops: Cell::new(0),
        }
    }

    /// Bulk-build from sorted distinct pairs.
    pub fn build(pairs: &[(u64, u64)]) -> Self {
        if pairs.is_empty() {
            return Self::new();
        }
        Self {
            root: Some(LippNode::build(pairs)),
            len: pairs.len(),
            hops: Cell::new(0),
        }
    }

    /// Tree height (1 = flat root).
    pub fn depth(&self) -> usize {
        self.root.as_ref().map_or(0, LippNode::depth)
    }
}

impl UnclusteredMap for LippMap {
    fn insert(&mut self, key: u64, value: u64) {
        match &mut self.root {
            None => {
                self.root = Some(LippNode::build(&[(key, value)]));
                self.len = 1;
            }
            Some(root) => {
                if root.insert(key, value) {
                    self.len += 1;
                }
            }
        }
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.hops.set(self.hops.get() + 1); // root dereference
        self.root.as_ref()?.get(key, &self.hops)
    }

    fn scan(&self, start: u64, limit: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(limit);
        if let Some(root) = &self.root {
            self.hops.set(self.hops.get() + 1);
            root.scan_into(start, limit, &mut out, &self.hops);
        }
        out
    }

    fn len(&self) -> usize {
        self.len
    }

    fn size_bytes(&self) -> usize {
        self.root.as_ref().map_or(0, LippNode::size_bytes)
    }

    fn pointer_hops(&self) -> u64 {
        self.hops.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sorted_pairs(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|i| (i * 13 + 5, i)).collect()
    }

    #[test]
    fn build_and_get() {
        let pairs = sorted_pairs(10_000);
        let m = LippMap::build(&pairs);
        for &(k, v) in pairs.iter().step_by(29) {
            assert_eq!(m.get(k), Some(v), "key {k}");
        }
        assert_eq!(m.get(0), None);
        assert_eq!(m.get(6), None);
    }

    #[test]
    fn conflicts_create_children() {
        // Clustered keys guarantee slot conflicts.
        let pairs: Vec<(u64, u64)> = (0..1_000u64)
            .map(|i| ((i / 10) * 1_000_000 + i % 10, i))
            .collect();
        let m = LippMap::build(&pairs);
        assert!(m.depth() > 1, "clustered keys must force children");
        for &(k, v) in pairs.iter().step_by(17) {
            assert_eq!(m.get(k), Some(v));
        }
    }

    #[test]
    fn inserts_match_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = LippMap::build(&sorted_pairs(500));
        let mut oracle: BTreeMap<u64, u64> = sorted_pairs(500).into_iter().collect();
        for _ in 0..10_000 {
            let k = rng.gen_range(0..20_000u64);
            if rng.gen_bool(0.6) {
                let v = rng.gen::<u32>() as u64;
                m.insert(k, v);
                oracle.insert(k, v);
            } else {
                assert_eq!(m.get(k), oracle.get(&k).copied(), "key {k}");
            }
        }
        assert_eq!(m.len(), oracle.len());
    }

    #[test]
    fn scan_is_ordered() {
        let pairs = sorted_pairs(3_000);
        let m = LippMap::build(&pairs);
        let got = m.scan(100, 50);
        assert_eq!(got.len(), 50);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(got[0].0 >= 100);
        // Scanning costs pointer hops (the Section 3.3 argument).
        assert!(m.pointer_hops() > 0);
    }

    #[test]
    fn empty_and_overwrite() {
        let mut m = LippMap::new();
        assert_eq!(m.get(1), None);
        assert!(m.scan(0, 5).is_empty());
        m.insert(9, 1);
        m.insert(9, 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(9), Some(2));
    }

    #[test]
    fn slack_slots_cost_memory() {
        let pairs = sorted_pairs(10_000);
        let m = LippMap::build(&pairs);
        assert!(m.size_bytes() > 10_000 * 16, "slack slots must be charged");
    }
}
