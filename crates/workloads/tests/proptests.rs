//! Property tests for the workload generators: invariants every experiment
//! relies on, checked over the whole parameter space.

use lsm_workloads::{
    cdf, decode_key, encode_key, value_for_key, Dataset, Op, RequestDistribution, YcsbSpec,
    YcsbWorkload,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn datasets_always_sorted_distinct_exact_n(
        n in 1usize..5_000,
        seed in any::<u64>(),
        d in prop::sample::select(Dataset::ALL.to_vec()),
    ) {
        let keys = d.generate(n, seed);
        prop_assert_eq!(keys.len(), n);
        prop_assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn key_encoding_preserves_order(a in any::<u64>(), b in any::<u64>()) {
        let (ea, eb) = (encode_key(a), encode_key(b));
        prop_assert_eq!(a.cmp(&b), ea.cmp(&eb));
        prop_assert_eq!(decode_key(&ea), a);
    }

    #[test]
    fn values_deterministic_and_sized(key in any::<u64>(), len in 0usize..2_000) {
        let v = value_for_key(key, len);
        prop_assert_eq!(v.len(), len);
        prop_assert_eq!(v, value_for_key(key, len));
    }

    #[test]
    fn choosers_stay_in_bounds(
        n in 1usize..10_000,
        seed in any::<u64>(),
        theta in 0.01f64..0.999,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for dist in [
            RequestDistribution::Uniform,
            RequestDistribution::Zipfian { theta },
            RequestDistribution::Latest { theta },
            RequestDistribution::HotSpot { hot_fraction: 0.1, hot_prob: 0.9 },
        ] {
            let c = dist.chooser(n);
            for _ in 0..200 {
                prop_assert!(c.next(&mut rng) < n);
            }
        }
    }

    #[test]
    fn ycsb_streams_respect_their_mix(
        seed in any::<u64>(),
        spec in prop::sample::select(YcsbSpec::ALL.to_vec()),
    ) {
        let keys: Vec<u64> = (0..500u64).map(|i| i * 100).collect();
        let mut w = YcsbWorkload::new(spec, keys.clone(), seed);
        let ops = w.take(2_000);
        // Reads may target loaded keys *or* keys inserted earlier in the
        // stream (YCSB-D's whole point is reading recent inserts).
        let mut known: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        for op in &ops {
            match op {
                Op::Read(k) | Op::Update(k) | Op::ReadModifyWrite(k) => {
                    prop_assert!(known.contains(k), "{spec:?}: key {k} never written");
                }
                Op::Insert(k) => {
                    prop_assert!(known.insert(*k), "{spec:?}: insert reused {k}");
                }
                Op::Scan(k, len) => {
                    prop_assert!(known.contains(k), "{spec:?}: scan start {k} never written");
                    prop_assert!((1..=100).contains(len));
                }
            }
        }
        // Each spec emits only its allowed op kinds.
        let allowed = |op: &Op| match spec {
            YcsbSpec::A | YcsbSpec::B => matches!(op, Op::Read(_) | Op::Update(_)),
            YcsbSpec::C => matches!(op, Op::Read(_)),
            YcsbSpec::D => matches!(op, Op::Read(_) | Op::Insert(_)),
            YcsbSpec::E => matches!(op, Op::Scan(_, _) | Op::Insert(_)),
            YcsbSpec::F => matches!(op, Op::Read(_) | Op::ReadModifyWrite(_)),
        };
        prop_assert!(ops.iter().all(allowed), "{spec:?} emitted a foreign op");
    }

    #[test]
    fn cdf_samples_are_monotone(
        n in 2usize..5_000,
        points in 2usize..50,
        seed in any::<u64>(),
    ) {
        let keys = Dataset::Fb.generate(n, seed);
        let samples = cdf::sample_cdf(&keys, points);
        prop_assert_eq!(samples.len(), points);
        prop_assert!(samples.windows(2).all(|w| w[0].key <= w[1].key));
        prop_assert!(samples.windows(2).all(|w| w[0].fraction <= w[1].fraction));
        prop_assert!((samples.last().unwrap().fraction - 1.0).abs() < 1e-9);
    }
}
