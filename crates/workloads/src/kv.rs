//! Key/value encoding shared across the testbed.
//!
//! The paper uses 24-byte keys and 1000-byte values. Learned models operate
//! on `u64` key codes (as SOSD does); on disk each key occupies a fixed
//! 24-byte slot: the big-endian `u64` code followed by 16 deterministic
//! padding bytes. Fixed-width keys keep segments addressable by position,
//! which is the property data-clustered learned indexes rely on.

/// On-disk key width in bytes (paper: 24-byte keys).
pub const KEY_LEN: usize = 24;

/// A fixed-width encoded key.
pub type KeyBytes = [u8; KEY_LEN];

/// Encode a `u64` key code into its 24-byte on-disk form.
///
/// Big-endian prefix preserves ordering: `encode_key(a) < encode_key(b)`
/// lexicographically iff `a < b`.
pub fn encode_key(key: u64) -> KeyBytes {
    let mut out = [0u8; KEY_LEN];
    out[..8].copy_from_slice(&key.to_be_bytes());
    // Deterministic padding derived from the key (stand-in for the rest of a
    // real 24-byte key); never affects ordering of distinct codes.
    let pad = key.wrapping_mul(0x9e3779b97f4a7c15).to_be_bytes();
    out[8..16].copy_from_slice(&pad);
    out[16..24].copy_from_slice(&pad);
    out
}

/// Decode the `u64` key code from its on-disk form.
pub fn decode_key(bytes: &[u8]) -> u64 {
    debug_assert!(bytes.len() >= 8, "key slot too short");
    u64::from_be_bytes(bytes[..8].try_into().expect("8-byte prefix"))
}

/// Deterministic value payload for a key: `len` bytes seeded by the key so
/// that integrity checks can recompute the expected value.
pub fn value_for_key(key: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut state = key ^ 0xa076_1d64_78bd_642f;
    while out.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let bytes = state.to_le_bytes();
        let take = (len - out.len()).min(8);
        out.extend_from_slice(&bytes[..take]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_preserves_order() {
        let keys = [0u64, 1, 2, 255, 256, 1 << 20, u64::MAX - 1, u64::MAX];
        for w in keys.windows(2) {
            assert!(encode_key(w[0]) < encode_key(w[1]));
        }
    }

    #[test]
    fn roundtrip() {
        for k in [0u64, 7, 1 << 40, u64::MAX] {
            assert_eq!(decode_key(&encode_key(k)), k);
        }
    }

    #[test]
    fn value_is_deterministic_and_sized() {
        assert_eq!(value_for_key(42, 1000), value_for_key(42, 1000));
        assert_ne!(value_for_key(42, 100), value_for_key(43, 100));
        assert_eq!(value_for_key(9, 0).len(), 0);
        assert_eq!(value_for_key(9, 3).len(), 3);
        assert_eq!(value_for_key(9, 1000).len(), 1000);
    }

    #[test]
    fn padding_is_deterministic() {
        assert_eq!(encode_key(123), encode_key(123));
    }
}
