//! Synthetic reproductions of the seven SOSD-style datasets (paper Fig. 5).
//!
//! Each generator produces `n` *distinct, sorted* `u64` keys whose empirical
//! CDF matches the shape of the corresponding SOSD dataset:
//!
//! * **Random** — uniform over the key space: a straight-line CDF.
//! * **Segment** — keys clustered into dense runs separated by wide gaps:
//!   a staircase CDF (SOSD's synthetic "segmented" data).
//! * **Longitude** — OSM cell longitudes: a mixture of Gaussians centred on
//!   densely mapped longitudes, smooth S-shaped multi-modal CDF.
//! * **Longlat** — interleaved longitude/latitude pairs: stronger multi-modal
//!   banding than Longitude.
//! * **Books** — Amazon book popularity: lognormal body, most mass at small
//!   keys, long right tail (sharply concave CDF).
//! * **Fb** — Facebook user IDs: nearly uniform body with a sparse set of
//!   extreme upper outliers (CDF hugs the diagonal then jumps).
//! * **Wiki** — Wikipedia edit timestamps: near-arithmetic progression with
//!   bursts (locally linear CDF with slope changes; many near-duplicates).

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal, Normal};

/// The seven benchmark key distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    Random,
    Segment,
    Longitude,
    Longlat,
    Books,
    Fb,
    Wiki,
}

impl Dataset {
    /// All datasets in the order the paper presents them.
    pub const ALL: [Dataset; 7] = [
        Dataset::Random,
        Dataset::Segment,
        Dataset::Longitude,
        Dataset::Longlat,
        Dataset::Books,
        Dataset::Fb,
        Dataset::Wiki,
    ];

    /// Canonical lower-case name (matches the paper's figure labels).
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Random => "random",
            Dataset::Segment => "segment",
            Dataset::Longitude => "longitude",
            Dataset::Longlat => "longlat",
            Dataset::Books => "books",
            Dataset::Fb => "fb",
            Dataset::Wiki => "wiki",
        }
    }

    /// Parse a dataset from its canonical name.
    pub fn from_name(name: &str) -> Option<Dataset> {
        Dataset::ALL.iter().copied().find(|d| d.name() == name)
    }

    /// Generate `n` distinct sorted keys with the dataset's distribution.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(self.name()));
        let mut keys = match self {
            Dataset::Random => gen_random(n, &mut rng),
            Dataset::Segment => gen_segment(n, &mut rng),
            Dataset::Longitude => gen_longitude(n, &mut rng),
            Dataset::Longlat => gen_longlat(n, &mut rng),
            Dataset::Books => gen_books(n, &mut rng),
            Dataset::Fb => gen_fb(n, &mut rng),
            Dataset::Wiki => gen_wiki(n, &mut rng),
        };
        dedup_to_exactly(&mut keys, n, &mut rng);
        keys
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a; just decorrelates per-dataset seeds.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Keys live in [0, 2^62) so downstream arithmetic (midpoints, paddings)
/// never overflows.
const KEY_SPACE: u64 = 1 << 62;

fn gen_random(n: usize, rng: &mut StdRng) -> Vec<u64> {
    (0..n).map(|_| rng.gen_range(0..KEY_SPACE)).collect()
}

fn gen_segment(n: usize, rng: &mut StdRng) -> Vec<u64> {
    // ~1000 dense runs at random anchors: within a run keys are consecutive
    // multiples of a small stride, producing the staircase CDF of SOSD's
    // "segmented" synthetic data.
    let runs = 1000.max(n / 6400);
    let per_run = n.div_ceil(runs);
    let mut keys = Vec::with_capacity(n + per_run);
    for _ in 0..runs {
        let anchor = rng.gen_range(0..KEY_SPACE - (per_run as u64 * 16));
        let stride = rng.gen_range(1..=8u64);
        for i in 0..per_run {
            keys.push(anchor + i as u64 * stride);
        }
    }
    keys.truncate(n);
    keys
}

/// Longitudes (degrees) of densely mapped regions, used as mixture centres.
const LON_CENTRES: [(f64, f64, f64); 8] = [
    // (centre degrees, std-dev degrees, weight)
    (-122.0, 3.0, 0.10), // US west coast
    (-74.0, 4.0, 0.15),  // US east coast
    (-0.1, 2.5, 0.15),   // UK
    (13.0, 5.0, 0.20),   // central Europe
    (77.0, 4.0, 0.10),   // India
    (103.8, 2.0, 0.08),  // SE Asia
    (116.0, 3.5, 0.12),  // China
    (139.7, 2.0, 0.10),  // Japan
];

fn sample_longitude(rng: &mut StdRng) -> f64 {
    let w: f64 = rng.gen();
    let mut acc = 0.0;
    for &(c, s, wt) in &LON_CENTRES {
        acc += wt;
        if w <= acc {
            let d = Normal::new(c, s).expect("valid normal");
            return d.sample(rng).clamp(-180.0, 180.0);
        }
    }
    rng.gen_range(-180.0..180.0)
}

fn gen_longitude(n: usize, rng: &mut StdRng) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let lon = sample_longitude(rng);
            // Fixed-point scale (like OSM: degrees * 1e7) with dithering so
            // keys are distinct.
            let fixed = ((lon + 180.0) * 1e16) as u64;
            fixed + rng.gen_range(0..1_000_000u64)
        })
        .collect()
}

fn gen_longlat(n: usize, rng: &mut StdRng) -> Vec<u64> {
    // SOSD's longlat combines both coordinates into one key; high bits are
    // longitude bands, low bits latitude, giving a coarser staircase.
    (0..n)
        .map(|_| {
            let lon = sample_longitude(rng);
            let lat = Normal::new(30.0f64, 18.0)
                .expect("valid normal")
                .sample(rng)
                .clamp(-90.0, 90.0);
            let hi = ((lon + 180.0) * 1e6) as u64; // ~2^28 range
            let lo = ((lat + 90.0) * 1e7) as u64; // ~2^31 range
            (hi << 31) | (lo & 0x7fff_ffff)
        })
        .collect()
}

fn gen_books(n: usize, rng: &mut StdRng) -> Vec<u64> {
    // Lognormal sales-rank-like values: mass concentrated at small keys.
    let d = LogNormal::new(0.0, 2.3).expect("valid lognormal");
    (0..n)
        .map(|_| {
            let v = d.sample(rng); // heavy-tailed positive float
            (v * 1e12) as u64
        })
        .collect()
}

fn gen_fb(n: usize, rng: &mut StdRng) -> Vec<u64> {
    // ~99.9% of IDs uniform in a dense range, 0.1% extreme outliers far
    // above — reproducing SOSD fb's "linear with a broken tail" CDF.
    let dense_top = KEY_SPACE / 1024;
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < 0.999 {
                rng.gen_range(0..dense_top)
            } else {
                rng.gen_range(dense_top..KEY_SPACE)
            }
        })
        .collect()
}

fn gen_wiki(n: usize, rng: &mut StdRng) -> Vec<u64> {
    // Timestamp-like: monotone walk with mostly-small increments and
    // occasional bursts (edit storms) / lulls.
    let mut keys = Vec::with_capacity(n);
    let mut t: u64 = 1_000_000_000;
    for _ in 0..n {
        let r: f64 = rng.gen();
        let step = if r < 0.80 {
            rng.gen_range(1..=3u64)
        } else if r < 0.97 {
            rng.gen_range(3..=40u64)
        } else {
            rng.gen_range(1_000..=50_000u64)
        };
        t += step;
        keys.push(t);
    }
    keys
}

/// Sort, dedup, and top up with fresh uniform keys until exactly `n` distinct
/// keys remain.
fn dedup_to_exactly(keys: &mut Vec<u64>, n: usize, rng: &mut StdRng) {
    keys.sort_unstable();
    keys.dedup();
    while keys.len() < n {
        let missing = n - keys.len();
        for _ in 0..missing {
            keys.push(rng.gen_range(0..KEY_SPACE));
        }
        keys.sort_unstable();
        keys.dedup();
    }
    keys.truncate(n);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_basic(d: Dataset) {
        let keys = d.generate(10_000, 42);
        assert_eq!(keys.len(), 10_000, "{d}");
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "{d} not strictly sorted"
        );
        assert!(*keys.last().unwrap() < (1 << 63), "{d} exceeds key space");
    }

    #[test]
    fn all_datasets_generate_sorted_distinct() {
        for d in Dataset::ALL {
            check_basic(d);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for d in Dataset::ALL {
            assert_eq!(d.generate(1000, 7), d.generate(1000, 7), "{d}");
            assert_ne!(d.generate(1000, 7), d.generate(1000, 8), "{d}");
        }
    }

    #[test]
    fn datasets_differ_from_each_other() {
        let a = Dataset::Random.generate(1000, 1);
        let b = Dataset::Books.generate(1000, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn books_is_head_heavy() {
        let keys = Dataset::Books.generate(100_000, 3);
        // Median key should be far below the midpoint of the key range.
        let median = keys[keys.len() / 2];
        let max = *keys.last().unwrap();
        assert!(
            median < max / 100,
            "lognormal should concentrate mass at small keys: median={median} max={max}"
        );
    }

    #[test]
    fn fb_has_dense_body_and_outlier_tail() {
        let keys = Dataset::Fb.generate(100_000, 3);
        let p999 = keys[(keys.len() as f64 * 0.998) as usize];
        let max = *keys.last().unwrap();
        assert!(
            max > p999 * 100,
            "fb tail should jump: p998={p999} max={max}"
        );
    }

    #[test]
    fn wiki_is_near_arithmetic() {
        let keys = Dataset::Wiki.generate(100_000, 3);
        let span = keys.last().unwrap() - keys.first().unwrap();
        // Average gap is small relative to the uniform key space.
        assert!(span / (keys.len() as u64) < 1_000);
    }

    #[test]
    fn segment_has_plateaus() {
        let keys = Dataset::Segment.generate(100_000, 3);
        // Count adjacent gaps of <= 8 (within-run) vs large gaps (between runs).
        let small = keys.windows(2).filter(|w| w[1] - w[0] <= 8).count();
        assert!(
            small > keys.len() / 2,
            "most adjacent pairs should be within dense runs: {small}"
        );
    }

    #[test]
    fn from_name_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::from_name(d.name()), Some(d));
        }
        assert_eq!(Dataset::from_name("nope"), None);
    }
}
