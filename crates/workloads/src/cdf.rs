//! Empirical CDF sampling (paper Figure 5).
//!
//! Figure 5 plots the cumulative distribution of each dataset's keys. A
//! learned index is exactly a compressed approximation of this CDF, so the
//! figure doubles as intuition for which datasets are hard to model.

/// One point of an empirical CDF: at `key`, `fraction` of keys are ≤ it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfSample {
    pub key: u64,
    pub fraction: f64,
}

/// Sample `points` evenly spaced points of the empirical CDF of sorted `keys`.
///
/// The first point is the minimum key (fraction ≈ 0) and the last is the
/// maximum key (fraction = 1).
pub fn sample_cdf(keys: &[u64], points: usize) -> Vec<CdfSample> {
    assert!(points >= 2, "need at least the two endpoints");
    if keys.is_empty() {
        return Vec::new();
    }
    let n = keys.len();
    (0..points)
        .map(|i| {
            let idx = if i == points - 1 {
                n - 1
            } else {
                i * (n - 1) / (points - 1)
            };
            CdfSample {
                key: keys[idx],
                fraction: (idx + 1) as f64 / n as f64,
            }
        })
        .collect()
}

/// Normalised-key CDF: maps keys to \[0,1\] by min/max so different datasets
/// plot on a common x-axis, as in the paper's figure.
pub fn sample_normalized_cdf(keys: &[u64], points: usize) -> Vec<(f64, f64)> {
    let samples = sample_cdf(keys, points);
    if samples.is_empty() {
        return Vec::new();
    }
    let lo = keys[0] as f64;
    let hi = *keys.last().expect("non-empty") as f64;
    let span = (hi - lo).max(1.0);
    samples
        .into_iter()
        .map(|s| ((s.key as f64 - lo) / span, s.fraction))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_are_min_and_max() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        let cdf = sample_cdf(&keys, 11);
        assert_eq!(cdf.first().unwrap().key, 0);
        assert_eq!(cdf.last().unwrap().key, 999 * 3);
        assert!((cdf.last().unwrap().fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fractions_monotone() {
        let keys: Vec<u64> = (0..500).map(|i| i * i).collect();
        let cdf = sample_cdf(&keys, 20);
        assert!(cdf.windows(2).all(|w| w[0].fraction <= w[1].fraction));
        assert!(cdf.windows(2).all(|w| w[0].key <= w[1].key));
    }

    #[test]
    fn uniform_keys_give_diagonal_normalized_cdf() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 1000).collect();
        for (x, y) in sample_normalized_cdf(&keys, 50) {
            assert!((x - y).abs() < 0.01, "({x},{y}) should sit on diagonal");
        }
    }

    #[test]
    fn empty_keys_empty_cdf() {
        assert!(sample_cdf(&[], 10).is_empty());
        assert!(sample_normalized_cdf(&[], 10).is_empty());
    }
}
