//! Workload generation for the learned-LSM testbed.
//!
//! The paper evaluates on seven datasets produced by the SOSD benchmark
//! (Random, Segment, Longitude, Longlat, Books, FB, Wiki — Figure 5 shows
//! their CDFs), with 6.4 M key-value pairs of 24-byte keys and 1000-byte
//! values, plus six YCSB workloads (A–F) for the mixed-workload experiment
//! (Figure 12). The real SOSD datasets are derived from proprietary or bulky
//! sources (Amazon sales ranks, Facebook user IDs, OSM coordinates, Wikipedia
//! edit timestamps), so this crate ships synthetic generators that reproduce
//! each dataset's *CDF character* — the only property a learned index sees.
//!
//! All generators are deterministic given a seed.

pub mod cdf;
pub mod datasets;
pub mod dist;
pub mod kv;
pub mod ycsb;

pub use cdf::CdfSample;
pub use datasets::Dataset;
pub use dist::{KeyChooser, RequestDistribution};
pub use kv::{decode_key, encode_key, value_for_key, KeyBytes, KEY_LEN};
pub use ycsb::{Op, YcsbSpec, YcsbWorkload};
