//! YCSB core workloads A–F (paper Figure 12).
//!
//! * **A** — update heavy: 50% reads / 50% updates, zipfian.
//! * **B** — read mostly: 95% reads / 5% updates, zipfian.
//! * **C** — read only: 100% reads, zipfian.
//! * **D** — read latest: 95% reads (latest distribution) / 5% inserts.
//! * **E** — short ranges: 95% scans (length uniform in 1..=100) / 5% inserts.
//! * **F** — read-modify-write: 50% reads / 50% RMW, zipfian.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::{KeyChooser, RequestDistribution};

/// One operation of a YCSB stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point lookup.
    Read(u64),
    /// Overwrite an existing key.
    Update(u64),
    /// Insert a brand-new key.
    Insert(u64),
    /// Range scan of `len` entries starting at the key.
    Scan(u64, usize),
    /// Read-modify-write on one key.
    ReadModifyWrite(u64),
}

impl Op {
    /// The primary key the operation touches.
    pub fn key(&self) -> u64 {
        match *self {
            Op::Read(k)
            | Op::Update(k)
            | Op::Insert(k)
            | Op::Scan(k, _)
            | Op::ReadModifyWrite(k) => k,
        }
    }

    /// Whether the operation mutates the store.
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Update(_) | Op::Insert(_) | Op::ReadModifyWrite(_))
    }
}

/// Which YCSB core workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbSpec {
    A,
    B,
    C,
    D,
    E,
    F,
}

impl YcsbSpec {
    /// All six workloads.
    pub const ALL: [YcsbSpec; 6] = [
        YcsbSpec::A,
        YcsbSpec::B,
        YcsbSpec::C,
        YcsbSpec::D,
        YcsbSpec::E,
        YcsbSpec::F,
    ];

    /// Workload letter, e.g. `"A"`.
    pub fn name(&self) -> &'static str {
        match self {
            YcsbSpec::A => "A",
            YcsbSpec::B => "B",
            YcsbSpec::C => "C",
            YcsbSpec::D => "D",
            YcsbSpec::E => "E",
            YcsbSpec::F => "F",
        }
    }

    fn read_fraction(&self) -> f64 {
        match self {
            YcsbSpec::A => 0.5,
            YcsbSpec::B => 0.95,
            YcsbSpec::C => 1.0,
            YcsbSpec::D => 0.95,
            YcsbSpec::E => 0.95, // scans
            YcsbSpec::F => 0.5,
        }
    }
}

/// Stateful generator of a YCSB operation stream over a loaded key set.
///
/// Inserts draw fresh keys from gaps between existing keys so they are unique
/// and follow the dataset's distribution; the "latest" distribution tracks
/// insertion recency as YCSB does.
#[derive(Debug)]
pub struct YcsbWorkload {
    spec: YcsbSpec,
    /// Loaded keys, sorted ascending. Inserted keys are appended (kept
    /// separately to preserve recency order for the latest distribution).
    keys: Vec<u64>,
    inserted: Vec<u64>,
    chooser: KeyChooser,
    scan_max: usize,
    rng: StdRng,
}

impl YcsbWorkload {
    /// Default zipfian/latest skew used by YCSB.
    pub const DEFAULT_THETA: f64 = 0.99;

    /// Build a workload over `keys` (must be sorted, distinct, non-empty).
    pub fn new(spec: YcsbSpec, keys: Vec<u64>, seed: u64) -> Self {
        assert!(!keys.is_empty(), "YCSB needs a loaded key set");
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        let dist = match spec {
            YcsbSpec::D => RequestDistribution::Latest {
                theta: Self::DEFAULT_THETA,
            },
            _ => RequestDistribution::Zipfian {
                theta: Self::DEFAULT_THETA,
            },
        };
        let chooser = dist.chooser(keys.len());
        Self {
            spec,
            keys,
            inserted: Vec::new(),
            chooser,
            scan_max: 100,
            rng: StdRng::seed_from_u64(seed ^ 0x5ca1ab1e),
        }
    }

    /// The workload spec.
    pub fn spec(&self) -> YcsbSpec {
        self.spec
    }

    /// The loaded key set (sorted ascending; freshly inserted keys are
    /// tracked separately). This is what a store must contain before the
    /// run phase starts.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Every `stride`-th loaded key — the thin key sample a sharded
    /// engine's learned range router trains its CDF model on (the sampled
    /// load is the router's view of the key distribution).
    pub fn router_sample(&self, stride: usize) -> Vec<u64> {
        self.keys.iter().copied().step_by(stride.max(1)).collect()
    }

    fn pick_existing(&mut self) -> u64 {
        let pos = self.chooser.next(&mut self.rng);
        if matches!(self.chooser, KeyChooser::Latest(_)) {
            // Rank 0 = newest. Newest items are the tail of `inserted`,
            // then the tail of the loaded keys.
            if pos < self.inserted.len() {
                return self.inserted[self.inserted.len() - 1 - pos];
            }
            let pos = pos - self.inserted.len();
            let idx = self.keys.len().saturating_sub(1 + pos);
            return self.keys[idx];
        }
        self.keys[pos]
    }

    fn fresh_key(&mut self) -> u64 {
        // Midpoint of a random gap between neighbouring loaded keys; retries
        // until a gap with room is found (always terminates for distinct keys
        // spanning more than `n` values).
        loop {
            let i = self.rng.gen_range(0..self.keys.len());
            let lo = self.keys[i];
            let hi = if i + 1 < self.keys.len() {
                self.keys[i + 1]
            } else {
                lo.saturating_add(1 << 20)
            };
            if hi - lo > 1 {
                let k = lo + self.rng.gen_range(1..hi - lo);
                if self.keys.binary_search(&k).is_err() && !self.inserted.contains(&k) {
                    return k;
                }
            }
        }
    }

    /// Generate the next operation.
    pub fn next_op(&mut self) -> Op {
        let r: f64 = self.rng.gen();
        let read = r < self.spec.read_fraction();
        match self.spec {
            YcsbSpec::A | YcsbSpec::B => {
                let k = self.pick_existing();
                if read {
                    Op::Read(k)
                } else {
                    Op::Update(k)
                }
            }
            YcsbSpec::C => Op::Read(self.pick_existing()),
            YcsbSpec::D => {
                if read {
                    Op::Read(self.pick_existing())
                } else {
                    let k = self.fresh_key();
                    self.inserted.push(k);
                    Op::Insert(k)
                }
            }
            YcsbSpec::E => {
                if read {
                    let len = self.rng.gen_range(1..=self.scan_max);
                    Op::Scan(self.pick_existing(), len)
                } else {
                    let k = self.fresh_key();
                    self.inserted.push(k);
                    Op::Insert(k)
                }
            }
            YcsbSpec::F => {
                let k = self.pick_existing();
                if read {
                    Op::Read(k)
                } else {
                    Op::ReadModifyWrite(k)
                }
            }
        }
    }

    /// Generate `n` operations.
    pub fn take(&mut self, n: usize) -> Vec<Op> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 1000).collect()
    }

    fn mix(spec: YcsbSpec, n: usize) -> (usize, usize, usize, usize, usize) {
        let mut w = YcsbWorkload::new(spec, keys(1000), 1);
        let (mut r, mut u, mut i, mut s, mut rmw) = (0, 0, 0, 0, 0);
        for op in w.take(n) {
            match op {
                Op::Read(_) => r += 1,
                Op::Update(_) => u += 1,
                Op::Insert(_) => i += 1,
                Op::Scan(_, _) => s += 1,
                Op::ReadModifyWrite(_) => rmw += 1,
            }
        }
        (r, u, i, s, rmw)
    }

    #[test]
    fn workload_a_is_half_reads() {
        let (r, u, i, s, rmw) = mix(YcsbSpec::A, 10_000);
        assert!((4_500..=5_500).contains(&r), "reads {r}");
        assert_eq!(r + u, 10_000);
        assert_eq!(i + s + rmw, 0);
    }

    #[test]
    fn workload_c_is_read_only() {
        let (r, u, i, s, rmw) = mix(YcsbSpec::C, 5_000);
        assert_eq!(r, 5_000);
        assert_eq!(u + i + s + rmw, 0);
    }

    #[test]
    fn workload_d_inserts_fresh_keys() {
        let mut w = YcsbWorkload::new(YcsbSpec::D, keys(1000), 3);
        let mut seen = std::collections::HashSet::new();
        for op in w.take(5_000) {
            if let Op::Insert(k) = op {
                assert!(seen.insert(k), "duplicate insert {k}");
                assert!(!(0..1000).map(|i| i * 1000).any(|x| x == k));
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn workload_e_scans_bounded() {
        let mut w = YcsbWorkload::new(YcsbSpec::E, keys(1000), 4);
        let mut scans = 0;
        for op in w.take(2_000) {
            if let Op::Scan(_, len) = op {
                scans += 1;
                assert!((1..=100).contains(&len));
            }
        }
        assert!(scans > 1_500, "E should be scan-heavy: {scans}");
    }

    #[test]
    fn workload_f_has_rmw() {
        let (r, _, _, _, rmw) = mix(YcsbSpec::F, 10_000);
        assert!(rmw > 4_000, "rmw {rmw}");
        assert!(r > 4_000);
    }

    #[test]
    fn ops_expose_key_and_write_flag() {
        assert_eq!(Op::Read(7).key(), 7);
        assert!(!Op::Read(7).is_write());
        assert!(Op::Update(1).is_write());
        assert!(Op::Insert(1).is_write());
        assert!(Op::ReadModifyWrite(1).is_write());
        assert!(!Op::Scan(1, 10).is_write());
    }

    #[test]
    fn deterministic_stream() {
        let mut a = YcsbWorkload::new(YcsbSpec::A, keys(100), 9);
        let mut b = YcsbWorkload::new(YcsbSpec::A, keys(100), 9);
        assert_eq!(a.take(500), b.take(500));
    }
}
