//! Request distributions: which of the loaded keys a lookup targets.
//!
//! The paper uses a uniform request distribution for the main sweeps,
//! a "read-latest" distribution for Figure 10(B), and YCSB's zipfian /
//! latest distributions for Figure 12.

use rand::rngs::StdRng;
use rand::Rng;

/// Request distribution kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestDistribution {
    /// Every loaded key equally likely.
    Uniform,
    /// YCSB-style zipfian over key *positions* with the given theta
    /// (YCSB default 0.99).
    Zipfian { theta: f64 },
    /// Skewed toward the most recently inserted keys (YCSB "latest").
    Latest { theta: f64 },
    /// All requests fall in the hottest `hot_fraction` of positions with
    /// probability `hot_prob` (hotspot distribution).
    HotSpot { hot_fraction: f64, hot_prob: f64 },
}

impl RequestDistribution {
    /// Build a chooser over `n` items.
    pub fn chooser(&self, n: usize) -> KeyChooser {
        assert!(n > 0, "cannot choose from an empty key set");
        match *self {
            RequestDistribution::Uniform => KeyChooser::Uniform { n },
            RequestDistribution::Zipfian { theta } => {
                KeyChooser::Zipfian(ZipfianGen::new(n, theta))
            }
            RequestDistribution::Latest { theta } => KeyChooser::Latest(ZipfianGen::new(n, theta)),
            RequestDistribution::HotSpot {
                hot_fraction,
                hot_prob,
            } => KeyChooser::HotSpot {
                n,
                hot_n: ((n as f64 * hot_fraction) as usize).max(1),
                hot_prob,
            },
        }
    }
}

/// Stateful sampler of key positions in `[0, n)`.
#[derive(Debug, Clone)]
pub enum KeyChooser {
    Uniform {
        n: usize,
    },
    Zipfian(ZipfianGen),
    Latest(ZipfianGen),
    HotSpot {
        n: usize,
        hot_n: usize,
        hot_prob: f64,
    },
}

impl KeyChooser {
    /// Sample a position in `[0, n)`. For [`KeyChooser::Latest`], position 0
    /// denotes the *newest* item (callers map it onto their insertion order).
    pub fn next(&self, rng: &mut StdRng) -> usize {
        match self {
            KeyChooser::Uniform { n } => rng.gen_range(0..*n),
            KeyChooser::Zipfian(z) => z.sample(rng),
            KeyChooser::Latest(z) => z.sample(rng),
            KeyChooser::HotSpot { n, hot_n, hot_prob } => {
                if rng.gen::<f64>() < *hot_prob {
                    rng.gen_range(0..*hot_n)
                } else {
                    rng.gen_range(0..*n)
                }
            }
        }
    }

    /// Number of positions this chooser samples from.
    pub fn len(&self) -> usize {
        match self {
            KeyChooser::Uniform { n } => *n,
            KeyChooser::Zipfian(z) | KeyChooser::Latest(z) => z.n,
            KeyChooser::HotSpot { n, .. } => *n,
        }
    }

    /// Whether the underlying item set is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// YCSB's zipfian generator (Gray et al.'s rejection-free method with
/// precomputed zeta), sampling ranks in `[0, n)` where rank 0 is hottest.
#[derive(Debug, Clone)]
pub struct ZipfianGen {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    threshold: f64,
}

impl ZipfianGen {
    /// Precompute constants for `n` items with skew `theta` in (0, 1).
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0);
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0,1): got {theta}"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            threshold: 1.0 + 0.5f64.powf(theta),
        }
    }

    /// Sample a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < self.threshold {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        rank.min(self.n - 1)
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

fn zeta(n: usize, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(chooser: &KeyChooser, samples: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(99);
        let mut h = vec![0usize; chooser.len()];
        for _ in 0..samples {
            h[chooser.next(&mut rng)] += 1;
        }
        h
    }

    #[test]
    fn uniform_covers_range() {
        let c = RequestDistribution::Uniform.chooser(100);
        let h = histogram(&c, 100_000);
        assert!(
            h.iter().all(|&x| x > 500),
            "uniform should hit every bucket"
        );
    }

    #[test]
    fn zipfian_is_skewed_to_low_ranks() {
        let c = RequestDistribution::Zipfian { theta: 0.99 }.chooser(1000);
        let h = histogram(&c, 200_000);
        let head: usize = h[..10].iter().sum();
        assert!(
            head > 200_000 / 3,
            "top-10 ranks should get a large share, got {head}"
        );
        // Monotone-ish decrease from rank 0 to rank 500.
        assert!(h[0] > h[500]);
    }

    #[test]
    fn zipfian_within_bounds() {
        let z = ZipfianGen::new(10, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn hotspot_concentrates() {
        let c = RequestDistribution::HotSpot {
            hot_fraction: 0.1,
            hot_prob: 0.9,
        }
        .chooser(1000);
        let h = histogram(&c, 100_000);
        let hot: usize = h[..100].iter().sum();
        assert!(
            hot > 85_000,
            "hot set should absorb ~91% of requests: {hot}"
        );
    }

    #[test]
    fn single_item_always_zero() {
        let c = RequestDistribution::Zipfian { theta: 0.99 }.chooser(1);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(c.next(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty key set")]
    fn empty_chooser_panics() {
        let _ = RequestDistribution::Uniform.chooser(0);
    }
}
