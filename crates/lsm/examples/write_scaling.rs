//! Scaling probe (dev aid, not a bench): raw skiplist insert throughput by
//! thread count, then group-commit fusion stats for durable writes on the
//! simulated device.

use std::sync::Arc;
use std::time::Instant;

use lsm_tree::skiplist::SkipList;
use lsm_tree::types::{EntryKind, InternalKey};
use lsm_tree::{Db, Maintenance, Options, WriteBatch, WriteOptions};

fn run_list(threads: usize, total: u64) -> f64 {
    let list = Arc::new(SkipList::new());
    let per = total / threads as u64;
    let t0 = Instant::now();
    let hs: Vec<_> = (0..threads)
        .map(|t| {
            let l = Arc::clone(&list);
            std::thread::spawn(move || {
                let base = t as u64 * per;
                for i in 0..per {
                    let k = base + i;
                    l.insert(
                        InternalKey {
                            user_key: k,
                            seq: k + 1,
                            kind: EntryKind::Put,
                        },
                        vec![7u8; 64],
                        100,
                    );
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    t0.elapsed().as_secs_f64() * 1e3
}

fn run_db(threads: usize) {
    const BATCH: usize = 32;
    const TOTAL_BATCHES: usize = 2_048;
    let o = Options {
        value_width: 64,
        write_buffer_bytes: 256 << 20,
        maintenance: Maintenance::Background {
            flush_threads: 1,
            compaction_threads: 1,
        },
        ..Options::default()
    };
    let db = Arc::new(Db::open_sim(o, lsm_io::CostModel::with_sync_latency(100_000)).unwrap());
    let before_io = db.storage().stats().snapshot();
    let per_thread = TOTAL_BATCHES / threads;
    let t0 = Instant::now();
    let hs: Vec<_> = (0..threads)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let wopts = WriteOptions::durable();
                for r in 0..per_thread {
                    let mut batch = WriteBatch::with_capacity(BATCH);
                    let base = ((t * per_thread + r) * BATCH) as u64;
                    for i in 0..BATCH as u64 {
                        batch.put(base + i, &(base + i).to_le_bytes());
                    }
                    db.write(batch, &wopts).unwrap();
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    let wall = t0.elapsed().as_nanos() as u64;
    let io = db
        .storage()
        .stats()
        .snapshot()
        .since(&before_io)
        .sim_total_ns();
    let s = db.stats().snapshot();
    println!(
        "db threads={threads}: wall {:.2} ms, io {:.2} ms, combined {:.2} ms; groups {} / batches {}, syncs {}, appends {}",
        wall as f64 / 1e6,
        io as f64 / 1e6,
        (wall + io) as f64 / 1e6,
        s.write_groups,
        s.write_batches,
        s.wal_syncs,
        s.wal_appends,
    );
}

fn main() {
    let total = 262_144u64;
    for t in [1usize, 2, 4] {
        let mut best = f64::MAX;
        for _ in 0..3 {
            best = best.min(run_list(t, total));
        }
        println!(
            "list threads={} best={:.2} ms ({:.0} ns/insert)",
            t,
            best,
            best * 1e6 / total as f64
        );
    }
    for t in [1usize, 2, 4] {
        run_db(t);
    }
}
