//! Integration tests for the sharded engine: routing correctness at shard
//! boundaries, cross-shard atomicity, coherent snapshots under concurrent
//! background maintenance, merged-scan ordering, crash recovery through
//! per-shard directories, the exhaustive cross-shard crash-point matrix
//! (every storage-operation boundary of a 3-shard commit, with a second
//! crash at every boundary of the recovery) — plus two acceptance
//! benchmarks (sharded write throughput and learned-routing balance).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use learned_index::IndexKind;
use lsm_io::{CrashStorage, MemStorage, Storage};
use lsm_tree::sharding::imbalance;
use lsm_tree::{
    Db, Maintenance, Options, ShardRouter, ShardedDb, ShardedOptions, ShardingPolicy, WriteBatch,
    WriteOptions,
};
use lsm_workloads::{Dataset, RequestDistribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn base_opts() -> Options {
    let mut o = Options::small_for_tests();
    o.index.kind = IndexKind::Pgm;
    o
}

fn learned_opts(shards: usize, sample: Vec<u64>) -> ShardedOptions {
    ShardedOptions::learned(shards, sample, base_opts())
}

/// Keys 0..4000 sampled → boundaries at 1000, 2000, 3000.
fn dense_sample() -> Vec<u64> {
    (0..4000u64).collect()
}

#[test]
fn cross_shard_batch_roundtrip_and_reopen() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = ShardedDb::open(Arc::clone(&storage), learned_opts(4, dense_sample())).unwrap();
        assert!(db.router().is_range());
        // One batch spanning all four shards.
        let mut batch = WriteBatch::new();
        for k in (0..4000u64).step_by(100) {
            batch.put(k, format!("v{k}").as_bytes());
        }
        let last = db.write(batch, &WriteOptions::default()).unwrap();
        assert_eq!(last, 40, "one contiguous global sequence range");
        assert_eq!(db.latest_visible_seq(), 40);
        for k in (0..4000u64).step_by(100) {
            assert_eq!(db.get(k).unwrap(), Some(format!("v{k}").into_bytes()));
        }
        db.flush().unwrap();
        db.close().unwrap();
    }
    // Reopen from the same storage: the persisted router and the per-shard
    // manifests/WALs must reconstruct the exact same database.
    let db = ShardedDb::open(Arc::clone(&storage), learned_opts(4, dense_sample())).unwrap();
    for k in (0..4000u64).step_by(100) {
        assert_eq!(db.get(k).unwrap(), Some(format!("v{k}").into_bytes()));
    }
    assert!(db.latest_visible_seq() >= 40, "fence resumes past recovery");
    // A different shard count must be refused, not silently misroute.
    drop(db);
    assert!(ShardedDb::open(storage, learned_opts(2, dense_sample())).is_err());
}

#[test]
fn unflushed_synced_writes_survive_reopen() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = ShardedDb::open(Arc::clone(&storage), learned_opts(3, dense_sample())).unwrap();
        let mut batch = WriteBatch::new();
        for k in [10u64, 1500, 3900, 11, 1501] {
            batch.put(k, b"durable");
        }
        db.write(batch, &WriteOptions::durable()).unwrap();
        // Drop without flushing: recovery must come from per-shard WALs.
    }
    let db = ShardedDb::open(storage, learned_opts(3, dense_sample())).unwrap();
    for k in [10u64, 1500, 3900, 11, 1501] {
        assert_eq!(db.get(k).unwrap(), Some(b"durable".to_vec()), "key {k}");
    }
}

#[test]
fn boundary_adjacent_keys_stay_consistent() {
    let db = ShardedDb::open_memory(learned_opts(4, dense_sample())).unwrap();
    let ShardRouter::Range { boundaries, .. } = db.router() else {
        panic!("expected a range router");
    };
    let boundaries = boundaries.clone();
    assert_eq!(boundaries.len(), 3);
    // Write keys exactly at, just below and just above every boundary.
    let mut probes = Vec::new();
    for &b in &boundaries {
        probes.extend([b - 1, b, b + 1]);
    }
    for &k in &probes {
        db.put(k, format!("probe{k}").as_bytes()).unwrap();
    }
    db.flush().unwrap();
    for &k in &probes {
        assert_eq!(
            db.get(k).unwrap(),
            Some(format!("probe{k}").into_bytes()),
            "key {k}"
        );
    }
    // A boundary key belongs to the right-hand shard; its predecessor to
    // the left — and the data actually lives there.
    for (i, &b) in boundaries.iter().enumerate() {
        assert_eq!(db.router().shard_of(b), i + 1);
        assert_eq!(db.router().shard_of(b - 1), i);
        assert_eq!(
            db.shard(i + 1).get(b).unwrap(),
            Some(format!("probe{b}").into_bytes())
        );
        assert_eq!(db.shard(i).get(b).unwrap(), None, "no leakage across {b}");
    }
    // Merged scan crosses the boundaries in order without dup or loss.
    let got = db.scan(0, usize::MAX).unwrap();
    let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
    let mut want = probes.clone();
    want.sort_unstable();
    assert_eq!(keys, want);
}

#[test]
fn tombstones_mask_across_shards() {
    let db = ShardedDb::open_memory(learned_opts(4, dense_sample())).unwrap();
    for k in 0..4000u64 {
        db.put(k, b"live").unwrap();
    }
    // One batch deleting a stripe of keys across every shard.
    let mut batch = WriteBatch::new();
    for k in (0..4000u64).step_by(3) {
        batch.delete(k);
    }
    db.write(batch, &WriteOptions::default()).unwrap();
    db.flush().unwrap();
    assert_eq!(db.get(0).unwrap(), None);
    assert_eq!(db.get(999).unwrap(), None, "shard-0 side of the boundary");
    assert_eq!(
        db.get(1000).unwrap(),
        Some(b"live".to_vec()),
        "boundary key"
    );
    assert_eq!(db.get(3999).unwrap(), None);
    // The merged iterator must skip tombstoned keys in every shard.
    let mut it = db.iter().unwrap();
    it.seek_to_first();
    let got = it.collect_up_to(usize::MAX).unwrap();
    assert_eq!(got.len(), 4000 - 4000 / 3 - 1);
    assert!(got.iter().all(|(k, _)| k % 3 != 0));
    // Globally sorted, strictly increasing.
    assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn merged_iterator_global_order_hash_and_range() {
    for policy in [
        ShardingPolicy::Hash,
        ShardingPolicy::LearnedRange {
            sample: dense_sample(),
            epsilon: 16,
        },
    ] {
        let db = ShardedDb::open_memory(ShardedOptions {
            shards: 4,
            policy: policy.clone(),
            base: base_opts(),
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut reference = std::collections::BTreeMap::new();
        for _ in 0..3000 {
            let k = rng.gen_range(0..4000u64);
            let v = rng.gen::<u64>().to_le_bytes().to_vec();
            db.put(k, &v).unwrap();
            reference.insert(k, v);
        }
        db.flush().unwrap();
        let mut it = db.iter().unwrap();
        it.seek_to_first();
        let got = it.collect_up_to(usize::MAX).unwrap();
        let want: Vec<(u64, Vec<u8>)> = reference.into_iter().collect();
        assert_eq!(got, want, "policy {policy:?}");
        // Mid-range seek matches the reference too.
        let mut it = db.iter().unwrap();
        it.seek(2000).unwrap();
        let tail = it.collect_up_to(10).unwrap();
        let want_tail: Vec<(u64, Vec<u8>)> = want
            .iter()
            .filter(|(k, _)| *k >= 2000)
            .take(10)
            .cloned()
            .collect();
        assert_eq!(tail, want_tail, "policy {policy:?}");
    }
}

fn background_sharded(shards: usize) -> ShardedDb {
    let mut base = base_opts();
    base.maintenance = Maintenance::background();
    ShardedDb::open_memory(ShardedOptions::learned(shards, dense_sample(), base)).unwrap()
}

#[test]
fn sharded_snapshot_is_coherent_and_pinned_across_maintenance() {
    let db = background_sharded(4);
    for k in 0..2000u64 {
        db.put(k * 2, format!("old-{k}").as_bytes()).unwrap();
    }
    let snap = db.snapshot();
    assert_eq!(db.live_snapshots(), 4, "one pin per shard");
    let pinned: Vec<(u64, Vec<u8>)> = {
        let mut it = db.iter_at(&snap).unwrap();
        it.seek_to_first();
        it.collect_up_to(usize::MAX).unwrap()
    };
    assert_eq!(pinned.len(), 2000);
    // Churn: overwrite everything across several flush/compaction rounds
    // while background workers run.
    for round in 0..3u64 {
        for k in 0..2000u64 {
            db.put(k * 2, format!("new-{round}-{k}").as_bytes())
                .unwrap();
        }
        db.flush().unwrap();
    }
    db.wait_for_maintenance();
    assert_eq!(db.background_error(), None);
    // The snapshot view is byte-identical despite the churn.
    for k in (0..2000u64).step_by(41) {
        assert_eq!(
            db.get_at(k * 2, &snap).unwrap(),
            Some(format!("old-{k}").into_bytes()),
            "key {}",
            k * 2
        );
    }
    let mut it = db.iter_at(&snap).unwrap();
    it.seek_to_first();
    assert_eq!(it.collect_up_to(usize::MAX).unwrap(), pinned);
    // The live view moved on.
    assert_eq!(db.get(0).unwrap(), Some(b"new-2-0".to_vec()));
    drop(snap);
    assert_eq!(db.live_snapshots(), 0);
}

/// The fence test: a writer thread commits cross-shard batches where every
/// batch writes the *same* round number to one marker key per shard. Any
/// snapshot, taken at any moment, must observe the same round on all four
/// markers — a mixed view would mean a partially visible batch.
#[test]
fn cross_shard_batches_are_all_or_nothing_visible() {
    let db = Arc::new(background_sharded(4));
    // One marker key per shard (dense_sample boundaries: 1000/2000/3000).
    let markers = [500u64, 1500, 2500, 3500];
    for &m in &markers {
        assert_eq!(db.router().shard_of(m), (m / 1000) as usize);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round: u64 = 0;
            while !stop.load(Ordering::Relaxed) {
                round += 1;
                let mut batch = WriteBatch::new();
                for &m in &markers {
                    batch.put(m, &round.to_le_bytes());
                }
                // Filler traffic so flushes/rotations happen too — odd
                // keys only, so it can never overwrite an (even) marker.
                batch.put((round % 2000) * 2 + 1, b"filler-traffic-filler-traffic");
                db.write(batch, &WriteOptions::default()).unwrap();
            }
            round
        })
    };
    let mut coherent_checks = 0u32;
    let deadline = Instant::now() + std::time::Duration::from_millis(400);
    while Instant::now() < deadline {
        let snap = db.snapshot();
        let rounds: Vec<Option<Vec<u8>>> = markers
            .iter()
            .map(|&m| db.get_at(m, &snap).unwrap())
            .collect();
        if rounds[0].is_none() {
            continue; // nothing committed yet
        }
        assert!(
            rounds.iter().all(|r| *r == rounds[0]),
            "snapshot at fence {} saw a torn cross-shard batch: {rounds:?}",
            snap.seq()
        );
        coherent_checks += 1;
    }
    stop.store(true, Ordering::Relaxed);
    let rounds_written = writer.join().unwrap();
    assert!(rounds_written > 10, "writer made progress");
    assert!(coherent_checks > 10, "checker made progress");
    db.wait_for_maintenance();
    assert_eq!(db.background_error(), None);
    // Final state: all markers agree on the last round.
    let last = db.get(markers[0]).unwrap().unwrap();
    for &m in &markers {
        assert_eq!(db.get(m).unwrap().unwrap(), last);
    }
}

#[test]
fn merged_stats_aggregate_shards() {
    let db = ShardedDb::open_memory(learned_opts(4, dense_sample())).unwrap();
    let mut batch = WriteBatch::new();
    for k in (0..4000u64).step_by(10) {
        batch.put(k, b"s");
    }
    db.write(batch, &WriteOptions::default()).unwrap();
    let s = db.stats();
    assert_eq!(s.write_entries, 400);
    assert_eq!(
        s.write_batches, 4,
        "one group commit per touched shard for a cross-shard batch"
    );
    assert_eq!(s.wal_appends, 4);
    for k in (0..4000u64).step_by(100) {
        db.get(k).unwrap();
    }
    assert_eq!(db.stats().lookups, 40);
    db.scan(0, 10).unwrap();
    assert_eq!(db.stats().scans, 1);
}

// ------------------------------------------------------ crash atomicity

/// Keys owned by shards 0/1/2 under `dense_sample()` 3-shard boundaries
/// (≈1333 / ≈2666): two per shard, disjoint from every baseline key.
const TARGET_KEYS: [u64; 6] = [700, 701, 1850, 1851, 3650, 3651];

/// Baseline keys are `k * 300` for `k` in this range (all ≡ 0 mod 300;
/// every other key set avoids multiples of 300).
const BASE_KEYS: std::ops::Range<u64> = 0..13;
const PENDING_KEYS: [u64; 3] = [650, 1750, 3550];

fn crash_opts() -> ShardedOptions {
    learned_opts(3, dense_sample())
}

/// Committed state every crash image must preserve: flushed single-shard
/// data plus a sealed-but-unflushed cross-shard batch (so recovery also
/// exercises the committed-prepare path).
fn write_baseline(db: &ShardedDb) {
    for k in BASE_KEYS {
        db.put(k * 300, b"base").unwrap();
    }
    db.flush().unwrap();
    let mut batch = WriteBatch::new();
    for k in PENDING_KEYS {
        batch.put(k, b"pending");
    }
    db.write(batch, &WriteOptions::durable()).unwrap();
}

fn target_batch() -> WriteBatch {
    let mut batch = WriteBatch::new();
    for k in TARGET_KEYS {
        batch.put(k, b"target");
    }
    batch
}

/// All-or-nothing + fence + usability checks on a recovered database.
fn check_recovered(db: &ShardedDb, acked: bool, label: &str) {
    // Committed state is intact.
    for k in BASE_KEYS {
        assert_eq!(
            db.get(k * 300).unwrap(),
            Some(b"base".to_vec()),
            "{label}: lost flushed baseline key {}",
            k * 300
        );
    }
    for k in PENDING_KEYS {
        assert_eq!(
            db.get(k).unwrap(),
            Some(b"pending".to_vec()),
            "{label}: lost committed cross-shard key {k}"
        );
    }
    // The target batch is all-or-nothing.
    let present: Vec<bool> = TARGET_KEYS
        .iter()
        .map(|&k| db.get(k).unwrap() == Some(b"target".to_vec()))
        .collect();
    let all = present.iter().all(|&p| p);
    let none = present.iter().all(|&p| !p);
    assert!(
        all || none,
        "{label}: torn cross-shard batch after recovery: {present:?}"
    );
    if acked {
        assert!(all, "{label}: acknowledged durable batch lost");
    }
    // Fence consistency: a snapshot at the recovered fence observes the
    // same verdict (everything replayed sits at or below the fence).
    let snap = db.snapshot();
    for &k in &TARGET_KEYS {
        assert_eq!(
            db.get_at(k, &snap).unwrap(),
            db.get(k).unwrap(),
            "{label}: fence {} does not cover recovered key {k}",
            snap.seq()
        );
    }
    drop(snap);
    // The engine is fully usable: a fresh cross-shard commit (which
    // re-allocates the aborted sequence range when the batch aborted)
    // lands atomically.
    let mut probe = WriteBatch::new();
    for k in [950u64, 1950, 3850] {
        probe.put(k, b"probe");
    }
    db.write(probe, &WriteOptions::durable())
        .unwrap_or_else(|e| panic!("{label}: recovered engine refused writes: {e}"));
    for k in [950u64, 1950, 3850] {
        assert_eq!(db.get(k).unwrap(), Some(b"probe".to_vec()), "{label}");
    }
}

/// The exhaustive matrix: crash at **every** storage-operation boundary of
/// a 3-shard durable commit, reopen from the frozen image, and require the
/// batch to be all-or-nothing — then re-crash the *recovery* at every one
/// of its own operation boundaries and require the same from a third open.
/// No sampling: every `N` and every `(N, M)` pair runs.
#[test]
fn crash_matrix_every_op_boundary_is_all_or_nothing() {
    // Dry run: how many storage operations one commit spans.
    let (storage, ctl) = CrashStorage::new();
    let db = ShardedDb::open(storage, crash_opts()).unwrap();
    write_baseline(&db);
    let start = ctl.ops();
    db.write(target_batch(), &WriteOptions::durable()).unwrap();
    let total = ctl.ops() - start;
    drop(db);
    assert!(
        total >= 8,
        "a 3-shard durable commit should span ≥ 8 storage ops (3×append + 3×sync \
         + marker append + marker sync), got {total}"
    );

    for n in 0..=total {
        let (storage, ctl) = CrashStorage::new();
        let db = ShardedDb::open(Arc::clone(&storage) as Arc<dyn Storage>, crash_opts()).unwrap();
        write_baseline(&db);
        ctl.crash_after(n);
        let acked = db.write(target_batch(), &WriteOptions::durable()).is_ok();
        assert_eq!(
            acked,
            n >= total,
            "crash point {n}/{total}: ack iff every commit op ran"
        );
        drop(db);

        // Plain recovery from the frozen image.
        let recovered = ShardedDb::open(Arc::new(storage.image()), crash_opts()).unwrap();
        check_recovered(&recovered, acked, &format!("crash at op {n}/{total}"));
        drop(recovered);

        // Second crash: halt the recovery itself at every boundary M, and
        // require the follow-up (unimpeded) open of the twice-crashed
        // image to reach the same all-or-nothing verdict.
        let mut m = 0u64;
        loop {
            assert!(m < 10_000, "recovery never completed (crash {n})");
            let (s2, ctl2) = CrashStorage::over(storage.image());
            ctl2.crash_after(m);
            match ShardedDb::open(Arc::clone(&s2) as Arc<dyn Storage>, crash_opts()) {
                Ok(db2) => {
                    ctl2.disarm();
                    check_recovered(&db2, acked, &format!("crash {n}, recovery used {m}+ ops"));
                    break;
                }
                Err(_) => {
                    let db3 = ShardedDb::open(Arc::new(s2.image()), crash_opts()).unwrap();
                    check_recovered(
                        &db3,
                        acked,
                        &format!("crash {n}, then recovery crash at op {m}"),
                    );
                }
            }
            m += 1;
        }
        eprintln!("crash point {n}/{total}: recovery spans {m} storage ops, all verified");
    }
}

/// A failed cross-shard commit leaves orphaned **unsealed** prepare
/// fragments in the touched shards' memtables. Every flush path — the
/// sharded one and a shard-level `flush` reached through
/// [`ShardedDb::shard`] — must refuse to persist them while the write
/// path is poisoned (an SSTable replays unconditionally, so flushing
/// would bake the torn batch into durable state), and a reopen must
/// abort the batch everywhere.
#[test]
fn flush_after_poisoned_commit_cannot_persist_orphan_fragments() {
    let (storage, ctl) = CrashStorage::new();
    let db = ShardedDb::open(Arc::clone(&storage) as Arc<dyn Storage>, crash_opts()).unwrap();
    write_baseline(&db);
    // Fail the commit right after the first shard's prepare landed, then
    // heal the storage: the process lives on, poisoned.
    ctl.crash_after(1);
    assert!(db.write(target_batch(), &WriteOptions::durable()).is_err());
    ctl.disarm();
    assert!(
        db.flush().is_err(),
        "sharded flush must refuse while poisoned"
    );
    assert!(
        db.shard(0).flush().is_err(),
        "shard-level flush must refuse while poisoned"
    );
    assert!(
        db.shard(0).put(5, b"x").is_err(),
        "shard-level writes must refuse while poisoned (their inline \
         flush could persist the orphan fragment)"
    );
    assert!(db.put(1, b"x").is_err(), "writes stay refused");
    drop(db);
    // Reopen: the unsealed fragment aborted on every shard.
    let db = ShardedDb::open(Arc::new(storage.image()), crash_opts()).unwrap();
    for &k in &TARGET_KEYS {
        assert_eq!(
            db.get(k).unwrap(),
            None,
            "orphan fragment leaked via key {k}"
        );
    }
    check_recovered(&db, false, "poisoned-flush image");
}

/// A prepare record's participant set is load-bearing at recovery: a
/// fragment replayed by a shard the set excludes means a WAL landed in
/// the wrong shard directory (or was tampered with), and resolving it
/// would apply sequence numbers the fence never routed there — the open
/// must fail with corruption instead.
#[test]
fn misplaced_prepare_record_is_detected_as_corruption() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = ShardedDb::open(Arc::clone(&storage), crash_opts()).unwrap();
        // A batch touching shards 0 and 1 only — participants [0, 1].
        let mut batch = WriteBatch::new();
        batch.put(100, b"s0");
        batch.put(1700, b"s1");
        db.write(batch, &WriteOptions::durable()).unwrap();
        // Crash without flush: the prepares sit in the live WALs.
    }
    // Misplace shard-0's log into shard-2's active-WAL slot.
    let frag = lsm_io::read_all(storage.as_ref(), "shard-0/000001.wal").unwrap();
    let mut f = storage.create("shard-2/000001.wal").unwrap();
    f.append(&frag).unwrap();
    drop(f);
    let err = ShardedDb::open(storage, crash_opts())
        .err()
        .expect("misplaced prepare must fail the open");
    match err {
        lsm_tree::Error::Corruption(msg) => {
            assert!(msg.contains("participant set"), "unexpected message: {msg}");
        }
        e => panic!("expected corruption, got: {e}"),
    }
}

/// A snapshot pinned at fence `F` before a crash defines the committed
/// prefix: after the crash (mid-way through the next cross-shard commit)
/// and recovery, the fence must resume at exactly `F` and a fresh snapshot
/// must observe byte-for-byte the pinned contents — nothing of the torn
/// batch, nothing missing.
#[test]
fn snapshot_fence_is_the_committed_prefix_across_recovery() {
    let (storage, ctl) = CrashStorage::new();
    let db = ShardedDb::open(Arc::clone(&storage) as Arc<dyn Storage>, crash_opts()).unwrap();
    write_baseline(&db);
    let snap = db.snapshot();
    let fence = snap.seq();
    let pinned: Vec<(u64, Vec<u8>)> = {
        let mut it = db.iter_at(&snap).unwrap();
        it.seek_to_first();
        it.collect_up_to(usize::MAX).unwrap()
    };
    assert_eq!(pinned.len(), BASE_KEYS.end as usize + PENDING_KEYS.len());

    // Crash after the first shard's prepare landed: a torn commit.
    ctl.crash_after(1);
    assert!(db.write(target_batch(), &WriteOptions::durable()).is_err());
    drop(snap);
    drop(db);

    let db = ShardedDb::open(Arc::new(storage.image()), crash_opts()).unwrap();
    assert_eq!(
        db.recovery_report(),
        lsm_tree::RecoveryReport {
            committed_fragments: PENDING_KEYS.len() as u64,
            aborted_fragments: 1,
        },
        "recovery must re-commit the baseline prepares and abort the torn one"
    );
    assert_eq!(
        db.latest_visible_seq(),
        fence,
        "the fence resumes at the committed prefix (aborted seqs are not replayed)"
    );
    let snap = db.snapshot();
    assert_eq!(snap.seq(), fence);
    let mut it = db.iter_at(&snap).unwrap();
    it.seek_to_first();
    assert_eq!(
        it.collect_up_to(usize::MAX).unwrap(),
        pinned,
        "snapshot at fence {fence} after recovery must equal the pre-crash view"
    );
}

// ------------------------------------------------------------ acceptance

/// Acceptance: on a skewed (zipfian-sampled) key distribution, learned
/// range routing keeps shard sizes within 20% of fair share — where naive
/// uniform key-space cuts collapse almost everything into one shard — and
/// the hash fallback stays balanced too.
#[test]
fn learned_routing_balances_zipfian_keys_within_20pct() {
    // Distinct keys whose *density* follows a zipfian request stream:
    // sample 300k zipf ranks over a 2^20 key space — the surviving
    // distinct keys are dense near zero and sparse in the tail.
    let chooser = RequestDistribution::Zipfian { theta: 0.99 }.chooser(1 << 20);
    let mut rng = StdRng::seed_from_u64(0x21bf);
    let mut keys: Vec<u64> = (0..300_000)
        .map(|_| chooser.next(&mut rng) as u64)
        .collect();
    keys.sort_unstable();
    keys.dedup();
    assert!(keys.len() > 20_000, "enough distinct keys: {}", keys.len());

    // Router trained on a thin sample (every 16th key), graded on all keys.
    let sample: Vec<u64> = keys.iter().copied().step_by(16).collect();
    let learned = ShardRouter::train(
        4,
        &ShardingPolicy::LearnedRange {
            sample,
            epsilon: 32,
        },
    );
    assert!(learned.is_range(), "sample is large enough to cut");
    let learned_imb = imbalance(&learned.partition_counts(&keys));
    assert!(
        learned_imb <= 0.20,
        "learned range routing imbalance {learned_imb:.3} > 20%"
    );

    // Naive uniform key-space cuts on the same keys: heavily unbalanced.
    let max = *keys.last().unwrap();
    let uniform = ShardRouter::Range {
        boundaries: (1..4u64).map(|i| i * (max / 4)).collect(),
        model: None,
        sample_len: 0,
    };
    let uniform_imb = imbalance(&uniform.partition_counts(&keys));
    assert!(
        uniform_imb > 2.0 * learned_imb.max(0.05),
        "uniform cuts should be far worse: uniform {uniform_imb:.3} vs learned {learned_imb:.3}"
    );

    // The hash fallback balances too (it just can't serve range scans
    // from a shard subset).
    let hash = ShardRouter::train(4, &ShardingPolicy::Hash);
    assert!(imbalance(&hash.partition_counts(&keys)) <= 0.20);

    // End to end: load through a 4-shard ShardedDb and measure resident
    // entries per shard.
    let sample: Vec<u64> = keys.iter().copied().step_by(16).collect();
    let db = ShardedDb::open_memory(ShardedOptions::learned(4, sample, base_opts())).unwrap();
    for chunk in keys.chunks(512) {
        let mut batch = WriteBatch::with_capacity(chunk.len());
        for &k in chunk {
            batch.put(k, b"zipf");
        }
        db.write(batch, &WriteOptions::default()).unwrap();
    }
    db.flush().unwrap();
    let resident = db.shard_entry_counts();
    let resident_imb = imbalance(&resident);
    assert!(
        resident_imb <= 0.20,
        "resident imbalance {resident_imb:.3} > 20%: {resident:?}"
    );
}

/// Acceptance: a 4-shard `ShardedDb` sustains ≥ 1.5× the write throughput
/// of a single `Db` on the same YCSB-style load, background maintenance
/// on, measured in the repo's standard machine-independent convention:
/// **measured CPU + modeled I/O** on the simulated NVMe. The sharded win
/// is structural, not scheduling luck:
///
/// * each shard's tree is shallower (¼ of the data), so compaction
///   rewrites every entry fewer times — less write amplification, less
///   modeled write I/O;
/// * each shard's manifest names ¼ of the tables, so the per-maintenance
///   manifest rewrite (inside the tree lock) shrinks 4×;
/// * per-shard L0 pressure is ~4× lower, so the LevelDB slowdown/stop
///   backpressure rarely brakes the writer.
#[test]
fn four_shards_sustain_1_5x_write_throughput() {
    // Debug builds (tier-1 `cargo test -q`) pay ~10x the CPU per entry;
    // a smaller load keeps the test quick there while release keeps the
    // full-size workload. The structural gap (write amplification,
    // manifest length, backpressure) holds at both sizes.
    const KEYS: usize = if cfg!(debug_assertions) {
        12_000
    } else {
        30_000
    };
    const BATCH: usize = 8;
    fn tight_opts() -> Options {
        let mut o = Options::small_for_tests();
        o.index.kind = IndexKind::Pgm;
        o.value_width = 64;
        o.write_buffer_bytes = 8 << 10;
        o.sstable_target_bytes = 4 << 10;
        // Same *global* worker budget for both configurations. A single
        // tree cannot exploit the second flush thread (L0 installation is
        // strictly oldest-first, one claim at a time); four shards can.
        o.maintenance = Maintenance::Background {
            flush_threads: 2,
            compaction_threads: 2,
        };
        o.l0_compaction_trigger = 2;
        o.l0_slowdown_trigger = 6;
        o.l0_stop_trigger = 20;
        o.max_immutable_memtables = 4;
        o
    }
    // YCSB load phase: the dataset keys in random order, batched writes.
    let keys = Dataset::Random.generate(KEYS, 0x5eed);
    let mut order: Vec<u64> = keys.clone();
    let mut rng = StdRng::seed_from_u64(0x10ad);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let value = vec![7u8; 64];

    // Wall time of the load (stalls included) + the storage's modeled
    // read/write nanoseconds — the same headline every bench in this repo
    // reports.
    let load = |order: &[u64],
                write: &dyn Fn(WriteBatch) -> u64,
                close: &dyn Fn() -> (u64, u64)|
     -> (u128, u64) {
        let wall = Instant::now();
        for chunk in order.chunks(BATCH) {
            let mut batch = WriteBatch::with_capacity(chunk.len());
            for &k in chunk {
                batch.put(k, &value);
            }
            write(batch);
        }
        let cpu = wall.elapsed().as_nanos();
        let (io_ns, _) = close();
        (cpu, io_ns)
    };

    let run_single = || -> (u128, u64) {
        let db = Db::open_sim(tight_opts(), lsm_io::CostModel::default()).unwrap();
        let wopts = WriteOptions::default();
        let out = load(&order, &|b| db.write(b, &wopts).unwrap(), &|| {
            let io = db.storage().stats().snapshot();
            (io.sim_total_ns(), 0)
        });
        db.close().unwrap();
        out
    };
    let run_sharded = || -> (u128, u64) {
        // Identical per-shard options and the same shared 2+2 worker
        // budget; boundaries learned from a sample of the keys.
        let sample: Vec<u64> = keys.iter().copied().step_by(8).collect();
        let db = ShardedDb::open_sim(
            ShardedOptions::learned(4, sample, tight_opts()),
            lsm_io::CostModel::default(),
        )
        .unwrap();
        let wopts = WriteOptions::default();
        let out = load(&order, &|b| db.write(b, &wopts).unwrap(), &|| {
            let io = db.shard(0).storage().stats().snapshot();
            (io.sim_total_ns(), 0)
        });
        db.close().unwrap();
        out
    };

    // Median of three interleaved runs per configuration: one noisy
    // outlier (CI neighbours, a parallel test hogging the core) must not
    // decide the test.
    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs[xs.len() / 2]
    };
    let (mut singles, mut shardeds) = (Vec::new(), Vec::new());
    let (mut single_parts, mut sharded_parts) = ((0, 0), (0, 0));
    for _ in 0..3 {
        let (cpu, io) = run_single();
        singles.push(cpu as f64 + io as f64);
        single_parts = (cpu, io);
        let (cpu, io) = run_sharded();
        shardeds.push(cpu as f64 + io as f64);
        sharded_parts = (cpu, io);
    }
    let single_ns = median(&mut singles);
    let sharded_ns = median(&mut shardeds);
    let speedup = single_ns / sharded_ns;
    eprintln!(
        "sharded write throughput (cpu + modeled io): single {:.1} ms (cpu {:.1} + io {:.1}), \
         4 shards {:.1} ms (cpu {:.1} + io {:.1}), speedup {speedup:.2}x",
        single_ns / 1e6,
        single_parts.0 as f64 / 1e6,
        single_parts.1 as f64 / 1e6,
        sharded_ns / 1e6,
        sharded_parts.0 as f64 / 1e6,
        sharded_parts.1 as f64 / 1e6,
    );
    assert!(
        speedup >= 1.5,
        "4-shard speedup {speedup:.2}x < 1.5x (single {:.2} ms, sharded {:.2} ms)",
        single_ns / 1e6,
        sharded_ns / 1e6
    );
}
