//! Integration tests for the sharded engine: routing correctness at shard
//! boundaries, cross-shard atomicity, coherent snapshots under concurrent
//! background maintenance, merged-scan ordering, crash recovery through
//! per-shard directories, the exhaustive cross-shard crash-point matrix
//! (every storage-operation boundary of a 3-shard commit, with a second
//! crash at every boundary of the recovery) — plus two acceptance
//! benchmarks (sharded write throughput and learned-routing balance).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use learned_index::IndexKind;
use lsm_io::{CrashStorage, MemStorage, Storage};
use lsm_tree::sharding::imbalance;
use lsm_tree::{
    Db, Maintenance, Options, ShardRouter, ShardedDb, ShardedOptions, ShardingPolicy, WriteBatch,
    WriteOptions,
};
use lsm_workloads::{Dataset, RequestDistribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn base_opts() -> Options {
    let mut o = Options::small_for_tests();
    o.index.kind = IndexKind::Pgm;
    o
}

fn learned_opts(shards: usize, sample: Vec<u64>) -> ShardedOptions {
    ShardedOptions::learned(shards, sample, base_opts())
}

/// Keys 0..4000 sampled → boundaries at 1000, 2000, 3000.
fn dense_sample() -> Vec<u64> {
    (0..4000u64).collect()
}

#[test]
fn cross_shard_batch_roundtrip_and_reopen() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = ShardedDb::open(Arc::clone(&storage), learned_opts(4, dense_sample())).unwrap();
        assert!(db.routing().router().is_range());
        // One batch spanning all four shards.
        let mut batch = WriteBatch::new();
        for k in (0..4000u64).step_by(100) {
            batch.put(k, format!("v{k}").as_bytes());
        }
        let last = db.write(batch, &WriteOptions::default()).unwrap();
        assert_eq!(last, 40, "one contiguous global sequence range");
        assert_eq!(db.latest_visible_seq(), 40);
        for k in (0..4000u64).step_by(100) {
            assert_eq!(db.get(k).unwrap(), Some(format!("v{k}").into_bytes()));
        }
        db.flush().unwrap();
        db.close().unwrap();
    }
    // Reopen from the same storage: the persisted router and the per-shard
    // manifests/WALs must reconstruct the exact same database.
    let db = ShardedDb::open(Arc::clone(&storage), learned_opts(4, dense_sample())).unwrap();
    for k in (0..4000u64).step_by(100) {
        assert_eq!(db.get(k).unwrap(), Some(format!("v{k}").into_bytes()));
    }
    assert!(db.latest_visible_seq() >= 40, "fence resumes past recovery");
    // Reopening with a *different* requested count adopts the persisted
    // topology — the shard count is a property of the data, not of the
    // open call (requested counts only size a fresh database).
    drop(db);
    let db = ShardedDb::open(storage, learned_opts(2, dense_sample())).unwrap();
    assert_eq!(db.shard_count(), 4, "persisted topology wins");
    for k in (0..4000u64).step_by(100) {
        assert_eq!(db.get(k).unwrap(), Some(format!("v{k}").into_bytes()));
    }
}

#[test]
fn unflushed_synced_writes_survive_reopen() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = ShardedDb::open(Arc::clone(&storage), learned_opts(3, dense_sample())).unwrap();
        let mut batch = WriteBatch::new();
        for k in [10u64, 1500, 3900, 11, 1501] {
            batch.put(k, b"durable");
        }
        db.write(batch, &WriteOptions::durable()).unwrap();
        // Drop without flushing: recovery must come from per-shard WALs.
    }
    let db = ShardedDb::open(storage, learned_opts(3, dense_sample())).unwrap();
    for k in [10u64, 1500, 3900, 11, 1501] {
        assert_eq!(db.get(k).unwrap(), Some(b"durable".to_vec()), "key {k}");
    }
}

#[test]
fn boundary_adjacent_keys_stay_consistent() {
    let db = ShardedDb::open_memory(learned_opts(4, dense_sample())).unwrap();
    let routing = db.routing();
    let ShardRouter::Range { boundaries, .. } = routing.router() else {
        panic!("expected a range router");
    };
    let boundaries = boundaries.clone();
    assert_eq!(boundaries.len(), 3);
    // Write keys exactly at, just below and just above every boundary.
    let mut probes = Vec::new();
    for &b in &boundaries {
        probes.extend([b - 1, b, b + 1]);
    }
    for &k in &probes {
        db.put(k, format!("probe{k}").as_bytes()).unwrap();
    }
    db.flush().unwrap();
    for &k in &probes {
        assert_eq!(
            db.get(k).unwrap(),
            Some(format!("probe{k}").into_bytes()),
            "key {k}"
        );
    }
    // A boundary key belongs to the right-hand shard; its predecessor to
    // the left — and the data actually lives there.
    for (i, &b) in boundaries.iter().enumerate() {
        assert_eq!(routing.router().shard_of(b), i + 1);
        assert_eq!(routing.router().shard_of(b - 1), i);
        assert_eq!(
            db.shard(i + 1).get(b).unwrap(),
            Some(format!("probe{b}").into_bytes())
        );
        assert_eq!(db.shard(i).get(b).unwrap(), None, "no leakage across {b}");
    }
    // Merged scan crosses the boundaries in order without dup or loss.
    let got = db.scan(0, usize::MAX).unwrap();
    let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
    let mut want = probes.clone();
    want.sort_unstable();
    assert_eq!(keys, want);
}

#[test]
fn tombstones_mask_across_shards() {
    let db = ShardedDb::open_memory(learned_opts(4, dense_sample())).unwrap();
    for k in 0..4000u64 {
        db.put(k, b"live").unwrap();
    }
    // One batch deleting a stripe of keys across every shard.
    let mut batch = WriteBatch::new();
    for k in (0..4000u64).step_by(3) {
        batch.delete(k);
    }
    db.write(batch, &WriteOptions::default()).unwrap();
    db.flush().unwrap();
    assert_eq!(db.get(0).unwrap(), None);
    assert_eq!(db.get(999).unwrap(), None, "shard-0 side of the boundary");
    assert_eq!(
        db.get(1000).unwrap(),
        Some(b"live".to_vec()),
        "boundary key"
    );
    assert_eq!(db.get(3999).unwrap(), None);
    // The merged iterator must skip tombstoned keys in every shard.
    let mut it = db.iter().unwrap();
    it.seek_to_first();
    let got = it.collect_up_to(usize::MAX).unwrap();
    assert_eq!(got.len(), 4000 - 4000 / 3 - 1);
    assert!(got.iter().all(|(k, _)| k % 3 != 0));
    // Globally sorted, strictly increasing.
    assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn merged_iterator_global_order_hash_and_range() {
    for policy in [
        ShardingPolicy::Hash,
        ShardingPolicy::LearnedRange {
            sample: dense_sample(),
            epsilon: 16,
        },
    ] {
        let mut opts = ShardedOptions::hash(4, base_opts());
        opts.policy = policy.clone();
        let db = ShardedDb::open_memory(opts).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut reference = std::collections::BTreeMap::new();
        for _ in 0..3000 {
            let k = rng.gen_range(0..4000u64);
            let v = rng.gen::<u64>().to_le_bytes().to_vec();
            db.put(k, &v).unwrap();
            reference.insert(k, v);
        }
        db.flush().unwrap();
        let mut it = db.iter().unwrap();
        it.seek_to_first();
        let got = it.collect_up_to(usize::MAX).unwrap();
        let want: Vec<(u64, Vec<u8>)> = reference.into_iter().collect();
        assert_eq!(got, want, "policy {policy:?}");
        // Mid-range seek matches the reference too.
        let mut it = db.iter().unwrap();
        it.seek(2000).unwrap();
        let tail = it.collect_up_to(10).unwrap();
        let want_tail: Vec<(u64, Vec<u8>)> = want
            .iter()
            .filter(|(k, _)| *k >= 2000)
            .take(10)
            .cloned()
            .collect();
        assert_eq!(tail, want_tail, "policy {policy:?}");
    }
}

fn background_sharded(shards: usize) -> ShardedDb {
    let mut base = base_opts();
    base.maintenance = Maintenance::background();
    ShardedDb::open_memory(ShardedOptions::learned(shards, dense_sample(), base)).unwrap()
}

#[test]
fn sharded_snapshot_is_coherent_and_pinned_across_maintenance() {
    let db = background_sharded(4);
    for k in 0..2000u64 {
        db.put(k * 2, format!("old-{k}").as_bytes()).unwrap();
    }
    let snap = db.snapshot();
    assert_eq!(db.live_snapshots(), 4, "one pin per shard");
    let pinned: Vec<(u64, Vec<u8>)> = {
        let mut it = db.iter_at(&snap).unwrap();
        it.seek_to_first();
        it.collect_up_to(usize::MAX).unwrap()
    };
    assert_eq!(pinned.len(), 2000);
    // Churn: overwrite everything across several flush/compaction rounds
    // while background workers run.
    for round in 0..3u64 {
        for k in 0..2000u64 {
            db.put(k * 2, format!("new-{round}-{k}").as_bytes())
                .unwrap();
        }
        db.flush().unwrap();
    }
    db.wait_for_maintenance();
    assert_eq!(db.background_error(), None);
    // The snapshot view is byte-identical despite the churn.
    for k in (0..2000u64).step_by(41) {
        assert_eq!(
            db.get_at(k * 2, &snap).unwrap(),
            Some(format!("old-{k}").into_bytes()),
            "key {}",
            k * 2
        );
    }
    let mut it = db.iter_at(&snap).unwrap();
    it.seek_to_first();
    assert_eq!(it.collect_up_to(usize::MAX).unwrap(), pinned);
    // The live view moved on.
    assert_eq!(db.get(0).unwrap(), Some(b"new-2-0".to_vec()));
    drop(snap);
    assert_eq!(db.live_snapshots(), 0);
}

/// The fence test: a writer thread commits cross-shard batches where every
/// batch writes the *same* round number to one marker key per shard. Any
/// snapshot, taken at any moment, must observe the same round on all four
/// markers — a mixed view would mean a partially visible batch.
#[test]
fn cross_shard_batches_are_all_or_nothing_visible() {
    let db = Arc::new(background_sharded(4));
    // One marker key per shard (dense_sample boundaries: 1000/2000/3000).
    let markers = [500u64, 1500, 2500, 3500];
    for &m in &markers {
        assert_eq!(db.routing().router().shard_of(m), (m / 1000) as usize);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round: u64 = 0;
            while !stop.load(Ordering::Relaxed) {
                round += 1;
                let mut batch = WriteBatch::new();
                for &m in &markers {
                    batch.put(m, &round.to_le_bytes());
                }
                // Filler traffic so flushes/rotations happen too — odd
                // keys only, so it can never overwrite an (even) marker.
                batch.put((round % 2000) * 2 + 1, b"filler-traffic-filler-traffic");
                db.write(batch, &WriteOptions::default()).unwrap();
            }
            round
        })
    };
    let mut coherent_checks = 0u32;
    let deadline = Instant::now() + std::time::Duration::from_millis(400);
    while Instant::now() < deadline {
        let snap = db.snapshot();
        let rounds: Vec<Option<Vec<u8>>> = markers
            .iter()
            .map(|&m| db.get_at(m, &snap).unwrap())
            .collect();
        if rounds[0].is_none() {
            continue; // nothing committed yet
        }
        assert!(
            rounds.iter().all(|r| *r == rounds[0]),
            "snapshot at fence {} saw a torn cross-shard batch: {rounds:?}",
            snap.seq()
        );
        coherent_checks += 1;
    }
    stop.store(true, Ordering::Relaxed);
    let rounds_written = writer.join().unwrap();
    assert!(rounds_written > 10, "writer made progress");
    assert!(coherent_checks > 10, "checker made progress");
    db.wait_for_maintenance();
    assert_eq!(db.background_error(), None);
    // Final state: all markers agree on the last round.
    let last = db.get(markers[0]).unwrap().unwrap();
    for &m in &markers {
        assert_eq!(db.get(m).unwrap().unwrap(), last);
    }
}

#[test]
fn merged_stats_aggregate_shards() {
    let db = ShardedDb::open_memory(learned_opts(4, dense_sample())).unwrap();
    let mut batch = WriteBatch::new();
    for k in (0..4000u64).step_by(10) {
        batch.put(k, b"s");
    }
    db.write(batch, &WriteOptions::default()).unwrap();
    let s = db.stats();
    assert_eq!(s.write_entries, 400);
    assert_eq!(
        s.write_batches, 4,
        "one group commit per touched shard for a cross-shard batch"
    );
    assert_eq!(s.wal_appends, 4);
    for k in (0..4000u64).step_by(100) {
        db.get(k).unwrap();
    }
    assert_eq!(db.stats().lookups, 40);
    db.scan(0, 10).unwrap();
    assert_eq!(db.stats().scans, 1);
}

// ------------------------------------------------------ crash atomicity

/// Keys owned by shards 0/1/2 under `dense_sample()` 3-shard boundaries
/// (≈1333 / ≈2666): two per shard, disjoint from every baseline key.
const TARGET_KEYS: [u64; 6] = [700, 701, 1850, 1851, 3650, 3651];

/// Baseline keys are `k * 300` for `k` in this range (all ≡ 0 mod 300;
/// every other key set avoids multiples of 300).
const BASE_KEYS: std::ops::Range<u64> = 0..13;
const PENDING_KEYS: [u64; 3] = [650, 1750, 3550];

fn crash_opts() -> ShardedOptions {
    learned_opts(3, dense_sample())
}

/// Committed state every crash image must preserve: flushed single-shard
/// data plus a sealed-but-unflushed cross-shard batch (so recovery also
/// exercises the committed-prepare path).
fn write_baseline(db: &ShardedDb) {
    for k in BASE_KEYS {
        db.put(k * 300, b"base").unwrap();
    }
    db.flush().unwrap();
    let mut batch = WriteBatch::new();
    for k in PENDING_KEYS {
        batch.put(k, b"pending");
    }
    db.write(batch, &WriteOptions::durable()).unwrap();
}

fn target_batch() -> WriteBatch {
    let mut batch = WriteBatch::new();
    for k in TARGET_KEYS {
        batch.put(k, b"target");
    }
    batch
}

/// All-or-nothing + fence + usability checks on a recovered database.
fn check_recovered(db: &ShardedDb, acked: bool, label: &str) {
    // Committed state is intact.
    for k in BASE_KEYS {
        assert_eq!(
            db.get(k * 300).unwrap(),
            Some(b"base".to_vec()),
            "{label}: lost flushed baseline key {}",
            k * 300
        );
    }
    for k in PENDING_KEYS {
        assert_eq!(
            db.get(k).unwrap(),
            Some(b"pending".to_vec()),
            "{label}: lost committed cross-shard key {k}"
        );
    }
    // The target batch is all-or-nothing.
    let present: Vec<bool> = TARGET_KEYS
        .iter()
        .map(|&k| db.get(k).unwrap() == Some(b"target".to_vec()))
        .collect();
    let all = present.iter().all(|&p| p);
    let none = present.iter().all(|&p| !p);
    assert!(
        all || none,
        "{label}: torn cross-shard batch after recovery: {present:?}"
    );
    if acked {
        assert!(all, "{label}: acknowledged durable batch lost");
    }
    // Fence consistency: a snapshot at the recovered fence observes the
    // same verdict (everything replayed sits at or below the fence).
    let snap = db.snapshot();
    for &k in &TARGET_KEYS {
        assert_eq!(
            db.get_at(k, &snap).unwrap(),
            db.get(k).unwrap(),
            "{label}: fence {} does not cover recovered key {k}",
            snap.seq()
        );
    }
    drop(snap);
    // The engine is fully usable: a fresh cross-shard commit (which
    // re-allocates the aborted sequence range when the batch aborted)
    // lands atomically.
    let mut probe = WriteBatch::new();
    for k in [950u64, 1950, 3850] {
        probe.put(k, b"probe");
    }
    db.write(probe, &WriteOptions::durable())
        .unwrap_or_else(|e| panic!("{label}: recovered engine refused writes: {e}"));
    for k in [950u64, 1950, 3850] {
        assert_eq!(db.get(k).unwrap(), Some(b"probe".to_vec()), "{label}");
    }
}

/// The exhaustive matrix: crash at **every** storage-operation boundary of
/// a 3-shard durable commit, reopen from the frozen image, and require the
/// batch to be all-or-nothing — then re-crash the *recovery* at every one
/// of its own operation boundaries and require the same from a third open.
/// No sampling: every `N` and every `(N, M)` pair runs.
#[test]
fn crash_matrix_every_op_boundary_is_all_or_nothing() {
    // Dry run: how many storage operations one commit spans.
    let (storage, ctl) = CrashStorage::new();
    let db = ShardedDb::open(storage, crash_opts()).unwrap();
    write_baseline(&db);
    let start = ctl.ops();
    db.write(target_batch(), &WriteOptions::durable()).unwrap();
    let total = ctl.ops() - start;
    drop(db);
    assert!(
        total >= 8,
        "a 3-shard durable commit should span ≥ 8 storage ops (3×append + 3×sync \
         + marker append + marker sync), got {total}"
    );

    for n in 0..=total {
        let (storage, ctl) = CrashStorage::new();
        let db = ShardedDb::open(Arc::clone(&storage) as Arc<dyn Storage>, crash_opts()).unwrap();
        write_baseline(&db);
        ctl.crash_after(n);
        let acked = db.write(target_batch(), &WriteOptions::durable()).is_ok();
        assert_eq!(
            acked,
            n >= total,
            "crash point {n}/{total}: ack iff every commit op ran"
        );
        drop(db);

        // Plain recovery from the frozen image.
        let recovered = ShardedDb::open(Arc::new(storage.image()), crash_opts()).unwrap();
        check_recovered(&recovered, acked, &format!("crash at op {n}/{total}"));
        drop(recovered);

        // Second crash: halt the recovery itself at every boundary M, and
        // require the follow-up (unimpeded) open of the twice-crashed
        // image to reach the same all-or-nothing verdict.
        let mut m = 0u64;
        loop {
            assert!(m < 10_000, "recovery never completed (crash {n})");
            let (s2, ctl2) = CrashStorage::over(storage.image());
            ctl2.crash_after(m);
            match ShardedDb::open(Arc::clone(&s2) as Arc<dyn Storage>, crash_opts()) {
                Ok(db2) => {
                    ctl2.disarm();
                    check_recovered(&db2, acked, &format!("crash {n}, recovery used {m}+ ops"));
                    break;
                }
                Err(_) => {
                    let db3 = ShardedDb::open(Arc::new(s2.image()), crash_opts()).unwrap();
                    check_recovered(
                        &db3,
                        acked,
                        &format!("crash {n}, then recovery crash at op {m}"),
                    );
                }
            }
            m += 1;
        }
        eprintln!("crash point {n}/{total}: recovery spans {m} storage ops, all verified");
    }
}

/// A failed cross-shard commit leaves orphaned **unsealed** prepare
/// fragments in the touched shards' memtables. Every flush path — the
/// sharded one and a shard-level `flush` reached through
/// [`ShardedDb::shard`] — must refuse to persist them while the write
/// path is poisoned (an SSTable replays unconditionally, so flushing
/// would bake the torn batch into durable state), and a reopen must
/// abort the batch everywhere.
#[test]
fn flush_after_poisoned_commit_cannot_persist_orphan_fragments() {
    let (storage, ctl) = CrashStorage::new();
    let db = ShardedDb::open(Arc::clone(&storage) as Arc<dyn Storage>, crash_opts()).unwrap();
    write_baseline(&db);
    // Fail the commit right after the first shard's prepare landed, then
    // heal the storage: the process lives on, poisoned.
    ctl.crash_after(1);
    assert!(db.write(target_batch(), &WriteOptions::durable()).is_err());
    ctl.disarm();
    assert!(
        db.flush().is_err(),
        "sharded flush must refuse while poisoned"
    );
    assert!(
        db.shard(0).flush().is_err(),
        "shard-level flush must refuse while poisoned"
    );
    assert!(
        db.shard(0).put(5, b"x").is_err(),
        "shard-level writes must refuse while poisoned (their inline \
         flush could persist the orphan fragment)"
    );
    assert!(db.put(1, b"x").is_err(), "writes stay refused");
    drop(db);
    // Reopen: the unsealed fragment aborted on every shard.
    let db = ShardedDb::open(Arc::new(storage.image()), crash_opts()).unwrap();
    for &k in &TARGET_KEYS {
        assert_eq!(
            db.get(k).unwrap(),
            None,
            "orphan fragment leaked via key {k}"
        );
    }
    check_recovered(&db, false, "poisoned-flush image");
}

/// A prepare record's participant set is load-bearing at recovery: a
/// fragment replayed by a shard the set excludes means a WAL landed in
/// the wrong shard directory (or was tampered with), and resolving it
/// would apply sequence numbers the fence never routed there — the open
/// must fail with corruption instead.
#[test]
fn misplaced_prepare_record_is_detected_as_corruption() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = ShardedDb::open(Arc::clone(&storage), crash_opts()).unwrap();
        // A batch touching shards 0 and 1 only — participants [0, 1].
        let mut batch = WriteBatch::new();
        batch.put(100, b"s0");
        batch.put(1700, b"s1");
        db.write(batch, &WriteOptions::durable()).unwrap();
        // Crash without flush: the prepares sit in the live WALs.
    }
    // Misplace shard-0's log into shard-2's active-WAL slot.
    let frag = lsm_io::read_all(storage.as_ref(), "shard-0/000001.wal").unwrap();
    let mut f = storage.create("shard-2/000001.wal").unwrap();
    f.append(&frag).unwrap();
    drop(f);
    let err = ShardedDb::open(storage, crash_opts())
        .err()
        .expect("misplaced prepare must fail the open");
    match err {
        lsm_tree::Error::Corruption(msg) => {
            assert!(msg.contains("participant set"), "unexpected message: {msg}");
        }
        e => panic!("expected corruption, got: {e}"),
    }
}

/// A snapshot pinned at fence `F` before a crash defines the committed
/// prefix: after the crash (mid-way through the next cross-shard commit)
/// and recovery, the fence must resume at exactly `F` and a fresh snapshot
/// must observe byte-for-byte the pinned contents — nothing of the torn
/// batch, nothing missing.
#[test]
fn snapshot_fence_is_the_committed_prefix_across_recovery() {
    let (storage, ctl) = CrashStorage::new();
    let db = ShardedDb::open(Arc::clone(&storage) as Arc<dyn Storage>, crash_opts()).unwrap();
    write_baseline(&db);
    let snap = db.snapshot();
    let fence = snap.seq();
    let pinned: Vec<(u64, Vec<u8>)> = {
        let mut it = db.iter_at(&snap).unwrap();
        it.seek_to_first();
        it.collect_up_to(usize::MAX).unwrap()
    };
    assert_eq!(pinned.len(), BASE_KEYS.end as usize + PENDING_KEYS.len());

    // Crash after the first shard's prepare landed: a torn commit.
    ctl.crash_after(1);
    assert!(db.write(target_batch(), &WriteOptions::durable()).is_err());
    drop(snap);
    drop(db);

    let db = ShardedDb::open(Arc::new(storage.image()), crash_opts()).unwrap();
    assert_eq!(
        db.recovery_report(),
        lsm_tree::RecoveryReport {
            committed_fragments: PENDING_KEYS.len() as u64,
            aborted_fragments: 1,
            topology_epoch: 1,
            ..Default::default()
        },
        "recovery must re-commit the baseline prepares and abort the torn one"
    );
    assert_eq!(
        db.latest_visible_seq(),
        fence,
        "the fence resumes at the committed prefix (aborted seqs are not replayed)"
    );
    let snap = db.snapshot();
    assert_eq!(snap.seq(), fence);
    let mut it = db.iter_at(&snap).unwrap();
    it.seek_to_first();
    assert_eq!(
        it.collect_up_to(usize::MAX).unwrap(),
        pinned,
        "snapshot at fence {fence} after recovery must equal the pre-crash view"
    );
}

// ------------------------------------------------------- live rebalancing

/// Acceptance: a zipfian insert stream against a 2-shard `ShardedDb`
/// whose initial boundaries were cut for a *uniform* distribution must
/// trigger live splits (the resident-bytes trigger fires, shards drain
/// into children online) and end with the re-learned boundary set routing
/// the observed traffic within 20% of fair share.
#[test]
fn zipfian_stream_triggers_live_splits_and_rebalances_within_20pct() {
    // Boundaries trained on a uniform sample over the full key space;
    // the insert stream is zipfian-dense near zero, so nearly everything
    // initially routes to shard 0.
    let uniform_sample: Vec<u64> = (0..4096u64).map(|i| i << 32).collect();
    let opts = ShardedOptions::learned(2, uniform_sample, base_opts())
        .with_max_shards(20)
        .with_split_trigger(0.10, 128 << 10);
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let db = ShardedDb::open(Arc::clone(&storage), opts.clone()).unwrap();
    assert_eq!(db.shard_count(), 2);

    // Zipfian *insert* stream: every key is fresh, the key-space density
    // follows the zipfian rank distribution (rank buckets of 2^24 keys,
    // dense at the bottom, ever sparser in the tail).
    let chooser = RequestDistribution::Zipfian { theta: 0.99 }.chooser(1 << 20);
    let mut rng = StdRng::seed_from_u64(0x511);
    let mut reference = std::collections::BTreeMap::new();
    let mut batch = WriteBatch::new();
    for i in 0..25_000u64 {
        let k = ((chooser.next(&mut rng) as u64) << 24) | rng.gen_range(0..1u64 << 24);
        let v = i.to_le_bytes().to_vec();
        batch.put(k, &v);
        reference.insert(k, v);
        if batch.len() >= 8 {
            db.write(std::mem::take(&mut batch), &WriteOptions::default())
                .unwrap();
        }
    }
    db.write(batch, &WriteOptions::default()).unwrap();

    // Splits must have fired *live*, mid-stream, from the write path.
    let live = db.sharded_stats();
    assert!(
        live.merged.shard_splits >= 1,
        "no live split fired during the stream: {live:?}"
    );
    assert!(db.shard_count() > 2);

    // The stream has stopped; let the trigger quiesce (under background
    // maintenance the worker pool would do this on its own — this is the
    // synchronous-mode equivalent).
    while db.rebalance().unwrap() {}

    let stats = db.sharded_stats();
    assert_eq!(db.topology_epoch(), 1 + stats.merged.shard_splits);
    assert_eq!(db.background_error(), None);
    assert!(
        stats.resident_imbalance <= 0.20,
        "resident imbalance {:.3} > 20%: {:?}",
        stats.resident_imbalance,
        stats.resident_bytes
    );

    // The acceptance bar: the re-learned boundaries route the observed
    // key population within 20% of fair share.
    let keys: Vec<u64> = reference.keys().copied().collect();
    let routing = db.routing();
    let imb = imbalance(&routing.router().partition_counts(&keys));
    assert!(
        imb <= 0.20,
        "router imbalance {imb:.3} > 20% after {} splits over {} shards",
        stats.merged.shard_splits,
        db.shard_count()
    );

    // Nothing was lost or duplicated across any number of drains.
    let got = db.scan(0, usize::MAX).unwrap();
    let want: Vec<(u64, Vec<u8>)> = reference.iter().map(|(k, v)| (*k, v.clone())).collect();
    assert_eq!(got, want, "split drains must preserve the exact contents");

    // The grown topology survives a reopen verbatim — contents, shard
    // count and epoch all come back from the sealed topology.
    let shard_count = db.shard_count();
    let epoch = db.topology_epoch();
    drop(db);
    let db = ShardedDb::open(storage, opts).unwrap();
    assert_eq!(db.shard_count(), shard_count);
    assert_eq!(db.topology_epoch(), epoch);
    assert_eq!(db.recovery_report().topology_epoch, epoch);
    let got = db.scan(0, usize::MAX).unwrap();
    assert_eq!(got, want, "reopen after splits lost data");
}

/// Split crash matrix: crash at **every** storage-operation boundary of a
/// full live split (begin → drain → cutover), reopen from the frozen
/// image, and require all-or-nothing topology cutover — the store is
/// either entirely pre-split (children swept) or entirely post-split
/// (parent swept), with every committed key readable either way. Then
/// re-crash the *recovery* at every one of its own boundaries and require
/// the same from a third open.
#[test]
fn split_crash_matrix_topology_cutover_is_all_or_nothing() {
    fn split_opts() -> ShardedOptions {
        let mut o = learned_opts(2, dense_sample())
            .with_max_shards(4)
            .with_split_trigger(0.1, 1 << 10);
        // Manual splits only: the matrix drives the split explicitly so
        // the crash point count is deterministic.
        o.auto_split = false;
        o
    }
    // Committed state: flushed skew into shard 0 (the split candidate), a
    // sealed-but-unflushed cross-shard batch (so recovery also resolves a
    // prepare across the split), and an unflushed single-shard write.
    fn write_split_baseline(db: &ShardedDb) -> std::collections::BTreeMap<u64, Vec<u8>> {
        let mut expect = std::collections::BTreeMap::new();
        let mut batch = WriteBatch::new();
        for k in (0..1900u64).step_by(5) {
            batch.put(k, b"hot");
            expect.insert(k, b"hot".to_vec());
        }
        db.write(batch, &WriteOptions::default()).unwrap();
        db.put(3100, b"cold").unwrap();
        expect.insert(3100, b"cold".to_vec());
        db.flush().unwrap();
        let mut pending = WriteBatch::new();
        for k in [901u64, 2901] {
            pending.put(k, b"pending");
            expect.insert(k, b"pending".to_vec());
        }
        db.write(pending, &WriteOptions::durable()).unwrap();
        db.put(903, b"unflushed").unwrap();
        expect.insert(903, b"unflushed".to_vec());
        db.flush().unwrap();
        expect
    }
    fn check_split_recovered(
        db: &ShardedDb,
        expect: &std::collections::BTreeMap<u64, Vec<u8>>,
        split_published: Option<bool>,
        label: &str,
    ) {
        let shards = db.shard_count();
        assert!(
            shards == 2 || shards == 3,
            "{label}: torn topology ({shards} shards)"
        );
        // An acknowledged cutover must survive. The reverse is not
        // required: a crash between the topology append and its sync can
        // leave the sealed file in the image (unsynced data *may* survive
        // a crash), so an unacknowledged cutover legitimately resolves to
        // either side — as long as it is exactly one side, with all
        // committed contents intact (asserted below).
        if split_published == Some(true) {
            assert_eq!(shards, 3, "{label}: acknowledged cutover lost");
        }
        let got = db.scan(0, usize::MAX).unwrap();
        let want: Vec<(u64, Vec<u8>)> = expect.iter().map(|(k, v)| (*k, v.clone())).collect();
        assert_eq!(got, want, "{label}: contents diverged after recovery");
        // The engine stays fully usable: a fresh cross-shard durable
        // batch lands atomically whichever topology won.
        let mut probe = WriteBatch::new();
        for k in [955u64, 2955] {
            probe.put(k, b"probe");
        }
        db.write(probe, &WriteOptions::durable())
            .unwrap_or_else(|e| panic!("{label}: recovered engine refused writes: {e}"));
        for k in [955u64, 2955] {
            assert_eq!(db.get(k).unwrap(), Some(b"probe".to_vec()), "{label}");
        }
    }

    // Dry run: how many storage operations one full split spans.
    let (storage, ctl) = CrashStorage::new();
    let db = ShardedDb::open(storage, split_opts()).unwrap();
    write_split_baseline(&db);
    let start = ctl.ops();
    assert!(db.rebalance().unwrap(), "dry run must split");
    let total = ctl.ops() - start;
    assert_eq!(db.shard_count(), 3);
    drop(db);
    assert!(total >= 10, "a split should span many storage ops: {total}");

    for n in 0..=total {
        let (storage, ctl) = CrashStorage::new();
        let db = ShardedDb::open(Arc::clone(&storage) as Arc<dyn Storage>, split_opts()).unwrap();
        let expect = write_split_baseline(&db);
        ctl.crash_after(n);
        let published = db.rebalance().is_ok_and(|split| split);
        if n >= total {
            assert!(
                published,
                "crash point {n}/{total}: unimpeded split must ack"
            );
        }
        drop(db);

        // Plain recovery from the frozen image.
        let recovered = ShardedDb::open(Arc::new(storage.image()), split_opts()).unwrap();
        check_split_recovered(
            &recovered,
            &expect,
            Some(published),
            &format!("split crash at op {n}/{total}"),
        );
        drop(recovered);

        // Second crash: halt the recovery itself at every boundary M; the
        // follow-up unimpeded open of the twice-crashed image must reach
        // a consistent verdict (the topology side may legitimately differ
        // from the first recovery's only in that recovery's own probe
        // writes are absent — so only contents + usability are asserted).
        let mut m = 0u64;
        loop {
            assert!(m < 10_000, "recovery never completed (crash {n})");
            let (s2, ctl2) = CrashStorage::over(storage.image());
            ctl2.crash_after(m);
            match ShardedDb::open(Arc::clone(&s2) as Arc<dyn Storage>, split_opts()) {
                Ok(db2) => {
                    ctl2.disarm();
                    check_split_recovered(
                        &db2,
                        &expect,
                        Some(published),
                        &format!("split crash {n}, recovery used {m}+ ops"),
                    );
                    break;
                }
                Err(_) => {
                    let db3 = ShardedDb::open(Arc::new(s2.image()), split_opts()).unwrap();
                    check_split_recovered(
                        &db3,
                        &expect,
                        Some(published),
                        &format!("split crash {n}, then recovery crash at op {m}"),
                    );
                }
            }
            m += 1;
        }
    }
}

/// The dual-write window, staged: between `begin_rebalance` (children
/// drained, window open) and `complete_rebalance` (cutover), writes land
/// on both sides, reads and snapshots resolve through the parent, and a
/// crash at any boundary of the cutover leaves one self-sufficient side.
#[test]
fn dual_write_window_crash_matrix_and_epoch_pinned_snapshots() {
    fn window_opts() -> ShardedOptions {
        let mut o = learned_opts(2, dense_sample())
            .with_max_shards(4)
            .with_split_trigger(0.1, 1 << 10);
        o.auto_split = false; // the window is staged explicitly
        o
    }
    fn build_window(db: &ShardedDb) -> std::collections::BTreeMap<u64, Vec<u8>> {
        let mut oracle = std::collections::BTreeMap::new();
        let mut batch = WriteBatch::new();
        for k in (0..1900u64).step_by(3) {
            batch.put(k, b"seed");
            oracle.insert(k, b"seed".to_vec());
        }
        db.write(batch, &WriteOptions::default()).unwrap();
        db.flush().unwrap();
        assert!(db.begin_rebalance().unwrap(), "window must open");
        assert_eq!(db.shard_count(), 2, "no cutover yet");
        // Dual-write traffic: overwrites, fresh keys and deletes in the
        // splitting range, plus a cross-shard durable batch.
        let mut win = WriteBatch::new();
        win.put(6, b"window");
        win.put(1204, b"window");
        win.delete(9);
        win.put(2904, b"window");
        db.write(win, &WriteOptions::durable()).unwrap();
        oracle.insert(6, b"window".to_vec());
        oracle.insert(1204, b"window".to_vec());
        oracle.remove(&9);
        oracle.insert(2904, b"window".to_vec());
        oracle
    }

    // Mid-window reads + snapshots match a single-Db oracle fed the same
    // operations, and a snapshot pinned mid-window survives the cutover
    // byte-for-byte (it resolves through its pinned epoch — the parent).
    let db = ShardedDb::open_memory(window_opts()).unwrap();
    let oracle_map = build_window(&db);
    let single = Db::open_memory(base_opts()).unwrap();
    for (k, v) in &oracle_map {
        single.put(*k, v).unwrap();
    }
    for k in [0u64, 6, 9, 1204, 1899, 2904, 4000] {
        assert_eq!(
            db.get(k).unwrap(),
            single.get(k).unwrap(),
            "mid-split get({k})"
        );
    }
    let pinned = db.snapshot();
    let epoch_before = pinned.epoch();
    let mid_view: Vec<(u64, Vec<u8>)> = {
        let mut it = db.iter_at(&pinned).unwrap();
        it.seek_to_first();
        it.collect_up_to(usize::MAX).unwrap()
    };
    let want: Vec<(u64, Vec<u8>)> = oracle_map.iter().map(|(k, v)| (*k, v.clone())).collect();
    assert_eq!(mid_view, want, "mid-split merged scan matches the oracle");
    assert!(db.complete_rebalance().unwrap());
    assert_eq!(db.shard_count(), 3);
    assert!(db.topology_epoch() > epoch_before);
    // The pinned snapshot still reads through its epoch (the parent).
    let mut it = db.iter_at(&pinned).unwrap();
    it.seek_to_first();
    assert_eq!(it.collect_up_to(usize::MAX).unwrap(), mid_view);
    assert_eq!(db.get_at(6, &pinned).unwrap(), Some(b"window".to_vec()));
    drop(pinned);
    // Post-cutover, the live view agrees with the oracle too.
    assert_eq!(db.scan(0, usize::MAX).unwrap(), want);
    drop(db);

    // Crash matrix over the cutover alone, with the window populated.
    let (storage, ctl) = CrashStorage::new();
    let db = ShardedDb::open(Arc::clone(&storage) as Arc<dyn Storage>, window_opts()).unwrap();
    build_window(&db);
    let start = ctl.ops();
    assert!(db.complete_rebalance().unwrap());
    let total = ctl.ops() - start;
    drop(db);

    for n in 0..=total {
        let (storage, ctl) = CrashStorage::new();
        let db = ShardedDb::open(Arc::clone(&storage) as Arc<dyn Storage>, window_opts()).unwrap();
        let oracle_map = build_window(&db);
        ctl.crash_after(n);
        let published = db.complete_rebalance().is_ok_and(|s| s);
        drop(db);
        let recovered = ShardedDb::open(Arc::new(storage.image()), window_opts()).unwrap();
        let shards = recovered.shard_count();
        assert!(
            shards == 2 || shards == 3,
            "cutover crash {n}/{total}: torn topology"
        );
        if published {
            assert_eq!(shards, 3, "acked cutover lost (crash {n}/{total})");
        }
        let got = recovered.scan(0, usize::MAX).unwrap();
        let want: Vec<(u64, Vec<u8>)> = oracle_map.iter().map(|(k, v)| (*k, v.clone())).collect();
        assert_eq!(
            got, want,
            "cutover crash {n}/{total}: dual-write-window invariant broken \
             (the surviving side is not self-sufficient)"
        );
    }
}

/// A child-side write failure during the dual-write window abandons the
/// split (the children are incomplete) without failing the client's
/// commit or the engine: the parent applied the batch, the children are
/// discarded, and a later rebalance can start over.
#[test]
fn child_write_failure_cancels_split_without_losing_the_commit() {
    let mut opts = learned_opts(2, dense_sample())
        .with_max_shards(4)
        .with_split_trigger(0.1, 1 << 10);
    opts.auto_split = false; // drive the window by hand
    let (storage, ctl) = CrashStorage::new();
    let db = ShardedDb::open(Arc::clone(&storage) as Arc<dyn Storage>, opts.clone()).unwrap();
    let mut batch = WriteBatch::new();
    for k in (0..1900u64).step_by(3) {
        batch.put(k, b"seed");
    }
    db.write(batch, &WriteOptions::default()).unwrap();
    db.flush().unwrap();
    assert!(db.begin_rebalance().unwrap());
    // Fail storage for exactly the child mirror: the parent write is op 1
    // (WAL append), the mirror needs more.
    ctl.crash_after(1);
    db.put(10, b"survives").unwrap();
    ctl.disarm();
    assert_eq!(db.get(10).unwrap(), Some(b"survives".to_vec()));
    assert!(
        !db.complete_rebalance().unwrap(),
        "cancelled split must refuse to cut over"
    );
    assert_eq!(db.shard_count(), 2);
    // The engine is healthy: a fresh split succeeds end-to-end.
    assert!(db.rebalance().unwrap());
    assert_eq!(db.shard_count(), 3);
    assert_eq!(db.get(10).unwrap(), Some(b"survives".to_vec()));
    let expect = db.scan(0, usize::MAX).unwrap();
    drop(db);
    // Regression: the aborted split burned shard ids in the in-process
    // allocator; the sealed topology must name the directories the
    // successful split *actually* created (not the burned ids), or this
    // reopen would open empty shards and sweep the real children.
    let db = ShardedDb::open(Arc::new(storage.image()), opts).unwrap();
    assert_eq!(db.shard_count(), 3, "reopen adopts the split topology");
    assert_eq!(
        db.scan(0, usize::MAX).unwrap(),
        expect,
        "reopened children must hold the drained data"
    );
    assert_eq!(db.get(10).unwrap(), Some(b"survives".to_vec()));
}

/// Runtime commit-marker checkpointing: heavy cross-shard traffic with a
/// small checkpoint threshold keeps the marker log bounded (checkpoints
/// fire, live markers stay few) and loses nothing across a reopen.
#[test]
fn commit_marker_log_is_checkpointed_at_runtime() {
    let mut opts = learned_opts(3, dense_sample());
    opts.commit_log_checkpoint_bytes = 512;
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let db = ShardedDb::open(Arc::clone(&storage), opts.clone()).unwrap();
    for i in 0..300u64 {
        let mut batch = WriteBatch::new();
        batch.put(i % 1300, &i.to_le_bytes());
        batch.put(1400 + i % 1200, &i.to_le_bytes());
        batch.put(2800 + i % 1200, &i.to_le_bytes());
        db.write(batch, &WriteOptions::durable()).unwrap();
    }
    let stats = db.sharded_stats();
    assert!(
        stats.merged.commit_checkpoints >= 1,
        "no checkpoint fired: {stats:?}"
    );
    assert!(
        stats.live_commit_markers < 300,
        "marker log unbounded: {} live markers",
        stats.live_commit_markers
    );
    assert_eq!(db.background_error(), None);
    // An explicit checkpoint drains to zero once everything is flushed.
    assert!(db.checkpoint_commit_markers().unwrap());
    assert_eq!(db.sharded_stats().live_commit_markers, 0);
    drop(db);
    // Reopen: every acknowledged durable batch survived the truncations.
    let db = ShardedDb::open(storage, opts).unwrap();
    for i in 270..300u64 {
        assert_eq!(
            db.get(1400 + i % 1200).unwrap(),
            Some(i.to_le_bytes().to_vec())
        );
    }
}

/// Reopening a range-sharded database whose `SHARDING.model` file is
/// missing (or corrupt) must fall back to boundary binary search
/// **explicitly** — surfaced through the recovery report — and route
/// identically.
#[test]
fn missing_router_model_is_reported_not_silent() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let opts = learned_opts(3, dense_sample());
    {
        let db = ShardedDb::open(Arc::clone(&storage), opts.clone()).unwrap();
        for k in (0..4000u64).step_by(40) {
            db.put(k, b"v").unwrap();
        }
        db.flush().unwrap();
        assert!(!db.recovery_report().router_model_degraded);
    }
    storage.remove("SHARDING.model").unwrap();
    let db = ShardedDb::open(Arc::clone(&storage), opts).unwrap();
    assert!(
        db.recovery_report().router_model_degraded,
        "model loss must be reported through the recovery report"
    );
    assert!(db.routing().router().is_range(), "no silent hash fallback");
    for k in (0..4000u64).step_by(40) {
        assert_eq!(db.get(k).unwrap(), Some(b"v".to_vec()), "key {k}");
    }
}

// ------------------------------------------------------------ acceptance

/// Acceptance: on a skewed (zipfian-sampled) key distribution, learned
/// range routing keeps shard sizes within 20% of fair share — where naive
/// uniform key-space cuts collapse almost everything into one shard — and
/// the hash fallback stays balanced too.
#[test]
fn learned_routing_balances_zipfian_keys_within_20pct() {
    // Distinct keys whose *density* follows a zipfian request stream:
    // sample 300k zipf ranks over a 2^20 key space — the surviving
    // distinct keys are dense near zero and sparse in the tail.
    let chooser = RequestDistribution::Zipfian { theta: 0.99 }.chooser(1 << 20);
    let mut rng = StdRng::seed_from_u64(0x21bf);
    let mut keys: Vec<u64> = (0..300_000)
        .map(|_| chooser.next(&mut rng) as u64)
        .collect();
    keys.sort_unstable();
    keys.dedup();
    assert!(keys.len() > 20_000, "enough distinct keys: {}", keys.len());

    // Router trained on a thin sample (every 16th key), graded on all keys.
    let sample: Vec<u64> = keys.iter().copied().step_by(16).collect();
    let learned = ShardRouter::train(
        4,
        &ShardingPolicy::LearnedRange {
            sample,
            epsilon: 32,
        },
    );
    assert!(learned.is_range(), "sample is large enough to cut");
    let learned_imb = imbalance(&learned.partition_counts(&keys));
    assert!(
        learned_imb <= 0.20,
        "learned range routing imbalance {learned_imb:.3} > 20%"
    );

    // Naive uniform key-space cuts on the same keys: heavily unbalanced.
    let max = *keys.last().unwrap();
    let uniform = ShardRouter::Range {
        boundaries: (1..4u64).map(|i| i * (max / 4)).collect(),
        model: None,
        sample_len: 0,
    };
    let uniform_imb = imbalance(&uniform.partition_counts(&keys));
    assert!(
        uniform_imb > 2.0 * learned_imb.max(0.05),
        "uniform cuts should be far worse: uniform {uniform_imb:.3} vs learned {learned_imb:.3}"
    );

    // The hash fallback balances too (it just can't serve range scans
    // from a shard subset).
    let hash = ShardRouter::train(4, &ShardingPolicy::Hash);
    assert!(imbalance(&hash.partition_counts(&keys)) <= 0.20);

    // End to end: load through a 4-shard ShardedDb and measure resident
    // entries per shard.
    let sample: Vec<u64> = keys.iter().copied().step_by(16).collect();
    let db = ShardedDb::open_memory(ShardedOptions::learned(4, sample, base_opts())).unwrap();
    for chunk in keys.chunks(512) {
        let mut batch = WriteBatch::with_capacity(chunk.len());
        for &k in chunk {
            batch.put(k, b"zipf");
        }
        db.write(batch, &WriteOptions::default()).unwrap();
    }
    db.flush().unwrap();
    let resident = db.shard_entry_counts();
    let resident_imb = imbalance(&resident);
    assert!(
        resident_imb <= 0.20,
        "resident imbalance {resident_imb:.3} > 20%: {resident:?}"
    );
}

/// Acceptance: a 4-shard `ShardedDb` sustains ≥ 1.5× the write throughput
/// of a single `Db` on the same YCSB-style load, background maintenance
/// on, measured in the repo's standard machine-independent convention:
/// **measured CPU + modeled I/O** on the simulated NVMe. The sharded win
/// is structural, not scheduling luck:
///
/// * each shard's tree is shallower (¼ of the data), so compaction
///   rewrites every entry fewer times — less write amplification, less
///   modeled write I/O;
/// * each shard's manifest names ¼ of the tables, so the per-maintenance
///   manifest rewrite (inside the tree lock) shrinks 4×;
/// * per-shard L0 pressure is ~4× lower, so the LevelDB slowdown/stop
///   backpressure rarely brakes the writer.
#[test]
fn four_shards_sustain_1_5x_write_throughput() {
    // Debug builds (tier-1 `cargo test -q`) pay ~10x the CPU per entry;
    // a smaller load keeps the test quick there while release keeps the
    // full-size workload. The structural gap (write amplification,
    // manifest length, backpressure) holds at both sizes.
    const KEYS: usize = if cfg!(debug_assertions) {
        12_000
    } else {
        30_000
    };
    const BATCH: usize = 8;
    fn tight_opts() -> Options {
        let mut o = Options::small_for_tests();
        o.index.kind = IndexKind::Pgm;
        o.value_width = 64;
        o.write_buffer_bytes = 8 << 10;
        o.sstable_target_bytes = 4 << 10;
        // Same *global* worker budget for both configurations. A single
        // tree cannot exploit the second flush thread (L0 installation is
        // strictly oldest-first, one claim at a time); four shards can.
        o.maintenance = Maintenance::Background {
            flush_threads: 2,
            compaction_threads: 2,
        };
        o.l0_compaction_trigger = 2;
        o.l0_slowdown_trigger = 6;
        o.l0_stop_trigger = 20;
        o.max_immutable_memtables = 4;
        o
    }
    // YCSB load phase: the dataset keys in random order, batched writes.
    let keys = Dataset::Random.generate(KEYS, 0x5eed);
    let mut order: Vec<u64> = keys.clone();
    let mut rng = StdRng::seed_from_u64(0x10ad);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let value = vec![7u8; 64];

    // Wall time of the load (stalls included) + the storage's modeled
    // read/write nanoseconds — the same headline every bench in this repo
    // reports.
    let load = |order: &[u64],
                write: &dyn Fn(WriteBatch) -> u64,
                close: &dyn Fn() -> (u64, u64)|
     -> (u128, u64) {
        let wall = Instant::now();
        for chunk in order.chunks(BATCH) {
            let mut batch = WriteBatch::with_capacity(chunk.len());
            for &k in chunk {
                batch.put(k, &value);
            }
            write(batch);
        }
        let cpu = wall.elapsed().as_nanos();
        let (io_ns, _) = close();
        (cpu, io_ns)
    };

    let run_single = || -> (u128, u64) {
        let db = Db::open_sim(tight_opts(), lsm_io::CostModel::default()).unwrap();
        let wopts = WriteOptions::default();
        let out = load(&order, &|b| db.write(b, &wopts).unwrap(), &|| {
            let io = db.storage().stats().snapshot();
            (io.sim_total_ns(), 0)
        });
        db.close().unwrap();
        out
    };
    let run_sharded = || -> (u128, u64) {
        // Identical per-shard options and the same shared 2+2 worker
        // budget; boundaries learned from a sample of the keys.
        let sample: Vec<u64> = keys.iter().copied().step_by(8).collect();
        let db = ShardedDb::open_sim(
            ShardedOptions::learned(4, sample, tight_opts()),
            lsm_io::CostModel::default(),
        )
        .unwrap();
        let wopts = WriteOptions::default();
        let out = load(&order, &|b| db.write(b, &wopts).unwrap(), &|| {
            let io = db.shard(0).storage().stats().snapshot();
            (io.sim_total_ns(), 0)
        });
        db.close().unwrap();
        out
    };

    // Median of three interleaved runs per configuration: one noisy
    // outlier (CI neighbours, a parallel test hogging the core) must not
    // decide the test.
    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs[xs.len() / 2]
    };
    let (mut singles, mut shardeds) = (Vec::new(), Vec::new());
    let (mut single_parts, mut sharded_parts) = ((0, 0), (0, 0));
    for _ in 0..3 {
        let (cpu, io) = run_single();
        singles.push(cpu as f64 + io as f64);
        single_parts = (cpu, io);
        let (cpu, io) = run_sharded();
        shardeds.push(cpu as f64 + io as f64);
        sharded_parts = (cpu, io);
    }
    let single_ns = median(&mut singles);
    let sharded_ns = median(&mut shardeds);
    let speedup = single_ns / sharded_ns;
    eprintln!(
        "sharded write throughput (cpu + modeled io): single {:.1} ms (cpu {:.1} + io {:.1}), \
         4 shards {:.1} ms (cpu {:.1} + io {:.1}), speedup {speedup:.2}x",
        single_ns / 1e6,
        single_parts.0 as f64 / 1e6,
        single_parts.1 as f64 / 1e6,
        sharded_ns / 1e6,
        sharded_parts.0 as f64 / 1e6,
        sharded_parts.1 as f64 / 1e6,
    );
    assert!(
        speedup >= 1.5,
        "4-shard speedup {speedup:.2}x < 1.5x (single {:.2} ms, sharded {:.2} ms)",
        single_ns / 1e6,
        sharded_ns / 1e6
    );
}
