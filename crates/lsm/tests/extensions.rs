//! Integration tests for the engine extensions beyond the paper's baseline
//! testbed: exponential in-segment search and per-level position boundaries.

use std::collections::BTreeMap;

use learned_index::IndexKind;
use lsm_tree::{Db, IndexChoice, Options, SearchStrategy};

fn base_opts() -> Options {
    let mut o = Options::small_for_tests();
    o.index = IndexChoice::with_boundary(IndexKind::Pgm, 64);
    o
}

#[test]
fn exponential_search_agrees_with_binary() {
    let mk = |strategy| {
        let mut o = base_opts();
        o.search = strategy;
        let db = Db::open_memory(o).unwrap();
        for k in 0..4_000u64 {
            db.put(k * 3, format!("v{k}").as_bytes()).unwrap();
        }
        db.delete(300).unwrap();
        db.flush().unwrap();
        db
    };
    let binary = mk(SearchStrategy::Binary);
    let expo = mk(SearchStrategy::Exponential);
    for probe in 0..12_100u64 {
        assert_eq!(
            binary.get(probe).unwrap(),
            expo.get(probe).unwrap(),
            "probe {probe}"
        );
    }
    // Scans agree too (seek uses the same lower-bound machinery).
    assert_eq!(
        binary.scan(1_000, 50).unwrap(),
        expo.scan(1_000, 50).unwrap()
    );
}

#[test]
fn exponential_search_with_every_index_kind() {
    for kind in IndexKind::ALL {
        let mut o = base_opts();
        o.index.kind = kind;
        o.search = SearchStrategy::Exponential;
        let db = Db::open_memory(o).unwrap();
        let mut oracle = BTreeMap::new();
        for k in 0..2_000u64 {
            let v = vec![(k % 251) as u8; 8];
            db.put(k * 7, &v).unwrap();
            oracle.insert(k * 7, v);
        }
        db.flush().unwrap();
        for (k, v) in oracle.iter().step_by(29) {
            assert_eq!(db.get(*k).unwrap().as_ref(), Some(v), "{kind} key {k}");
        }
        assert_eq!(db.get(3).unwrap(), None, "{kind}");
    }
}

#[test]
fn per_level_epsilon_changes_built_indexes() {
    // Tight boundary at the bottom level, loose above.
    let mut o = base_opts();
    o.per_level_epsilon = Some(vec![128, 128, 16, 4]);
    let db = Db::open_memory(o).unwrap();
    for k in 0..6_000u64 {
        db.put(k, &[1u8; 24]).unwrap();
    }
    db.flush().unwrap();
    let version = db.version();
    let deepest = version.deepest_level();
    assert!(deepest >= 2, "need a multi-level tree, got L{deepest}");

    // Verify reads still work everywhere.
    for k in (0..6_000u64).step_by(101) {
        assert_eq!(db.get(k).unwrap(), Some(vec![1u8; 24]));
    }

    // A uniform-tight configuration must spend more index memory than the
    // mixed one (upper levels got away with coarse boundaries).
    let mut tight = base_opts();
    tight.index = IndexChoice::new(IndexKind::Pgm, 4);
    let db_tight = Db::open_memory(tight).unwrap();
    for k in 0..6_000u64 {
        db_tight.put(k, &[1u8; 24]).unwrap();
    }
    db_tight.flush().unwrap();
    assert!(
        db.index_memory_bytes() <= db_tight.index_memory_bytes(),
        "mixed {} must not exceed uniformly-tight {}",
        db.index_memory_bytes(),
        db_tight.index_memory_bytes()
    );
}

#[test]
fn per_level_epsilon_clamps_to_last_entry() {
    let mut o = base_opts();
    o.per_level_epsilon = Some(vec![8]); // every level uses ε=8
    assert_eq!(o.index_for_level(0).config.epsilon, 8);
    assert_eq!(o.index_for_level(5).config.epsilon, 8);
    o.per_level_epsilon = Some(vec![]);
    assert_eq!(
        o.index_for_level(3).config.epsilon,
        o.index.config.epsilon,
        "empty override falls back to the global choice"
    );
}
