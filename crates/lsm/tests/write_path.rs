//! Write-path acceptance tests for the `WriteBatch` group-commit redesign:
//! one WAL append and one contiguous sequence range per batch, and a ≥2×
//! saving for batched loading over per-key `put` on the simulated NVMe.
//!
//! The comparison uses the *modeled* I/O clock (`IoStats::sim_write_ns`),
//! which is a deterministic function of the access pattern — the assertions
//! cannot flake on machine speed.

use learned_index::IndexKind;
use lsm_io::CostModel;
use lsm_tree::{Db, Options, WriteBatch, WriteOptions};

const KEYS: u64 = 4_000;
const VALUE: [u8; 48] = [7u8; 48];

fn sim_db() -> Db {
    // Large buffer: everything stays in the memtable, so the modeled write
    // traffic is exactly the WAL's (no flush/compaction noise in either
    // mode).
    let mut opts = Options::default();
    opts.index.kind = IndexKind::Pgm;
    opts.value_width = 64;
    opts.write_buffer_bytes = 64 << 20;
    Db::open_sim(opts, CostModel::default()).unwrap()
}

/// Modeled write nanoseconds charged so far.
fn sim_write_ns(db: &Db) -> u64 {
    db.storage().stats().snapshot().sim_write_ns
}

#[test]
fn write_batch_speedup_is_at_least_2x() {
    let per_key_db = sim_db();
    let base = sim_write_ns(&per_key_db); // manifest setup traffic
    for k in 0..KEYS {
        per_key_db.put(k, &VALUE).unwrap();
    }
    let per_key_ns = sim_write_ns(&per_key_db) - base;

    let batched_db = sim_db();
    let base = sim_write_ns(&batched_db);
    let keys: Vec<u64> = (0..KEYS).collect();
    for chunk in keys.chunks(512) {
        let mut batch = WriteBatch::with_capacity(chunk.len());
        for &k in chunk {
            batch.put(k, &VALUE);
        }
        batched_db.write(batch, &WriteOptions::default()).unwrap();
    }
    let batched_ns = sim_write_ns(&batched_db) - base;

    // Same data, same durability; group commit must save ≥2× of the
    // modeled write time (in practice the gap is far larger: one
    // per-record write call vs one per 512 records).
    assert!(
        per_key_ns >= 2 * batched_ns,
        "per-key {per_key_ns} ns vs batched {batched_ns} ns — speedup {:.2}x < 2x",
        per_key_ns as f64 / batched_ns.max(1) as f64
    );

    // Both modes produced the same database.
    for k in (0..KEYS).step_by(97) {
        assert_eq!(per_key_db.get(k).unwrap(), Some(VALUE.to_vec()));
        assert_eq!(batched_db.get(k).unwrap(), Some(VALUE.to_vec()));
    }
}

#[test]
fn wal_appends_counter_proves_group_commit() {
    let db = sim_db();
    let before = db.stats().snapshot();
    let mut batch = WriteBatch::new();
    for k in 0..1_000u64 {
        batch.put(k, &VALUE);
    }
    db.write(batch, &WriteOptions::default()).unwrap();
    let delta = db.stats().snapshot().since(&before);
    assert_eq!(delta.wal_appends, 1, "1000 entries, one WAL record");
    assert_eq!(delta.write_entries, 1_000);
    assert_eq!(delta.write_batches, 1);

    let before = db.stats().snapshot();
    for k in 0..1_000u64 {
        db.put(k, &VALUE).unwrap();
    }
    let delta = db.stats().snapshot().since(&before);
    assert_eq!(delta.wal_appends, 1_000, "per-key pays one record per put");
}
