//! Durability integration tests: WAL replay on reopen, including writes
//! that never reached a flush, on both in-memory and real-filesystem
//! storage — and batch atomicity: a torn tail drops a whole `WriteBatch`,
//! never a prefix of it.

use std::sync::Arc;

use learned_index::IndexKind;
use lsm_io::{FileStorage, MemStorage, Storage};
use lsm_tree::{Db, Options, WriteBatch, WriteOptions};
use proptest::prelude::*;

fn opts() -> Options {
    let mut o = Options::small_for_tests();
    o.index.kind = IndexKind::Pgm;
    o
}

#[test]
fn unflushed_writes_survive_reopen() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = Db::open(Arc::clone(&storage), opts()).unwrap();
        // Small enough to stay in the memtable (no flush).
        for k in 0..50u64 {
            db.put(k, format!("wal-{k}").as_bytes()).unwrap();
        }
        db.delete(7).unwrap();
        assert_eq!(db.stats().snapshot().flushes, 0, "must not have flushed");
        // Dropped without flush: simulates a crash.
    }
    let db = Db::open(storage, opts()).unwrap();
    assert_eq!(db.get(3).unwrap(), Some(b"wal-3".to_vec()));
    assert_eq!(db.get(7).unwrap(), None, "tombstone replayed");
    assert_eq!(db.get(49).unwrap(), Some(b"wal-49".to_vec()));
}

#[test]
fn replay_preserves_sequence_ordering() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = Db::open(Arc::clone(&storage), opts()).unwrap();
        db.put(1, b"first").unwrap();
        db.put(1, b"second").unwrap();
        db.put(1, b"third").unwrap();
    }
    let db = Db::open(Arc::clone(&storage), opts()).unwrap();
    assert_eq!(db.get(1).unwrap(), Some(b"third".to_vec()));
    // New writes continue after the replayed sequence numbers.
    db.put(1, b"fourth").unwrap();
    assert_eq!(db.get(1).unwrap(), Some(b"fourth".to_vec()));
}

#[test]
fn mixed_flushed_and_unflushed_state_recovers() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = Db::open(Arc::clone(&storage), opts()).unwrap();
        for k in 0..2_000u64 {
            db.put(k, b"flushed").unwrap(); // crosses several flushes
        }
        for k in 2_000..2_020u64 {
            db.put(k, b"pending").unwrap(); // stays in the memtable
        }
    }
    let db = Db::open(storage, opts()).unwrap();
    assert_eq!(db.get(500).unwrap(), Some(b"flushed".to_vec()));
    assert_eq!(db.get(2_010).unwrap(), Some(b"pending".to_vec()));
}

#[test]
fn wal_disabled_loses_unflushed_but_keeps_tables() {
    let mut o = opts();
    o.wal = false;
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = Db::open(Arc::clone(&storage), o.clone()).unwrap();
        for k in 0..2_000u64 {
            db.put(k, b"flushed").unwrap();
        }
        db.put(9_999, b"unflushed").unwrap();
    }
    let db = Db::open(storage, o).unwrap();
    assert_eq!(db.get(500).unwrap(), Some(b"flushed".to_vec()));
    assert_eq!(db.get(9_999).unwrap(), None, "no WAL, write lost");
}

#[test]
fn old_wals_are_retired_after_flush() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let db = Db::open(Arc::clone(&storage), opts()).unwrap();
    for k in 0..5_000u64 {
        db.put(k, &[1u8; 16]).unwrap();
    }
    db.flush().unwrap();
    let wals: Vec<String> = storage
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| n.ends_with(".wal"))
        .collect();
    assert_eq!(wals.len(), 1, "exactly one live log: {wals:?}");
}

/// Clip the live WAL to its first `keep` bytes, simulating a crash that
/// tore the tail of the log mid-append.
fn truncate_wal(storage: &Arc<dyn Storage>, keep: usize) {
    let wal_name = storage
        .list()
        .unwrap()
        .into_iter()
        .find(|n| n.ends_with(".wal"))
        .expect("live wal");
    let full = lsm_io::read_all(storage.as_ref(), &wal_name).unwrap();
    assert!(keep <= full.len(), "cannot keep {keep} of {}", full.len());
    let mut f = storage.create(&wal_name).unwrap();
    f.append(&full[..keep]).unwrap();
}

/// Bytes currently in the live WAL.
fn wal_len(storage: &Arc<dyn Storage>) -> usize {
    let wal_name = storage
        .list()
        .unwrap()
        .into_iter()
        .find(|n| n.ends_with(".wal"))
        .expect("live wal");
    storage.size_of(&wal_name).unwrap() as usize
}

#[test]
fn intact_batch_replays_all_of_it() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = Db::open(Arc::clone(&storage), opts()).unwrap();
        let mut batch = WriteBatch::new();
        for k in 0..40u64 {
            batch.put(k, format!("b{k}").as_bytes());
        }
        batch.delete(3);
        db.write(batch, &WriteOptions::default()).unwrap();
        // Crash: dropped without flush.
    }
    let db = Db::open(storage, opts()).unwrap();
    for k in (0..40u64).filter(|&k| k != 3) {
        assert_eq!(db.get(k).unwrap(), Some(format!("b{k}").into_bytes()));
    }
    assert_eq!(db.get(3).unwrap(), None, "in-batch delete replayed");
}

/// Write one intact single-op batch, then a 40-op batch, then tear the log
/// down to `keep_of_total(total_len, first_frame_end)` bytes and reopen.
fn torn_batch_scenario(keep_of_total: impl Fn(usize, usize) -> usize) {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let first_batch_end;
    {
        let db = Db::open(Arc::clone(&storage), opts()).unwrap();
        let mut intact = WriteBatch::new();
        intact.put(1, b"intact");
        db.write(intact, &WriteOptions::durable()).unwrap();
        first_batch_end = wal_len(&storage);
        let mut torn = WriteBatch::new();
        for k in 100..140u64 {
            torn.put(k, &[0xab; 24]);
        }
        db.write(torn, &WriteOptions::default()).unwrap();
    }
    let total = wal_len(&storage);
    truncate_wal(&storage, keep_of_total(total, first_batch_end));

    let db = Db::open(storage, opts()).unwrap();
    assert_eq!(db.get(1).unwrap(), Some(b"intact".to_vec()));
    for k in 100..140u64 {
        assert_eq!(db.get(k).unwrap(), None, "no prefix of the torn batch");
    }
}

#[test]
fn torn_tail_mid_batch_replays_none_of_that_batch() {
    // Cut only a handful of trailing bytes: most of the 40 operations are
    // still physically present in the log, yet none may replay.
    torn_batch_scenario(|total, _first_end| total - 7);
    // Cut one byte past the first frame: the second batch's header alone
    // survives, and still nothing of it may replay.
    torn_batch_scenario(|_total, first_end| first_end + 1);
}

#[test]
fn unflushed_writes_survive_two_crashes() {
    // Reopen re-logs replayed entries into the fresh WAL, so a second
    // crash before any flush still loses nothing.
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = Db::open(Arc::clone(&storage), opts()).unwrap();
        let mut batch = WriteBatch::new();
        batch.put(1, b"first-life");
        batch.delete(2);
        db.write(batch, &WriteOptions::default()).unwrap();
    }
    {
        let db = Db::open(Arc::clone(&storage), opts()).unwrap();
        assert_eq!(db.stats().snapshot().flushes, 0);
        db.put(3, b"second-life").unwrap();
        // Crash again, still without a flush.
    }
    let db = Db::open(Arc::clone(&storage), opts()).unwrap();
    assert_eq!(db.get(1).unwrap(), Some(b"first-life".to_vec()));
    assert_eq!(db.get(2).unwrap(), None, "tombstone survives two crashes");
    assert_eq!(db.get(3).unwrap(), Some(b"second-life".to_vec()));
    let wals: Vec<String> = storage
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| n.ends_with(".wal"))
        .collect();
    assert_eq!(wals.len(), 1, "old logs retired on reopen: {wals:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reopen-after-crash: write a prefix of batches, tear the log at an
    /// arbitrary byte, reopen. Every batch whose frame survived must replay
    /// in full; every later batch must vanish in full — all-or-nothing per
    /// batch, regardless of where the tear lands.
    #[test]
    fn crash_replay_is_batch_atomic(
        batch_sizes in prop::collection::vec(1usize..20, 1..8),
        cut_fraction in 0.0f64..1.0,
    ) {
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        // Frame boundaries: frame_ends[i] = wal length after batch i.
        let mut frame_ends = Vec::new();
        {
            let db = Db::open(Arc::clone(&storage), opts()).unwrap();
            for (i, &size) in batch_sizes.iter().enumerate() {
                let mut batch = WriteBatch::new();
                for j in 0..size {
                    let k = (i * 1_000 + j) as u64;
                    batch.put(k, format!("v{i}-{j}").as_bytes());
                }
                db.write(batch, &WriteOptions::default()).unwrap();
                frame_ends.push(wal_len(&storage));
            }
        }
        let total = *frame_ends.last().unwrap();
        let cut = (total as f64 * cut_fraction) as usize;
        truncate_wal(&storage, cut.min(total));
        // Batches whose full frame fits within the cut survive.
        let surviving = frame_ends.iter().filter(|&&end| end <= cut).count();

        let db = Db::open(storage, opts()).unwrap();
        for (i, &size) in batch_sizes.iter().enumerate() {
            for j in 0..size {
                let k = (i * 1_000 + j) as u64;
                let got = db.get(k).unwrap();
                if i < surviving {
                    prop_assert_eq!(
                        got,
                        Some(format!("v{i}-{j}").into_bytes()),
                        "batch {} op {} must survive (cut {}/{})", i, j, cut, total
                    );
                } else {
                    prop_assert_eq!(
                        got,
                        None,
                        "batch {} op {} must vanish (cut {}/{})", i, j, cut, total
                    );
                }
            }
        }
    }
}

#[test]
fn file_storage_roundtrip_with_wal() {
    let dir = std::env::temp_dir().join(format!("learned-lsm-dur-{}", std::process::id()));
    let storage: Arc<dyn Storage> = Arc::new(FileStorage::new(&dir).unwrap());
    {
        let db = Db::open(Arc::clone(&storage), opts()).unwrap();
        for k in 0..3_000u64 {
            db.put(k * 2, format!("disk-{k}").as_bytes()).unwrap();
        }
        db.put(99_999, b"tail").unwrap();
    }
    {
        let db = Db::open(Arc::clone(&storage), opts()).unwrap();
        assert_eq!(db.get(4_000).unwrap(), Some(b"disk-2000".to_vec()));
        assert_eq!(db.get(99_999).unwrap(), Some(b"tail".to_vec()));
        assert_eq!(db.get(1).unwrap(), None);
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Background maintenance: shutdown and crash recovery. Acknowledged writes
// must survive (a) a point-in-time "crash image" taken while the immutable
// queue is non-empty, and (b) a clean drop that drains workers mid-flight.
// ---------------------------------------------------------------------------

use lsm_tree::Maintenance;

fn background_opts() -> Options {
    let mut o = opts();
    o.maintenance = Maintenance::background();
    o.max_immutable_memtables = 4;
    o
}

/// Copy every file of `storage` into a fresh `MemStorage` — a point-in-time
/// disk image, i.e. what a crash would leave behind.
fn disk_image(storage: &Arc<dyn Storage>) -> Arc<dyn Storage> {
    let image = MemStorage::new();
    for name in storage.list().unwrap() {
        let data = lsm_io::read_all(storage.as_ref(), &name).unwrap();
        let mut f = image.create(&name).unwrap();
        f.append(&data).unwrap();
        f.sync().unwrap();
    }
    Arc::new(image)
}

#[test]
fn background_crash_with_queued_memtables_loses_no_acknowledged_write() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let o = background_opts();
    let db = Db::open(Arc::clone(&storage), o.clone()).unwrap();
    // Freeze both worker pools so the on-disk state stays put while we
    // image it: rotations still happen (they are the writer's job), but
    // nothing flushes and nothing compacts.
    db.pause_flushes();
    db.pause_compactions();
    let mut key = 0u64;
    while db.immutable_memtables() < 2 {
        db.put(key, format!("imm-{key}").as_bytes()).unwrap();
        key += 1;
    }
    // Plus writes that only live in the active memtable + active WAL.
    for extra in 0..20u64 {
        db.put(1_000_000 + extra, b"active").unwrap();
    }
    db.delete(0).unwrap();
    assert!(db.immutable_memtables() >= 2, "queue is non-empty");
    assert_eq!(db.stats().snapshot().flushes, 0, "nothing flushed yet");

    // (a) Crash: a point-in-time disk image, taken while every worker is
    // idle (manifest must already name one WAL per queued memtable plus
    // the active one).
    let crashed = Db::open(disk_image(&storage), o.clone()).unwrap();
    for probe in (1..key).step_by(13) {
        assert_eq!(
            crashed.get(probe).unwrap(),
            Some(format!("imm-{probe}").into_bytes()),
            "queued write {probe} after crash"
        );
    }
    assert_eq!(crashed.get(1_000_005).unwrap(), Some(b"active".to_vec()));
    assert_eq!(crashed.get(0).unwrap(), None, "tombstone replayed");

    // (b) Clean drop: workers drain the queue (flushes override the pause
    // on shutdown), then a reopen finds everything — now in SSTables.
    drop(db);
    let reopened = Db::open(storage, o).unwrap();
    assert!(
        reopened.stats().snapshot().flushes == 0,
        "drained at shutdown: reopen replays at most the active WAL"
    );
    for probe in (1..key).step_by(7) {
        assert_eq!(
            reopened.get(probe).unwrap(),
            Some(format!("imm-{probe}").into_bytes()),
            "queued write {probe} after drop + reopen"
        );
    }
    assert_eq!(reopened.get(1_000_019).unwrap(), Some(b"active".to_vec()));
    assert_eq!(reopened.get(0).unwrap(), None);
}

#[test]
fn background_drop_during_inflight_compaction_loses_nothing() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let o = background_opts();
    {
        let db = Db::open(Arc::clone(&storage), o.clone()).unwrap();
        // Enough churn that flushes and compactions are genuinely racing
        // the drop below (no quiescing: Drop must drain cleanly).
        for k in 0..3_000u64 {
            db.put(k, format!("c{k}").as_bytes()).unwrap();
        }
        assert_eq!(db.background_error(), None);
        // Dropped with whatever flush/compaction happens to be in flight.
    }
    let db = Db::open(storage, o).unwrap();
    for k in (0..3_000u64).step_by(59) {
        assert_eq!(
            db.get(k).unwrap(),
            Some(format!("c{k}").into_bytes()),
            "key {k} after mid-maintenance drop"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Background-mode extension of the reopen-after-crash property: any
    /// sequence of acknowledged batches survives (a) a point-in-time disk
    /// image while flushes are withheld and (b) a draining drop + reopen —
    /// regardless of how the batches land relative to rotations.
    #[test]
    fn background_acknowledged_batches_survive_crash_and_drop(
        batch_sizes in prop::collection::vec(1usize..24, 1..10),
        withhold_flushes in any::<bool>(),
    ) {
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let o = background_opts();
        let db = Db::open(Arc::clone(&storage), o.clone()).unwrap();
        if withhold_flushes {
            db.pause_flushes();
            db.pause_compactions();
        }
        for (i, &size) in batch_sizes.iter().enumerate() {
            let mut batch = WriteBatch::new();
            for j in 0..size {
                let k = (i * 1_000 + j) as u64;
                batch.put(k, format!("v{i}-{j}").as_bytes());
            }
            db.write(batch, &WriteOptions::default()).unwrap();
        }
        if withhold_flushes {
            // Workers are frozen: the disk image is a valid crash state.
            let crashed = Db::open(disk_image(&storage), o.clone()).unwrap();
            for (i, &size) in batch_sizes.iter().enumerate() {
                for j in 0..size {
                    let k = (i * 1_000 + j) as u64;
                    prop_assert_eq!(
                        crashed.get(k).unwrap(),
                        Some(format!("v{i}-{j}").into_bytes()),
                        "crash image lost batch {} op {}", i, j
                    );
                }
            }
        }
        drop(db);
        let reopened = Db::open(storage, o).unwrap();
        for (i, &size) in batch_sizes.iter().enumerate() {
            for j in 0..size {
                let k = (i * 1_000 + j) as u64;
                prop_assert_eq!(
                    reopened.get(k).unwrap(),
                    Some(format!("v{i}-{j}").into_bytes()),
                    "drop + reopen lost batch {} op {}", i, j
                );
            }
        }
    }
}
