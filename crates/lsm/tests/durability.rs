//! Durability integration tests: WAL replay on reopen, including writes
//! that never reached a flush, on both in-memory and real-filesystem
//! storage.

use std::sync::Arc;

use learned_index::IndexKind;
use lsm_tree::{Db, Options};
use lsm_io::{FileStorage, MemStorage, Storage};

fn opts() -> Options {
    let mut o = Options::small_for_tests();
    o.index.kind = IndexKind::Pgm;
    o
}

#[test]
fn unflushed_writes_survive_reopen() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = Db::open(Arc::clone(&storage), opts()).unwrap();
        // Small enough to stay in the memtable (no flush).
        for k in 0..50u64 {
            db.put(k, format!("wal-{k}").as_bytes()).unwrap();
        }
        db.delete(7).unwrap();
        assert_eq!(db.stats().snapshot().flushes, 0, "must not have flushed");
        // Dropped without flush: simulates a crash.
    }
    let db = Db::open(storage, opts()).unwrap();
    assert_eq!(db.get(3).unwrap(), Some(b"wal-3".to_vec()));
    assert_eq!(db.get(7).unwrap(), None, "tombstone replayed");
    assert_eq!(db.get(49).unwrap(), Some(b"wal-49".to_vec()));
}

#[test]
fn replay_preserves_sequence_ordering() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = Db::open(Arc::clone(&storage), opts()).unwrap();
        db.put(1, b"first").unwrap();
        db.put(1, b"second").unwrap();
        db.put(1, b"third").unwrap();
    }
    let db = Db::open(Arc::clone(&storage), opts()).unwrap();
    assert_eq!(db.get(1).unwrap(), Some(b"third".to_vec()));
    // New writes continue after the replayed sequence numbers.
    db.put(1, b"fourth").unwrap();
    assert_eq!(db.get(1).unwrap(), Some(b"fourth".to_vec()));
}

#[test]
fn mixed_flushed_and_unflushed_state_recovers() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = Db::open(Arc::clone(&storage), opts()).unwrap();
        for k in 0..2_000u64 {
            db.put(k, b"flushed").unwrap(); // crosses several flushes
        }
        for k in 2_000..2_020u64 {
            db.put(k, b"pending").unwrap(); // stays in the memtable
        }
    }
    let db = Db::open(storage, opts()).unwrap();
    assert_eq!(db.get(500).unwrap(), Some(b"flushed".to_vec()));
    assert_eq!(db.get(2_010).unwrap(), Some(b"pending".to_vec()));
}

#[test]
fn wal_disabled_loses_unflushed_but_keeps_tables() {
    let mut o = opts();
    o.wal = false;
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = Db::open(Arc::clone(&storage), o.clone()).unwrap();
        for k in 0..2_000u64 {
            db.put(k, b"flushed").unwrap();
        }
        db.put(9_999, b"unflushed").unwrap();
    }
    let db = Db::open(storage, o).unwrap();
    assert_eq!(db.get(500).unwrap(), Some(b"flushed".to_vec()));
    assert_eq!(db.get(9_999).unwrap(), None, "no WAL, write lost");
}

#[test]
fn old_wals_are_retired_after_flush() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let db = Db::open(Arc::clone(&storage), opts()).unwrap();
    for k in 0..5_000u64 {
        db.put(k, &[1u8; 16]).unwrap();
    }
    db.flush().unwrap();
    let wals: Vec<String> = storage
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| n.ends_with(".wal"))
        .collect();
    assert_eq!(wals.len(), 1, "exactly one live log: {wals:?}");
}

#[test]
fn file_storage_roundtrip_with_wal() {
    let dir = std::env::temp_dir().join(format!("learned-lsm-dur-{}", std::process::id()));
    let storage: Arc<dyn Storage> = Arc::new(FileStorage::new(&dir).unwrap());
    {
        let db = Db::open(Arc::clone(&storage), opts()).unwrap();
        for k in 0..3_000u64 {
            db.put(k * 2, format!("disk-{k}").as_bytes()).unwrap();
        }
        db.put(99_999, b"tail").unwrap();
    }
    {
        let db = Db::open(Arc::clone(&storage), opts()).unwrap();
        assert_eq!(db.get(4_000).unwrap(), Some(b"disk-2000".to_vec()));
        assert_eq!(db.get(99_999).unwrap(), Some(b"tail".to_vec()));
        assert_eq!(db.get(1).unwrap(), None);
    }
    std::fs::remove_dir_all(&dir).ok();
}
