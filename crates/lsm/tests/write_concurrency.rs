//! Concurrency tests for the pipelined group commit (`crates/lsm/src/db.rs`):
//! with many writer threads racing through the writer queue, no reader —
//! snapshot-pinned or live — may ever observe a *torn* batch (some of a
//! batch's keys updated, others not), and every acknowledged write must be
//! immediately visible to its writer. These are the two invariants the
//! fence-publish discipline exists for.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use learned_index::IndexKind;
use lsm_tree::{Db, Maintenance, Options, ReadOptions, WriteBatch, WriteOptions};

const KEYS: u64 = 8;
const WRITERS: u64 = 4;
const ROUNDS: u64 = 400;

/// Every batch stamps all `KEYS` keys with one value, so any snapshot must
/// see all keys carrying the *same* stamp: batches are totally ordered by
/// their sequence ranges, and the published ceiling admits whole batches
/// only. A mixed read is a torn batch — exactly what the group-commit
/// publication protocol must rule out.
fn run_torn_read_check(opts: Options) {
    let db = Arc::new(Db::open_memory(opts).unwrap());
    // Ground state so the reader never sees missing keys.
    let mut init = WriteBatch::new();
    for k in 0..KEYS {
        init.put(k, &u64::MAX.to_le_bytes());
    }
    db.write(init, &WriteOptions::default()).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for r in 0..ROUNDS {
                    let stamp = (t << 32) | r;
                    let mut batch = WriteBatch::new();
                    for k in 0..KEYS {
                        batch.put(k, &stamp.to_le_bytes());
                    }
                    let last = db.write(batch, &WriteOptions::default()).unwrap();
                    // Read-your-writes: an acknowledged batch is below the
                    // published ceiling before `write` returns.
                    assert!(
                        db.latest_seq() >= last,
                        "ack'd write above the published ceiling"
                    );
                }
            })
        })
        .collect();

    let reader = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut checks = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = db.snapshot();
                let ropts = ReadOptions::at(&snap);
                let first = db.get_with(0, &ropts).unwrap().expect("key 0 initialized");
                for k in 1..KEYS {
                    let got = db.get_with(k, &ropts).unwrap().expect("key initialized");
                    assert_eq!(
                        got,
                        first,
                        "torn batch at ceiling {}: key {k} disagrees with key 0",
                        snap.seq()
                    );
                }
                checks += 1;
            }
            checks
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let checks = reader.join().unwrap();
    assert!(checks > 0, "reader never ran");

    // The final state is the serially-last batch, uniform across keys.
    let last = db.get(0).unwrap().expect("key 0");
    for k in 1..KEYS {
        assert_eq!(db.get(k).unwrap().as_deref(), Some(last.as_slice()));
    }

    // Accounting: every batch committed exactly once; groups fuse batches,
    // never split them; one WAL record per group.
    let s = db.stats().snapshot();
    assert_eq!(s.write_batches, WRITERS * ROUNDS + 1);
    assert_eq!(s.write_entries, (WRITERS * ROUNDS + 1) * KEYS);
    assert!(s.write_groups >= 1 && s.write_groups <= s.write_batches);
    assert_eq!(s.wal_appends, s.write_groups, "one fused record per group");
}

#[test]
fn concurrent_batches_are_never_torn_synchronous() {
    let mut opts = Options::small_for_tests();
    opts.index.kind = IndexKind::Pgm;
    run_torn_read_check(opts);
}

#[test]
fn concurrent_batches_are_never_torn_background() {
    let mut opts = Options::small_for_tests();
    opts.index.kind = IndexKind::Pgm;
    opts.maintenance = Maintenance::Background {
        flush_threads: 1,
        compaction_threads: 1,
    };
    run_torn_read_check(opts);
}

/// Single-writer sanity under the queue: sequential writes still form one
/// group each, and a snapshot taken between writes pins its prefix across
/// later concurrent overwrites.
#[test]
fn snapshot_pins_prefix_across_concurrent_overwrites() {
    let mut opts = Options::small_for_tests();
    opts.index.kind = IndexKind::Pgm;
    let db = Arc::new(Db::open_memory(opts).unwrap());
    for k in 0..KEYS {
        db.put(k, b"before").unwrap();
    }
    let snap = db.snapshot();
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for r in 0..64u64 {
                    let mut batch = WriteBatch::new();
                    for k in 0..KEYS {
                        batch.put(k, &((t << 32) | r).to_le_bytes());
                    }
                    db.write(batch, &WriteOptions::default()).unwrap();
                }
            })
        })
        .collect();
    // While the writers churn, the pinned view must stay exactly "before".
    for _ in 0..200 {
        for k in 0..KEYS {
            let got = db.get_with(k, &ReadOptions::at(&snap)).unwrap();
            assert_eq!(got.as_deref(), Some(&b"before"[..]));
        }
    }
    for w in writers {
        w.join().unwrap();
    }
    for k in 0..KEYS {
        let got = db.get_with(k, &ReadOptions::at(&snap)).unwrap();
        assert_eq!(got.as_deref(), Some(&b"before"[..]));
        assert_ne!(db.get(k).unwrap().as_deref(), Some(&b"before"[..]));
    }
}
