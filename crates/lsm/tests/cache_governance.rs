//! Memory-governance integration tests: the engine-wide cache budget under
//! concurrency, scan/compaction pollution regressions, and the shared
//! sharded budget — including the PR's acceptance experiment (skewed reads
//! under one shared budget vs. per-shard split budgets).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use learned_index::IndexKind;
use lsm_io::{CostModel, SimStorage, Storage};
use lsm_tree::{BlockCache, BlockKey, Db, Options, ReadOptions, ShardedDb, ShardedOptions};
use lsm_workloads::RequestDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BLOCK: usize = 4096;

fn key(table_id: u64, block_no: u64) -> BlockKey {
    BlockKey { table_id, block_no }
}

fn block(bytes: usize) -> Arc<Vec<u8>> {
    Arc::new(vec![0u8; bytes])
}

/// Concurrent get/insert/evict_table storm across every stripe: the byte
/// budget must hold at every instant, and when the dust settles every
/// charged byte must still be accounted for (no lost slots, no leaked
/// reservations from insert/evict races).
#[test]
fn cache_storm_holds_budget_and_loses_nothing() {
    let cache = Arc::new(BlockCache::new(64 * BLOCK));
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for t in 0..8u64 {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(t);
            for i in 0..3_000u64 {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                let table = rng.gen_range(0..6u64);
                match i % 4 {
                    0 | 1 => cache.insert(key(table, rng.gen_range(0..64)), block(BLOCK)),
                    2 => {
                        let _ = cache.get(key(table, rng.gen_range(0..64)));
                    }
                    _ => {
                        if i % 61 == 0 {
                            cache.evict_table(table);
                        } else {
                            cache.insert(key(table, rng.gen_range(0..64)), block(BLOCK / 2));
                        }
                    }
                }
                assert!(
                    cache.used_bytes() <= cache.capacity_bytes(),
                    "budget overshot mid-storm: {} > {}",
                    cache.used_bytes(),
                    cache.capacity_bytes()
                );
            }
        }));
    }
    for th in threads {
        if let Err(e) = th.join() {
            stop.store(true, Ordering::Relaxed);
            std::panic::resume_unwind(e);
        }
    }
    assert!(cache.used_bytes() <= cache.capacity_bytes());
    // Dropping every table must return the budget to exactly zero: any
    // residue would be a slot lost by a racing insert/evict pair.
    for table in 0..6u64 {
        cache.evict_table(table);
    }
    assert_eq!(cache.used_bytes(), 0, "bytes leaked by the storm");
}

fn cached_db(cache_bytes: usize, keys: u64) -> Db {
    let mut o = Options::small_for_tests();
    o.index.kind = IndexKind::Pgm;
    o.block_cache_bytes = cache_bytes;
    let storage: Arc<dyn Storage> = Arc::new(SimStorage::new(CostModel::default()));
    let db = Db::open(storage, o).unwrap();
    for k in 0..keys {
        db.put(k, format!("value-{k}").as_bytes()).unwrap();
    }
    db.flush().unwrap();
    db
}

/// Hit rate of `rounds` passes over the hot key set.
fn hot_hit_rate(db: &Db, hot: &[u64], rounds: usize) -> f64 {
    let cache = db.block_cache().unwrap();
    let (h0, m0) = cache.hit_miss();
    for _ in 0..rounds {
        for &k in hot {
            assert!(db.get(k).unwrap().is_some());
        }
    }
    let (h1, m1) = cache.hit_miss();
    let (h, m) = (h1 - h0, m1 - m0);
    h as f64 / (h + m).max(1) as f64
}

/// The scan-pollution regression of this PR: a hot point-read working set
/// must keep its hit rate (±5%) across (a) a full-table no-fill scan and
/// (b) compactions — both used to flush the working set out of the cache
/// (scans filled unconditionally; compaction read its inputs through the
/// cache and then discarded what it inserted).
#[test]
fn hot_hit_rate_survives_scan_and_compaction() {
    let db = cached_db(256 << 10, 50_000);
    let hot: Vec<u64> = (0..64u64).collect();
    // Warm, then baseline.
    hot_hit_rate(&db, &hot, 3);
    let baseline = hot_hit_rate(&db, &hot, 5);
    assert!(baseline > 0.9, "hot set must be cache-resident: {baseline}");

    // (a) Full-table analytical scan, fill_cache = false.
    let ropts = ReadOptions {
        fill_cache: false,
        ..ReadOptions::new()
    };
    let mut it = db.iter_with(&ropts).unwrap();
    it.seek_to_first();
    let mut n = 0u64;
    while it.next().unwrap().is_some() {
        n += 1;
    }
    assert_eq!(n, 50_000);
    let after_scan = hot_hit_rate(&db, &hot, 5);
    assert!(
        after_scan >= baseline - 0.05,
        "scan polluted the cache: {baseline} -> {after_scan}"
    );

    // (b) Churn a cold key range until compactions run.
    let compactions_before = db.stats().snapshot().compactions;
    for k in 30_000..38_000u64 {
        db.put(k, b"rewritten").unwrap();
    }
    db.flush().unwrap();
    let compacted = db.stats().snapshot().compactions - compactions_before;
    assert!(compacted > 0, "churn must trigger compactions");
    let after_compact = hot_hit_rate(&db, &hot, 5);
    assert!(
        after_compact >= baseline - 0.05,
        "compaction polluted the cache: {baseline} -> {after_compact}"
    );
}

/// Two shards, one budget: hammering one shard's working set must be able
/// to take cache space previously held by the other (cold) shard — the
/// whole point of the shared budget.
#[test]
fn hot_shard_displaces_cold_shards_blocks() {
    let mut base = Options::small_for_tests();
    base.index.kind = IndexKind::Pgm;
    let sample: Vec<u64> = (0..20_000u64).collect();
    let opts = ShardedOptions::learned(2, sample, base).with_cache_bytes(256 << 10);
    let storage: Arc<dyn Storage> = Arc::new(SimStorage::new(CostModel::default()));
    let db = ShardedDb::open(storage, opts).unwrap();
    for k in 0..20_000u64 {
        db.put(k, format!("value-{k}").as_bytes()).unwrap();
    }
    db.flush().unwrap();

    let cache = db.cache().expect("shared cache must exist");
    // The budget must be larger than the pinned index/filter charges
    // (those win unconditionally) so blocks have room to compete over.
    let pinned = cache.stats().table_used_bytes;
    assert!(
        (pinned as usize) < cache.capacity_bytes() / 2,
        "test needs block headroom: {pinned} pinned of {}",
        cache.capacity_bytes()
    );
    // Warm the cold shard (upper key range) until its blocks occupy the
    // budget, counting how many distinct blocks that set touches.
    let ins_before_warm = cache.stats().block_insertions;
    for k in (10_000..20_000u64).step_by(20) {
        db.get(k).unwrap();
    }
    let cold_blocks = cache.stats().block_insertions - ins_before_warm;
    let cold_resident = cache.stats().block_used_bytes;
    assert!(cold_resident > 0, "cold warm-up must cache something");
    // Hammer a working set on the hot shard until the cold blocks have
    // been repurposed.
    for _ in 0..50 {
        for k in (0..5_000u64).step_by(20) {
            db.get(k).unwrap();
        }
    }
    assert!(
        cache.used_bytes() as u64 <= cache.capacity_bytes() as u64,
        "shared budget overshot"
    );
    // Re-reading the cold range must now re-fetch (miss) most of its
    // distinct blocks — they were displaced to fund the hot shard. If the
    // budget were still private per shard, the cold set would have stayed
    // resident untouched.
    let (_, m0) = cache.hit_miss();
    for k in (10_000..20_000u64).step_by(20) {
        db.get(k).unwrap();
    }
    let (_, m1) = cache.hit_miss();
    let refetched = m1 - m0;
    assert!(
        refetched >= cold_blocks / 2,
        "cold shard's blocks should have been displaced: \
         {refetched} of {cold_blocks} distinct blocks re-fetched"
    );
}

/// Modeled device time for `ops` zipfian point reads against a fresh
/// 4-shard database with the given cache configuration.
fn skewed_read_device_ns(total_budget: usize, split_budget: bool) -> u64 {
    const KEYS: u64 = 24_000;
    let mut base = Options::small_for_tests();
    base.index.kind = IndexKind::Pgm;
    let sample: Vec<u64> = (0..KEYS).collect();
    let mut opts = ShardedOptions::learned(4, sample, base).with_cache_bytes(total_budget);
    if split_budget {
        opts = opts.with_split_cache_budget();
    }
    let sim = Arc::new(SimStorage::new(CostModel::default()));
    let storage: Arc<dyn Storage> = Arc::clone(&sim) as Arc<dyn Storage>;
    let db = ShardedDb::open(storage, opts).unwrap();
    for k in 0..KEYS {
        db.put(k, format!("value-{k}").as_bytes()).unwrap();
    }
    db.flush().unwrap();

    // YCSB-C: 100% reads, zipfian over key positions. Rank 0 is hottest
    // and ranks map straight onto the sorted key space, so the head of
    // the distribution is a contiguous range owned by one shard — the
    // skewed-shard scenario the shared budget exists for.
    let chooser = RequestDistribution::Zipfian { theta: 0.99 }.chooser(KEYS as usize);
    let mut rng = StdRng::seed_from_u64(0x9c3b);
    for _ in 0..10_000 {
        db.get(chooser.next(&mut rng) as u64).unwrap();
    }
    let before = sim.stats().snapshot();
    for _ in 0..30_000 {
        db.get(chooser.next(&mut rng) as u64).unwrap();
    }
    sim.stats().snapshot().since(&before).sim_read_ns
}

/// Acceptance criterion: at a fixed byte budget, 4-shard skewed-read
/// throughput with the shared cache must be ≥ 1.3× the per-shard
/// split-budget baseline. Reads are I/O-bound on the simulated device, so
/// at a fixed op count throughput is inversely proportional to modeled
/// device time: the split baseline must burn ≥ 1.3× the device time.
#[test]
fn shared_budget_beats_split_budget_on_skewed_reads() {
    let budget = 128 << 10;
    let shared_ns = skewed_read_device_ns(budget, false);
    let split_ns = skewed_read_device_ns(budget, true);
    println!(
        "shared {shared_ns} ns, split {split_ns} ns, ratio {:.2}x",
        split_ns as f64 / shared_ns.max(1) as f64
    );
    assert!(
        split_ns as f64 >= 1.3 * shared_ns as f64,
        "shared budget must serve a skewed load ≥1.3× better: \
         shared {shared_ns} ns vs split {split_ns} ns ({:.2}×)",
        split_ns as f64 / shared_ns.max(1) as f64
    );
}
