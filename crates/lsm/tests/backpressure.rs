//! Background-maintenance integration tests: LevelDB-style write
//! backpressure (slowdown / stop triggers, immutable-queue cap) and the
//! foreground/maintenance overlap the scheduler exists to provide.
//!
//! The trigger tests are deterministic: compactions are paused so L0
//! pressure builds exactly one table per explicit flush, and every
//! assertion is about *whether* a stall was recorded (counters), never
//! about how long anything took.

use std::sync::Arc;

use learned_index::IndexKind;
use lsm_io::CostModel;
use lsm_tree::{Db, Maintenance, Options};

/// Tight triggers so a handful of 24-byte-value flushes walk L0 through
/// the slowdown (3) and stop (5) thresholds.
fn bp_opts() -> Options {
    let mut o = Options::small_for_tests();
    o.index.kind = IndexKind::Pgm;
    o.maintenance = Maintenance::background();
    o.l0_slowdown_trigger = 3;
    o.l0_stop_trigger = 5;
    o.max_immutable_memtables = 4;
    o
}

/// Write `n` small records starting at `*key` and force them into one L0
/// table (`flush` rotates + blocks until the queue drains).
fn flush_one_table(db: &Db, key: &mut u64, n: u64) {
    for _ in 0..n {
        db.put(*key, &[7u8; 24]).unwrap();
        *key += 1;
    }
    db.flush().unwrap();
}

fn l0_len(db: &Db) -> usize {
    db.version().levels[0].len()
}

#[test]
fn writers_slow_at_slowdown_and_stop_at_stop_trigger() {
    let db = Arc::new(Db::open_sim(bp_opts(), CostModel::default()).unwrap());
    db.pause_compactions();
    let mut key = 0u64;

    // Below the slowdown trigger: writes are unimpeded.
    while l0_len(&db) < 2 {
        flush_one_table(&db, &mut key, 40);
    }
    let before = db.stats().snapshot();
    for _ in 0..20 {
        db.put(key, &[7u8; 24]).unwrap();
        key += 1;
    }
    let delta = db.stats().snapshot().since(&before);
    assert_eq!(delta.stall_slowdowns, 0, "below trigger: no delays");
    assert_eq!(delta.stall_stops, 0);

    // At the slowdown trigger: every write is delayed once (~1 ms) and the
    // stall counters record it.
    while l0_len(&db) < 3 {
        flush_one_table(&db, &mut key, 40);
    }
    assert!(
        l0_len(&db) >= 3 && l0_len(&db) < 5,
        "L0 in the slowdown zone"
    );
    let before = db.stats().snapshot();
    for _ in 0..5 {
        db.put(key, &[7u8; 24]).unwrap();
        key += 1;
    }
    let delta = db.stats().snapshot().since(&before);
    assert_eq!(delta.stall_slowdowns, 5, "one delay per write in the zone");
    assert_eq!(delta.stall_stops, 0, "no hard stop below the stop trigger");
    assert!(delta.stall_ns > 0, "delays are timed");

    // Push L0 to the stop trigger (explicit flushes bypass backpressure —
    // they are orders, not writes).
    while l0_len(&db) < 5 {
        flush_one_table(&db, &mut key, 40);
    }
    assert!(l0_len(&db) >= 5);

    // A writer that fills the buffer must now block until compaction
    // catches up. Only resuming compactions can release it.
    let stopped_before = db.stats().snapshot().stall_stops;
    let writer = {
        let db = Arc::clone(&db);
        let start_key = key;
        std::thread::spawn(move || {
            // ~420 * 60 bytes ≈ 25 KiB: crosses the 16 KiB buffer, so one
            // of these writes needs a rotation and must hit the stop gate.
            for i in 0..420u64 {
                db.put(start_key + i, &[7u8; 24]).unwrap();
            }
        })
    };
    // Deterministic: the writer cannot finish while L0 ≥ stop and
    // compactions are paused, so the stalled-writers gauge must rise.
    while db.stats().stalled_writers() == 0 {
        std::thread::yield_now();
    }
    // Resuming compaction is what releases it.
    db.resume_compactions();
    writer.join().unwrap();
    db.wait_for_maintenance();
    assert!(
        db.stats().snapshot().stall_stops > stopped_before,
        "the writer recorded a hard stop"
    );
    assert!(l0_len(&db) < 5, "compaction caught up after the stall");
    assert_eq!(db.background_error(), None);

    // Nothing was lost across the stalls.
    for probe in (0..key).step_by(61) {
        assert_eq!(db.get(probe).unwrap(), Some(vec![7u8; 24]), "key {probe}");
    }
}

#[test]
fn writers_stop_when_immutable_queue_is_full() {
    let mut opts = bp_opts();
    opts.max_immutable_memtables = 2;
    // Sky-high L0 triggers: this test isolates the queue-cap stall.
    opts.l0_slowdown_trigger = 1_000;
    opts.l0_stop_trigger = 1_000;
    let db = Arc::new(Db::open_memory(opts).unwrap());
    db.pause_flushes();

    // Fill the queue to its cap: each rotation is admitted while the queue
    // has a free slot.
    let mut key = 0u64;
    while db.immutable_memtables() < 2 {
        db.put(key, &[9u8; 24]).unwrap();
        key += 1;
    }
    let stopped_before = db.stats().snapshot().stall_stops;

    // The next buffer-full write has no slot to rotate into: it must stall
    // until a flush drains the queue.
    let writer = {
        let db = Arc::clone(&db);
        let start_key = key;
        std::thread::spawn(move || {
            for i in 0..420u64 {
                db.put(start_key + i, &[9u8; 24]).unwrap();
            }
        })
    };
    // The writer must be observably blocked before a flush frees a slot.
    while db.stats().stalled_writers() == 0 {
        std::thread::yield_now();
    }
    db.resume_flushes();
    writer.join().unwrap();
    db.wait_for_maintenance();
    assert!(
        db.stats().snapshot().stall_stops > stopped_before,
        "queue-full stall recorded"
    );
    assert_eq!(db.immutable_memtables(), 0, "queue drained");
    assert_eq!(db.background_error(), None);
    for probe in (0..key + 420).step_by(37) {
        assert_eq!(db.get(probe).unwrap(), Some(vec![9u8; 24]), "key {probe}");
    }
}

/// The acceptance check for the scheduler: on the simulated NVMe, a
/// write-heavy workload overlaps foreground writes with at least one
/// concurrent background flush or compaction, witnessed by the
/// `writes_during_maintenance` counter (incremented only when a write
/// returns while a worker is mid-task) and non-zero worker busy time.
#[test]
fn writers_overlap_with_background_maintenance_on_sim_nvme() {
    let mut opts = Options::small_for_tests();
    opts.index.kind = IndexKind::Pgm;
    opts.maintenance = Maintenance::Background {
        flush_threads: 1,
        compaction_threads: 1,
    };
    let db = Db::open_sim(opts, CostModel::default()).unwrap();
    let mut key = 0u64;
    // Keep writing rounds until overlap is observed (first round almost
    // always suffices; the cap keeps a pathological scheduler from
    // spinning forever).
    for _round in 0..50 {
        for _ in 0..4_000 {
            db.put(key, &[3u8; 24]).unwrap();
            key += 1;
        }
        if db.stats().snapshot().writes_during_maintenance > 0 {
            break;
        }
    }
    db.flush().unwrap();
    db.wait_for_maintenance();
    let s = db.stats().snapshot();
    assert!(s.imm_rotations > 0, "memtables rotated, not inline-flushed");
    assert!(s.flushes > 0, "background flushes ran");
    assert!(s.bg_flush_ns > 0, "flush workers accumulated busy time");
    assert!(
        s.writes_during_maintenance > 0,
        "at least one write completed while a worker was busy"
    );
    assert_eq!(db.background_error(), None);
    for probe in (0..key).step_by(101) {
        assert_eq!(db.get(probe).unwrap(), Some(vec![3u8; 24]), "key {probe}");
    }
    // The tree invariant was restored concurrently, not by the writers.
    assert!(
        db.version().levels[0].len() < db.options().l0_stop_trigger,
        "L0 under control"
    );
}

/// Synchronous mode must never stall or rotate: the counters that drive
/// the backpressure machinery stay at zero, keeping the paper's
/// deterministic experiments byte-identical.
#[test]
fn synchronous_mode_records_no_stalls_or_rotations() {
    let mut opts = Options::small_for_tests();
    opts.index.kind = IndexKind::Pgm;
    let db = Db::open_memory(opts).unwrap();
    for k in 0..3_000u64 {
        db.put(k, &[1u8; 24]).unwrap();
    }
    db.flush().unwrap();
    let s = db.stats().snapshot();
    assert!(s.flushes > 0);
    assert_eq!(s.stall_slowdowns, 0);
    assert_eq!(s.stall_stops, 0);
    assert_eq!(s.stall_ns, 0);
    assert_eq!(s.imm_rotations, 0);
    assert_eq!(s.bg_flush_ns, 0);
    assert_eq!(s.bg_compact_ns, 0);
    assert_eq!(s.writes_during_maintenance, 0);
    assert_eq!(db.immutable_memtables(), 0);
}
