//! Integration tests for the engine-wide observability layer: the split
//! lifecycle must appear in the event timeline as an ordered, span-linked
//! `SplitBegin` → `SplitDualWrite` → `SplitCutover` triple, and turning
//! observability *off* must leave the engine's `DbStats` counters exactly
//! as they were — the disabled hot path is a single untaken branch.

use std::sync::Arc;

use lsm_io::{MemStorage, Storage};
use lsm_tree::{
    Db, Event, EventKind, Options, ShardedDb, ShardedOptions, WriteBatch, WriteOptions,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn obs_opts() -> Options {
    let mut o = Options::small_for_tests();
    o.observability = true;
    o
}

/// A zipfian-skewed insert stream against uniform-trained boundaries
/// forces live splits; the drained timeline must carry each split as a
/// `SplitBegin` → `SplitDualWrite` → `SplitCutover` triple in that order,
/// all three sharing one span id.
#[test]
fn live_split_emits_ordered_span_linked_lifecycle_events() {
    // Boundaries trained for a uniform key space, then a stream dense
    // near zero: shard 0 fattens until the resident-bytes trigger fires.
    let uniform_sample: Vec<u64> = (0..4096u64).map(|i| i << 32).collect();
    let opts = ShardedOptions::learned(2, uniform_sample, obs_opts())
        .with_max_shards(8)
        .with_split_trigger(0.10, 32 << 10);
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let db = ShardedDb::open(Arc::clone(&storage), opts).unwrap();
    let observer = Arc::clone(db.observer().expect("observability is on"));

    // Drain as we go: the ring keeps the *oldest* events on overflow, so
    // a long stream could otherwise crowd out late-arriving split events.
    let mut timeline: Vec<Event> = Vec::new();
    let mut rng = StdRng::seed_from_u64(0x0b5);
    let mut batch = WriteBatch::new();
    let value = vec![9u8; 32];
    for i in 0..40_000u64 {
        // Dense low keys with a thin uniform tail, every key fresh.
        let k = if i % 16 == 0 {
            rng.gen::<u64>()
        } else {
            rng.gen_range(0..1u64 << 20)
        };
        batch.put(k, &value);
        if batch.len() >= 8 {
            db.write(std::mem::take(&mut batch), &WriteOptions::default())
                .unwrap();
            timeline.extend(observer.drain());
        }
        if db.sharded_stats().merged.shard_splits >= 2 {
            break;
        }
    }
    db.write(batch, &WriteOptions::default()).unwrap();
    while db.rebalance().unwrap() {}
    timeline.extend(observer.drain());

    let splits = db.sharded_stats().merged.shard_splits;
    assert!(splits >= 1, "stream never triggered a live split");
    assert_eq!(observer.dropped(), 0, "drain cadence must outrun the ring");

    let begins: Vec<&Event> = timeline
        .iter()
        .filter(|e| e.kind == EventKind::SplitBegin)
        .collect();
    assert_eq!(begins.len() as u64, splits, "one SplitBegin per split");
    for begin in begins {
        assert_ne!(begin.span, 0, "live spans are non-zero");
        let phases: Vec<(usize, EventKind)> = timeline
            .iter()
            .enumerate()
            .filter(|(_, e)| e.span == begin.span)
            .map(|(i, e)| (i, e.kind))
            .collect();
        assert_eq!(
            phases.iter().map(|(_, k)| *k).collect::<Vec<_>>(),
            vec![
                EventKind::SplitBegin,
                EventKind::SplitDualWrite,
                EventKind::SplitCutover
            ],
            "split span {} must run begin → dual-write → cutover",
            begin.span
        );
        // Ordered by timeline position *and* by timestamp.
        assert!(phases.windows(2).all(|w| w[0].0 < w[1].0));
        let ts: Vec<u64> = timeline
            .iter()
            .filter(|e| e.span == begin.span)
            .map(|e| e.ts_ns)
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        // Begin and dual-write name the same parent shard.
        let parents: Vec<u64> = timeline
            .iter()
            .filter(|e| e.span == begin.span && e.kind != EventKind::SplitCutover)
            .map(|e| e.a)
            .collect();
        assert!(parents.windows(2).all(|w| w[0] == w[1]));
    }

    // Each split's cutover publishes a fresh topology epoch; the last
    // cutover must carry the current one.
    let last_epoch = timeline
        .iter()
        .rev()
        .find(|e| e.kind == EventKind::SplitCutover)
        .map(|e| e.b)
        .unwrap();
    assert_eq!(last_epoch, db.topology_epoch());
}

/// A range-partitioned compaction must appear in the timeline as
/// `subcompaction_begin` / `subcompaction_end` sub-spans nested inside
/// their parent `compaction_begin` / `compaction_end` span: each sub-span
/// begin carries the parent's span id in `a`, sits between the parent's
/// begin and end, and the sub-spans' output bytes sum to the parent's.
#[test]
fn parallel_compaction_emits_parent_linked_sub_spans() {
    let mut opts = obs_opts();
    opts.max_subcompactions = 4;
    let db = Db::open_memory(opts).unwrap();
    let observer = Arc::clone(db.observability().expect("observability is on").observer());

    // Drain as we go so the ring never overflows mid-stream.
    let mut timeline: Vec<Event> = Vec::new();
    for k in 0..30_000u64 {
        db.put(k, &k.to_le_bytes()).unwrap();
        if k % 512 == 0 {
            timeline.extend(observer.drain());
        }
    }
    timeline.extend(observer.drain());
    assert_eq!(observer.dropped(), 0, "drain cadence must outrun the ring");

    let sub_begins: Vec<(usize, &Event)> = timeline
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind == EventKind::SubcompactionBegin)
        .collect();
    assert!(
        !sub_begins.is_empty(),
        "the stream must partition at least one compaction"
    );

    for (begin_idx, begin) in &sub_begins {
        assert_ne!(begin.span, 0, "sub-spans carry live span ids");
        let parent_span = begin.a;
        // The parent compaction span exists and brackets the sub-span.
        let parent_begin = timeline
            .iter()
            .position(|e| e.kind == EventKind::CompactionBegin && e.span == parent_span)
            .expect("sub-span's `a` names a compaction_begin span");
        let parent_end = timeline
            .iter()
            .position(|e| e.kind == EventKind::CompactionEnd && e.span == parent_span)
            .expect("parent compaction must end");
        let sub_end = timeline
            .iter()
            .position(|e| e.kind == EventKind::SubcompactionEnd && e.span == begin.span)
            .expect("every sub-span ends");
        assert!(parent_begin < *begin_idx, "sub-span begins after parent");
        assert!(*begin_idx < sub_end, "sub-span ends after it begins");
        assert!(sub_end < parent_end, "sub-span ends before parent");
    }

    // Per parent: sub-range output bytes sum to the parent's output bytes,
    // and sub-range indexes (begin.b) are 0..n without gaps.
    let parents: std::collections::BTreeSet<u64> = sub_begins.iter().map(|(_, e)| e.a).collect();
    for parent_span in parents {
        let subs: Vec<&Event> = sub_begins
            .iter()
            .filter(|(_, e)| e.a == parent_span)
            .map(|(_, e)| *e)
            .collect();
        let mut indexes: Vec<u64> = subs.iter().map(|e| e.b).collect();
        indexes.sort_unstable();
        assert_eq!(
            indexes,
            (0..subs.len() as u64).collect::<Vec<_>>(),
            "sub-range indexes are dense"
        );
        let sub_out: u64 = subs
            .iter()
            .map(|b| {
                timeline
                    .iter()
                    .find(|e| e.kind == EventKind::SubcompactionEnd && e.span == b.span)
                    .expect("matched above")
                    .b
            })
            .sum();
        let parent_out = timeline
            .iter()
            .find(|e| e.kind == EventKind::CompactionEnd && e.span == parent_span)
            .expect("matched above")
            .b;
        assert_eq!(
            sub_out, parent_out,
            "sub-span output bytes must sum to the parent's"
        );
    }
}

/// The same deterministic workload, observability off vs on: every
/// non-temporal `DbStats` counter must match exactly. (Wall-clock `_ns`
/// aggregates differ run to run regardless of observability, so they are
/// excluded; everything countable must be untouched by the layer.)
#[test]
fn disabling_observability_leaves_counters_byte_identical() {
    fn run(observability: bool) -> Vec<(String, u64)> {
        let mut base = Options::small_for_tests();
        base.observability = observability;
        let db = ShardedDb::open_memory(ShardedOptions::hash(2, base)).unwrap();
        let wopts = WriteOptions::default();
        for i in 0..400u64 {
            let mut batch = WriteBatch::new();
            for j in 0..4u64 {
                batch.put(i * 4 + j, &(i * 4 + j).to_le_bytes());
            }
            db.write(batch, &wopts).unwrap();
        }
        for k in (0..1600u64).step_by(3) {
            assert!(db.get(k).unwrap().is_some());
        }
        db.scan(100, 50).unwrap();
        db.flush().unwrap();
        db.stats()
            .counter_pairs()
            .into_iter()
            .filter(|(name, _)| !name.ends_with("_ns"))
            .collect()
    }

    let off = run(false);
    let on = run(true);
    assert_eq!(off, on, "observability changed an engine counter");
}
