//! Integration tests for the engine-wide observability layer: the split
//! lifecycle must appear in the event timeline as an ordered, span-linked
//! `SplitBegin` → `SplitDualWrite` → `SplitCutover` triple, and turning
//! observability *off* must leave the engine's `DbStats` counters exactly
//! as they were — the disabled hot path is a single untaken branch.

use std::sync::Arc;

use lsm_io::{MemStorage, Storage};
use lsm_tree::{Event, EventKind, Options, ShardedDb, ShardedOptions, WriteBatch, WriteOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn obs_opts() -> Options {
    let mut o = Options::small_for_tests();
    o.observability = true;
    o
}

/// A zipfian-skewed insert stream against uniform-trained boundaries
/// forces live splits; the drained timeline must carry each split as a
/// `SplitBegin` → `SplitDualWrite` → `SplitCutover` triple in that order,
/// all three sharing one span id.
#[test]
fn live_split_emits_ordered_span_linked_lifecycle_events() {
    // Boundaries trained for a uniform key space, then a stream dense
    // near zero: shard 0 fattens until the resident-bytes trigger fires.
    let uniform_sample: Vec<u64> = (0..4096u64).map(|i| i << 32).collect();
    let opts = ShardedOptions::learned(2, uniform_sample, obs_opts())
        .with_max_shards(8)
        .with_split_trigger(0.10, 32 << 10);
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let db = ShardedDb::open(Arc::clone(&storage), opts).unwrap();
    let observer = Arc::clone(db.observer().expect("observability is on"));

    // Drain as we go: the ring keeps the *oldest* events on overflow, so
    // a long stream could otherwise crowd out late-arriving split events.
    let mut timeline: Vec<Event> = Vec::new();
    let mut rng = StdRng::seed_from_u64(0x0b5);
    let mut batch = WriteBatch::new();
    let value = vec![9u8; 32];
    for i in 0..40_000u64 {
        // Dense low keys with a thin uniform tail, every key fresh.
        let k = if i % 16 == 0 {
            rng.gen::<u64>()
        } else {
            rng.gen_range(0..1u64 << 20)
        };
        batch.put(k, &value);
        if batch.len() >= 8 {
            db.write(std::mem::take(&mut batch), &WriteOptions::default())
                .unwrap();
            timeline.extend(observer.drain());
        }
        if db.sharded_stats().merged.shard_splits >= 2 {
            break;
        }
    }
    db.write(batch, &WriteOptions::default()).unwrap();
    while db.rebalance().unwrap() {}
    timeline.extend(observer.drain());

    let splits = db.sharded_stats().merged.shard_splits;
    assert!(splits >= 1, "stream never triggered a live split");
    assert_eq!(observer.dropped(), 0, "drain cadence must outrun the ring");

    let begins: Vec<&Event> = timeline
        .iter()
        .filter(|e| e.kind == EventKind::SplitBegin)
        .collect();
    assert_eq!(begins.len() as u64, splits, "one SplitBegin per split");
    for begin in begins {
        assert_ne!(begin.span, 0, "live spans are non-zero");
        let phases: Vec<(usize, EventKind)> = timeline
            .iter()
            .enumerate()
            .filter(|(_, e)| e.span == begin.span)
            .map(|(i, e)| (i, e.kind))
            .collect();
        assert_eq!(
            phases.iter().map(|(_, k)| *k).collect::<Vec<_>>(),
            vec![
                EventKind::SplitBegin,
                EventKind::SplitDualWrite,
                EventKind::SplitCutover
            ],
            "split span {} must run begin → dual-write → cutover",
            begin.span
        );
        // Ordered by timeline position *and* by timestamp.
        assert!(phases.windows(2).all(|w| w[0].0 < w[1].0));
        let ts: Vec<u64> = timeline
            .iter()
            .filter(|e| e.span == begin.span)
            .map(|e| e.ts_ns)
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        // Begin and dual-write name the same parent shard.
        let parents: Vec<u64> = timeline
            .iter()
            .filter(|e| e.span == begin.span && e.kind != EventKind::SplitCutover)
            .map(|e| e.a)
            .collect();
        assert!(parents.windows(2).all(|w| w[0] == w[1]));
    }

    // Each split's cutover publishes a fresh topology epoch; the last
    // cutover must carry the current one.
    let last_epoch = timeline
        .iter()
        .rev()
        .find(|e| e.kind == EventKind::SplitCutover)
        .map(|e| e.b)
        .unwrap();
    assert_eq!(last_epoch, db.topology_epoch());
}

/// The same deterministic workload, observability off vs on: every
/// non-temporal `DbStats` counter must match exactly. (Wall-clock `_ns`
/// aggregates differ run to run regardless of observability, so they are
/// excluded; everything countable must be untouched by the layer.)
#[test]
fn disabling_observability_leaves_counters_byte_identical() {
    fn run(observability: bool) -> Vec<(String, u64)> {
        let mut base = Options::small_for_tests();
        base.observability = observability;
        let db = ShardedDb::open_memory(ShardedOptions::hash(2, base)).unwrap();
        let wopts = WriteOptions::default();
        for i in 0..400u64 {
            let mut batch = WriteBatch::new();
            for j in 0..4u64 {
                batch.put(i * 4 + j, &(i * 4 + j).to_le_bytes());
            }
            db.write(batch, &wopts).unwrap();
        }
        for k in (0..1600u64).step_by(3) {
            assert!(db.get(k).unwrap().is_some());
        }
        db.scan(100, 50).unwrap();
        db.flush().unwrap();
        db.stats()
            .counter_pairs()
            .into_iter()
            .filter(|(name, _)| !name.ends_with("_ns"))
            .collect()
    }

    let off = run(false);
    let on = run(true);
    assert_eq!(off, on, "observability changed an engine counter");
}
