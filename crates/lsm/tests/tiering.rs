//! Tiering-policy integration tests: correctness against an oracle, the
//! write-amplification saving versus leveling, and the read-cost price —
//! the tradeoff the paper's second future direction wants learned indexes
//! studied against.

use std::collections::BTreeMap;

use learned_index::IndexKind;
use lsm_tree::{CompactionPolicy, Db, IndexChoice, Options};

fn tiering_opts() -> Options {
    let mut o = Options::small_for_tests();
    o.index = IndexChoice::with_boundary(IndexKind::Pgm, 32);
    o.compaction = CompactionPolicy::Tiering { runs_per_level: 4 };
    o
}

fn leveling_opts() -> Options {
    let mut o = tiering_opts();
    o.compaction = CompactionPolicy::Leveling;
    o
}

#[test]
fn tiering_matches_oracle_under_mixed_ops() {
    let db = Db::open_memory(tiering_opts()).unwrap();
    let mut oracle = BTreeMap::new();
    for i in 0..8_000u64 {
        let k = (i * 37) % 2_000;
        match i % 9 {
            0 => {
                db.delete(k).unwrap();
                oracle.remove(&k);
            }
            _ => {
                let v = vec![(i % 251) as u8; 8];
                db.put(k, &v).unwrap();
                oracle.insert(k, v);
            }
        }
    }
    db.flush().unwrap();
    for k in 0..2_100u64 {
        assert_eq!(db.get(k).unwrap().as_ref(), oracle.get(&k), "key {k}");
    }
    // Scans stay sorted and correct across overlapping runs.
    let got = db.scan(100, 40).unwrap();
    let want: Vec<(u64, Vec<u8>)> = oracle
        .range(100..)
        .take(40)
        .map(|(k, v)| (*k, v.clone()))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn tiering_writes_less_reads_more() {
    let run = |opts: Options| {
        let db = Db::open_memory(opts).unwrap();
        for i in 0..12_000u64 {
            db.put((i * 2_654_435_761) % 100_000, &[1u8; 16]).unwrap();
        }
        db.flush().unwrap();
        let s = db.stats().snapshot();
        let version = db.version();
        (s.compact_bytes_written, version.table_count(), db)
    };
    let (tier_written, tier_tables, tier_db) = run(tiering_opts());
    let (level_written, level_tables, _level_db) = run(leveling_opts());

    assert!(
        tier_written < level_written,
        "tiering must rewrite fewer bytes: {tier_written} vs {level_written}"
    );
    // The price: more overlapping tables to consult.
    assert!(tier_tables >= 1 && level_tables >= 1);
    // Reads still correct through the stacked runs.
    for k in (0..100_000u64).step_by(4_001) {
        let _ = tier_db.get(k).unwrap();
    }
}

#[test]
fn tiering_newest_version_wins_across_runs() {
    let db = Db::open_memory(tiering_opts()).unwrap();
    // Write the same keys repeatedly so different runs hold different
    // versions of the same key.
    for round in 0..6u64 {
        for k in 0..800u64 {
            db.put(k, format!("round-{round}").as_bytes()).unwrap();
        }
        db.flush().unwrap();
    }
    for k in (0..800u64).step_by(19) {
        assert_eq!(db.get(k).unwrap(), Some(b"round-5".to_vec()), "key {k}");
    }
}

#[test]
fn tiering_reopen_preserves_run_order() {
    use lsm_io::{MemStorage, Storage};
    use std::sync::Arc;
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    {
        let db = Db::open(Arc::clone(&storage), tiering_opts()).unwrap();
        for round in 0..5u64 {
            for k in 0..600u64 {
                db.put(k, format!("r{round}").as_bytes()).unwrap();
            }
            db.flush().unwrap();
        }
    }
    let db = Db::open(storage, tiering_opts()).unwrap();
    for k in (0..600u64).step_by(37) {
        assert_eq!(db.get(k).unwrap(), Some(b"r4".to_vec()), "key {k}");
    }
}

#[test]
fn tombstones_survive_tiering_merges_until_bottom() {
    let db = Db::open_memory(tiering_opts()).unwrap();
    for k in 0..2_000u64 {
        db.put(k, b"live").unwrap();
    }
    db.flush().unwrap();
    for k in (0..2_000u64).step_by(2) {
        db.delete(k).unwrap();
    }
    db.flush().unwrap();
    assert_eq!(db.get(100).unwrap(), None);
    assert_eq!(db.get(101).unwrap(), Some(b"live".to_vec()));
}
