//! Per-level Bloom budgets (Monkey-style, the paper's citation [8]):
//! correctness under skewed budgets, and the memory effect.

use learned_index::IndexKind;
use lsm_tree::{Db, IndexChoice, Options};

fn opts(bits: Option<Vec<usize>>) -> Options {
    let mut o = Options::small_for_tests();
    o.index = IndexChoice::with_boundary(IndexKind::Pgm, 32);
    o.per_level_bloom_bits = bits;
    o
}

fn load(db: &Db, n: u64) {
    for k in 0..n {
        db.put(k * 3, b"v").unwrap();
    }
    db.flush().unwrap();
}

#[test]
fn skewed_budgets_preserve_correctness() {
    // Generous bits up top, starved at the bottom.
    let db = Db::open_memory(opts(Some(vec![14, 10, 4, 2]))).unwrap();
    load(&db, 6_000);
    for k in (0..6_000u64).step_by(61) {
        assert_eq!(db.get(k * 3).unwrap(), Some(b"v".to_vec()));
    }
    assert_eq!(db.get(1).unwrap(), None);
}

#[test]
fn starved_bottom_level_costs_less_memory() {
    let uniform = Db::open_memory(opts(None)).unwrap();
    load(&uniform, 6_000);
    let skewed = Db::open_memory(opts(Some(vec![10, 10, 2, 2]))).unwrap();
    load(&skewed, 6_000);
    assert!(
        skewed.bloom_memory_bytes() < uniform.bloom_memory_bytes(),
        "2 bits/key at deep levels must shrink the bloom footprint: {} vs {}",
        skewed.bloom_memory_bytes(),
        uniform.bloom_memory_bytes()
    );
}

#[test]
fn starved_blooms_mean_more_false_positive_io() {
    // With 1 bit/key the filters pass almost everything; absent-key lookups
    // then pay table I/O that 10 bits/key would have skipped.
    let strong = Db::open_memory(opts(Some(vec![12]))).unwrap();
    load(&strong, 6_000);
    let weak = Db::open_memory(opts(Some(vec![1]))).unwrap();
    load(&weak, 6_000);

    let miss_rate = |db: &Db| {
        let before = db.stats().snapshot();
        for k in 0..3_000u64 {
            assert_eq!(db.get(k * 3 + 1).unwrap(), None); // absent keys
        }
        let d = db.stats().snapshot().since(&before);
        d.bloom_negatives as f64 / d.bloom_checks.max(1) as f64
    };
    let strong_rejects = miss_rate(&strong);
    let weak_rejects = miss_rate(&weak);
    assert!(
        strong_rejects > weak_rejects,
        "strong filters must reject more absent-key probes: {strong_rejects:.3} vs {weak_rejects:.3}"
    );
    assert!(
        strong_rejects > 0.9,
        "12 bits/key should reject >90%: {strong_rejects:.3}"
    );
}

#[test]
fn empty_override_falls_back() {
    let o = opts(Some(vec![]));
    assert_eq!(o.bloom_bits_for_level(3), o.bloom_bits_per_key);
    let o = opts(Some(vec![7]));
    assert_eq!(o.bloom_bits_for_level(0), 7);
    assert_eq!(o.bloom_bits_for_level(9), 7);
}
