//! Whole-engine property tests against an in-memory oracle.
//!
//! A random stream of puts/deletes/gets/scans runs through the LSM-tree
//! (with limits small enough to force flushes and multi-level compactions)
//! and simultaneously through a `BTreeMap` reference model; every read must
//! agree, under every index kind.

use std::collections::BTreeMap;

use learned_index::IndexKind;
use lsm_tree::{Db, Options};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum OpSpec {
    Put(u64, u8),
    Delete(u64),
    Get(u64),
    Scan(u64, usize),
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        4 => (0u64..3_000, any::<u8>()).prop_map(|(k, v)| OpSpec::Put(k, v)),
        1 => (0u64..3_000).prop_map(OpSpec::Delete),
        2 => (0u64..3_200).prop_map(OpSpec::Get),
        1 => (0u64..3_000, 1usize..40).prop_map(|(k, l)| OpSpec::Scan(k, l)),
    ]
}

fn value_bytes(v: u8) -> Vec<u8> {
    vec![v; 16]
}

fn run_against_oracle(kind: IndexKind, ops: &[OpSpec]) -> Result<(), TestCaseError> {
    let mut opts = Options::small_for_tests();
    opts.index.kind = kind;
    let db = Db::open_memory(opts).unwrap();
    let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();

    for op in ops {
        match *op {
            OpSpec::Put(k, v) => {
                db.put(k, &value_bytes(v)).unwrap();
                oracle.insert(k, value_bytes(v));
            }
            OpSpec::Delete(k) => {
                db.delete(k).unwrap();
                oracle.remove(&k);
            }
            OpSpec::Get(k) => {
                let got = db.get(k).unwrap();
                prop_assert_eq!(got.as_ref(), oracle.get(&k), "{} get({})", kind, k);
            }
            OpSpec::Scan(start, limit) => {
                let got = db.scan(start, limit).unwrap();
                let want: Vec<(u64, Vec<u8>)> = oracle
                    .range(start..)
                    .take(limit)
                    .map(|(k, v)| (*k, v.clone()))
                    .collect();
                prop_assert_eq!(&got, &want, "{} scan({}, {})", kind, start, limit);
            }
        }
    }

    // Final sweep: every key agrees after all flushes/compactions settle.
    db.flush().unwrap();
    for (k, v) in &oracle {
        let got = db.get(*k).unwrap();
        prop_assert_eq!(got.as_ref(), Some(v), "{} final {}", kind, k);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn lsm_matches_btreemap_pgm(ops in prop::collection::vec(op_strategy(), 1..800)) {
        run_against_oracle(IndexKind::Pgm, &ops)?;
    }

    #[test]
    fn lsm_matches_btreemap_fence(ops in prop::collection::vec(op_strategy(), 1..800)) {
        run_against_oracle(IndexKind::FencePointers, &ops)?;
    }

    #[test]
    fn lsm_matches_btreemap_rmi(ops in prop::collection::vec(op_strategy(), 1..800)) {
        run_against_oracle(IndexKind::Rmi, &ops)?;
    }

    #[test]
    fn lsm_matches_btreemap_plex(ops in prop::collection::vec(op_strategy(), 1..800)) {
        run_against_oracle(IndexKind::Plex, &ops)?;
    }
}

/// One deterministic end-to-end pass for each of the seven kinds (keeps the
/// proptest budget low while still touching every family).
#[test]
fn all_kinds_deterministic_smoke() {
    let ops: Vec<OpSpec> = (0..3_000u64)
        .map(|i| match i % 11 {
            0 => OpSpec::Delete(i % 700),
            1 => OpSpec::Get(i % 800),
            2 => OpSpec::Scan(i % 600, 10),
            _ => OpSpec::Put((i * 37) % 900, (i % 251) as u8),
        })
        .collect();
    for kind in IndexKind::ALL {
        run_against_oracle(kind, &ops).unwrap();
    }
}

/// Full-database iteration equals the oracle's full ordered contents.
#[test]
fn full_iteration_matches_oracle() {
    let mut opts = Options::small_for_tests();
    opts.index.kind = IndexKind::RadixSpline;
    let db = Db::open_memory(opts).unwrap();
    let mut oracle = BTreeMap::new();
    for i in 0..4_000u64 {
        let k = (i * 761) % 2_500;
        let v = vec![(i % 256) as u8; 12];
        db.put(k, &v).unwrap();
        oracle.insert(k, v);
    }
    for k in (0..2_500u64).step_by(3) {
        db.delete(k).unwrap();
        oracle.remove(&k);
    }
    let mut it = db.iter().unwrap();
    it.seek_to_first();
    let got = it.collect_up_to(usize::MAX).unwrap();
    let want: Vec<(u64, Vec<u8>)> = oracle.into_iter().collect();
    assert_eq!(got, want);
}
