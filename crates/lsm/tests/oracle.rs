//! Whole-engine property tests against an in-memory oracle.
//!
//! A random stream of puts/deletes/atomic batches/gets/scans runs through
//! the LSM-tree (with limits small enough to force flushes and multi-level
//! compactions) and simultaneously through a `BTreeMap` reference model;
//! every read must agree, under every index kind. Halfway through, a
//! [`Snapshot`] is taken and held across the remaining churn — at the end
//! its full contents must still equal the oracle state at that midpoint.
//!
//! The sharded extension mirrors random *cross-shard* batches into the
//! model while periodically crashing the storage at a seeded random
//! operation index (`lsm_io::CrashStorage`) and reopening from the frozen
//! image — recovery must agree with the model key-for-key, with the one
//! ambiguous in-flight batch resolved all-or-nothing. Set
//! `LSM_CRASH_SEED` to replay a schedule; the seed is printed on entry so
//! a failure names it.

use std::collections::BTreeMap;
use std::sync::Arc;

use learned_index::IndexKind;
use lsm_io::{CrashStorage, Storage};
use lsm_tree::{Db, Options, ReadOptions, ShardedDb, ShardedOptions, WriteBatch, WriteOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
enum OpSpec {
    Put(u64, u8),
    Delete(u64),
    /// Atomic `WriteBatch`: `Some(v)` puts, `None` deletes.
    Batch(Vec<(u64, Option<u8>)>),
    Get(u64),
    Scan(u64, usize),
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        4 => (0u64..3_000, any::<u8>()).prop_map(|(k, v)| OpSpec::Put(k, v)),
        1 => (0u64..3_000).prop_map(OpSpec::Delete),
        1 => prop::collection::vec((0u64..3_000, prop_oneof![
                3 => any::<u8>().prop_map(Some),
                1 => (0u64..1).prop_map(|_| None),
            ]), 1..30)
            .prop_map(OpSpec::Batch),
        2 => (0u64..3_200).prop_map(OpSpec::Get),
        1 => (0u64..3_000, 1usize..40).prop_map(|(k, l)| OpSpec::Scan(k, l)),
    ]
}

fn value_bytes(v: u8) -> Vec<u8> {
    vec![v; 16]
}

fn dump(db: &Db, ropts: &ReadOptions<'_>) -> Vec<(u64, Vec<u8>)> {
    let mut it = db.iter_with(ropts).unwrap();
    it.seek_to_first();
    it.collect_up_to(usize::MAX).unwrap()
}

fn run_against_oracle(kind: IndexKind, ops: &[OpSpec]) -> Result<(), TestCaseError> {
    let mut opts = Options::small_for_tests();
    opts.index.kind = kind;
    let db = Db::open_memory(opts).unwrap();
    let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    type HeldSnapshot = (lsm_tree::Snapshot, Vec<(u64, Vec<u8>)>);
    let mut held: Option<HeldSnapshot> = None;

    for (i, op) in ops.iter().enumerate() {
        if i == ops.len() / 2 {
            // Pin the midpoint state and hold it across the rest of the run.
            held = Some((
                db.snapshot(),
                oracle.iter().map(|(k, v)| (*k, v.clone())).collect(),
            ));
        }
        match op {
            OpSpec::Put(k, v) => {
                db.put(*k, &value_bytes(*v)).unwrap();
                oracle.insert(*k, value_bytes(*v));
            }
            OpSpec::Delete(k) => {
                db.delete(*k).unwrap();
                oracle.remove(k);
            }
            OpSpec::Batch(entries) => {
                let mut batch = WriteBatch::new();
                for (k, v) in entries {
                    match v {
                        Some(v) => {
                            batch.put(*k, &value_bytes(*v));
                            oracle.insert(*k, value_bytes(*v));
                        }
                        None => {
                            batch.delete(*k);
                            oracle.remove(k);
                        }
                    }
                }
                db.write(batch, &WriteOptions::default()).unwrap();
            }
            OpSpec::Get(k) => {
                let got = db.get(*k).unwrap();
                prop_assert_eq!(got.as_ref(), oracle.get(k), "{} get({})", kind, k);
            }
            OpSpec::Scan(start, limit) => {
                let got = db.scan(*start, *limit).unwrap();
                let want: Vec<(u64, Vec<u8>)> = oracle
                    .range(start..)
                    .take(*limit)
                    .map(|(k, v)| (*k, v.clone()))
                    .collect();
                prop_assert_eq!(&got, &want, "{} scan({}, {})", kind, start, limit);
            }
        }
    }

    // Final sweep: every key agrees after all flushes/compactions settle.
    db.flush().unwrap();
    for (k, v) in &oracle {
        let got = db.get(*k).unwrap();
        prop_assert_eq!(got.as_ref(), Some(v), "{} final {}", kind, k);
    }
    // The held snapshot still reads exactly the midpoint state.
    if let Some((snap, want)) = held {
        let got = dump(&db, &ReadOptions::at(&snap));
        prop_assert_eq!(got, want, "{} snapshot diverged", kind);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn lsm_matches_btreemap_pgm(ops in prop::collection::vec(op_strategy(), 1..800)) {
        run_against_oracle(IndexKind::Pgm, &ops)?;
    }

    #[test]
    fn lsm_matches_btreemap_fence(ops in prop::collection::vec(op_strategy(), 1..800)) {
        run_against_oracle(IndexKind::FencePointers, &ops)?;
    }

    #[test]
    fn lsm_matches_btreemap_rmi(ops in prop::collection::vec(op_strategy(), 1..800)) {
        run_against_oracle(IndexKind::Rmi, &ops)?;
    }

    #[test]
    fn lsm_matches_btreemap_plex(ops in prop::collection::vec(op_strategy(), 1..800)) {
        run_against_oracle(IndexKind::Plex, &ops)?;
    }
}

/// One deterministic end-to-end pass for each of the seven kinds (keeps the
/// proptest budget low while still touching every family).
#[test]
fn all_kinds_deterministic_smoke() {
    let ops: Vec<OpSpec> = (0..3_000u64)
        .map(|i| match i % 11 {
            0 => OpSpec::Delete(i % 700),
            1 => OpSpec::Get(i % 800),
            2 => OpSpec::Scan(i % 600, 10),
            _ => OpSpec::Put((i * 37) % 900, (i % 251) as u8),
        })
        .collect();
    for kind in IndexKind::ALL {
        run_against_oracle(kind, &ops).unwrap();
    }
}

// ----------------------------------------------- sharded + crash points

/// One buffered operation of a random cross-shard batch: `Some` puts,
/// `None` deletes.
type NetOps = BTreeMap<u64, Option<Vec<u8>>>;

fn sharded_opts() -> ShardedOptions {
    let mut base = Options::small_for_tests();
    base.index.kind = IndexKind::Pgm;
    // Splits enabled: the workload's resident bytes outgrow the fair
    // share as rounds accumulate, so live splits (and crashes landing
    // anywhere inside them — begin, drain, cutover) interleave with the
    // crash/reopen schedule. Reopens adopt whatever topology epoch the
    // image holds.
    ShardedOptions::learned(3, (0..4000u64).collect(), base)
        .with_max_shards(6)
        .with_split_trigger(0.2, 1 << 10)
}

/// Random cross-shard batches mirrored into a `BTreeMap`, with periodic
/// crash/reopen at seeded random storage-operation indexes. Every write is
/// durable, so `Ok` ⇒ in the image; the single batch in flight at the
/// crash is ambiguous (the marker may or may not have sealed) and is
/// resolved by observation — but it must be all-or-nothing, and every
/// *other* key must match the model exactly.
#[test]
fn sharded_crash_recovery_matches_btreemap() {
    let seed: u64 = std::env::var("LSM_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    // Printed even on success so CI logs always name the schedule.
    eprintln!("sharded crash oracle: LSM_CRASH_SEED={seed}");
    let mut rng = StdRng::seed_from_u64(seed);

    let (mut storage, mut ctl) = CrashStorage::new();
    let mut db = ShardedDb::open(Arc::clone(&storage) as Arc<dyn Storage>, sharded_opts()).unwrap();
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut batch_id = 0u64;
    let mut crashes = 0u32;

    for round in 0..40u32 {
        // Arm a crash somewhere inside this round's burst of commits.
        ctl.crash_after(rng.gen_range(1..80));
        let mut ambiguous: Option<NetOps> = None;
        for _ in 0..rng.gen_range(4..16) {
            batch_id += 1;
            let mut batch = WriteBatch::new();
            let mut net: NetOps = BTreeMap::new();
            for _ in 0..rng.gen_range(1..12usize) {
                let k = rng.gen_range(0..4000u64);
                if rng.gen_range(0..5u8) == 0 {
                    batch.delete(k);
                    net.insert(k, None);
                } else {
                    let v = format!("b{batch_id}-k{k}").into_bytes();
                    batch.put(k, &v);
                    net.insert(k, Some(v));
                }
            }
            match db.write(batch, &WriteOptions::durable()) {
                Ok(_) => {
                    for (k, v) in net {
                        match v {
                            Some(v) => model.insert(k, v),
                            None => model.remove(&k),
                        };
                    }
                }
                Err(_) => {
                    ambiguous = Some(net);
                    break;
                }
            }
        }
        match ambiguous {
            None => ctl.disarm(), // burst ended before the crash point
            Some(net) => {
                crashes += 1;
                drop(db);
                let (s2, c2) = CrashStorage::over(storage.image());
                storage = s2;
                ctl = c2;
                db = ShardedDb::open(Arc::clone(&storage) as Arc<dyn Storage>, sharded_opts())
                    .unwrap();
                // Resolve the in-flight batch by observation: the image
                // either holds all of its net effect or none of it.
                let matches_without = net
                    .iter()
                    .all(|(k, _)| db.get(*k).unwrap().as_ref() == model.get(k));
                let matches_with = net
                    .iter()
                    .all(|(k, v)| db.get(*k).unwrap().as_ref() == v.as_ref());
                assert!(
                    matches_without || matches_with,
                    "seed {seed} round {round}: torn in-flight batch after crash \
                     (neither committed nor aborted cleanly): {net:?}"
                );
                if matches_with && !matches_without {
                    for (k, v) in net {
                        match v {
                            Some(v) => model.insert(k, v),
                            None => model.remove(&k),
                        };
                    }
                }
            }
        }
        // Full-scan equivalence after every round.
        let got = db.scan(0, usize::MAX).unwrap();
        let want: Vec<(u64, Vec<u8>)> = model.iter().map(|(k, v)| (*k, v.clone())).collect();
        assert_eq!(got, want, "seed {seed} round {round}: scan diverged");
    }
    assert!(
        crashes >= 5,
        "seed {seed}: schedule produced only {crashes} crashes"
    );
    assert!(!model.is_empty(), "seed {seed}: workload wrote nothing");
    assert!(
        db.shard_count() > 3,
        "seed {seed}: the schedule never grew the topology \
         ({} shards) — splits are part of what this oracle exercises",
        db.shard_count()
    );
}

/// Full-database iteration equals the oracle's full ordered contents.
#[test]
fn full_iteration_matches_oracle() {
    let mut opts = Options::small_for_tests();
    opts.index.kind = IndexKind::RadixSpline;
    let db = Db::open_memory(opts).unwrap();
    let mut oracle = BTreeMap::new();
    for i in 0..4_000u64 {
        let k = (i * 761) % 2_500;
        let v = vec![(i % 256) as u8; 12];
        db.put(k, &v).unwrap();
        oracle.insert(k, v);
    }
    for k in (0..2_500u64).step_by(3) {
        db.delete(k).unwrap();
        oracle.remove(&k);
    }
    let mut it = db.iter().unwrap();
    it.seek_to_first();
    let got = it.collect_up_to(usize::MAX).unwrap();
    let want: Vec<(u64, Vec<u8>)> = oracle.into_iter().collect();
    assert_eq!(got, want);
}
