//! Block-cache integration: correctness is unchanged and hot reads stop
//! paying the simulated device charge.

use std::sync::Arc;

use learned_index::IndexKind;
use lsm_io::{CostModel, SimStorage, Storage};
use lsm_tree::{Db, Options};

fn opts(cache_bytes: usize) -> Options {
    let mut o = Options::small_for_tests();
    o.index.kind = IndexKind::Pgm;
    o.block_cache_bytes = cache_bytes;
    o
}

fn loaded_db(cache_bytes: usize) -> Db {
    let storage: Arc<dyn Storage> = Arc::new(SimStorage::new(CostModel::default()));
    let db = Db::open(storage, opts(cache_bytes)).unwrap();
    for k in 0..5_000u64 {
        db.put(k, format!("v{k}").as_bytes()).unwrap();
    }
    db.flush().unwrap();
    db
}

#[test]
fn cached_reads_return_identical_values() {
    let cached = loaded_db(1 << 20);
    let plain = loaded_db(0);
    for k in (0..5_000u64).step_by(13) {
        assert_eq!(cached.get(k).unwrap(), plain.get(k).unwrap(), "key {k}");
    }
    let (hits, _misses) = cached.block_cache().unwrap().hit_miss();
    assert!(hits > 0, "repeat block touches must hit");
}

#[test]
fn hot_reads_stop_paying_device_time() {
    let db = loaded_db(4 << 20);
    // Warm one hot key.
    db.get(2_500).unwrap();
    let before = db.storage().stats().snapshot();
    for _ in 0..100 {
        assert!(db.get(2_500).unwrap().is_some());
    }
    let delta = db.storage().stats().snapshot().since(&before);
    assert_eq!(
        delta.sim_read_ns, 0,
        "fully cached lookups must not touch the device"
    );
}

#[test]
fn uncached_db_pays_every_time() {
    let db = loaded_db(0);
    db.get(2_500).unwrap();
    let before = db.storage().stats().snapshot();
    for _ in 0..100 {
        db.get(2_500).unwrap();
    }
    let delta = db.storage().stats().snapshot().since(&before);
    assert!(delta.sim_read_ns > 0);
}

#[test]
fn cache_capacity_bounds_memory() {
    let db = loaded_db(8 << 10); // tiny: 2 blocks
    for k in (0..5_000u64).step_by(7) {
        db.get(k).unwrap();
    }
    // Block bytes never overshoot the budget (reserve-before-insert).
    // Total usage may: open table handles pin their index/filter bytes
    // unconditionally — components the engine cannot run without win over
    // evictable blocks, so a budget smaller than the pinned set leaves no
    // room for blocks rather than overshooting via blocks.
    let cache = db.block_cache().unwrap();
    assert!(
        cache.blocks().used_bytes() <= 8 << 10,
        "block bytes exceeded budget: {}",
        cache.blocks().used_bytes()
    );
    let stats = cache.stats();
    assert_eq!(
        stats.used_bytes,
        stats.block_used_bytes + stats.table_used_bytes,
        "charges must account exactly"
    );
}

#[test]
fn compaction_evicts_dead_tables() {
    let db = loaded_db(4 << 20);
    // Touch everything to populate the cache.
    for k in (0..5_000u64).step_by(3) {
        db.get(k).unwrap();
    }
    let used_before = db.block_cache().unwrap().used_bytes();
    // Overwrite everything: compactions replace all tables, so entries for
    // retired tables must be evicted rather than leak.
    for k in 0..5_000u64 {
        db.put(k, b"new").unwrap();
    }
    db.flush().unwrap();
    for k in (0..5_000u64).step_by(3) {
        assert_eq!(db.get(k).unwrap(), Some(b"new".to_vec()));
    }
    let cache = db.block_cache().unwrap();
    assert!(cache.used_bytes() <= cache.capacity_bytes());
    let _ = used_before;
}
