//! Failure-injection tests: the engine must fail *cleanly* when storage
//! errors strike mid-flush or mid-compaction — reads keep working against
//! the last installed version, and work succeeds after the fault heals.

use std::sync::Arc;

use learned_index::IndexKind;
use lsm_io::{FaultStorage, MemStorage, Storage};
use lsm_tree::{Db, Options};

fn opts() -> Options {
    let mut o = Options::small_for_tests();
    o.index.kind = IndexKind::Pgm;
    o.wal = false; // WAL writes consume the fault budget non-deterministically
    o
}

#[test]
fn flush_failure_is_clean_and_retryable() {
    let (storage, ctl) = FaultStorage::wrap(Arc::new(MemStorage::new()) as Arc<dyn Storage>);
    let db = Db::open(storage as Arc<dyn Storage>, opts()).unwrap();

    // A durable baseline.
    for k in 0..1_000u64 {
        db.put(k, b"base").unwrap();
    }
    db.flush().unwrap();

    // Fill the buffer, then make every write fail before the flush.
    for k in 1_000..1_200u64 {
        db.put(k, b"pending").unwrap();
    }
    ctl.fail_writes_after(0);
    assert!(db.flush().is_err(), "flush must report the injected fault");

    // Reads against the installed state still work.
    assert_eq!(db.get(500).unwrap(), Some(b"base".to_vec()));
    // Unflushed data is still served from the memtable.
    assert_eq!(db.get(1_100).unwrap(), Some(b"pending".to_vec()));

    // After healing, the retry drains the buffer.
    ctl.heal();
    db.flush().unwrap();
    assert_eq!(db.get(1_100).unwrap(), Some(b"pending".to_vec()));
    assert_eq!(db.get(500).unwrap(), Some(b"base".to_vec()));
}

#[test]
fn write_failure_mid_stream_surfaces_error() {
    let (storage, ctl) = FaultStorage::wrap(Arc::new(MemStorage::new()) as Arc<dyn Storage>);
    let db = Db::open(storage as Arc<dyn Storage>, opts()).unwrap();
    ctl.fail_writes_after(50);
    let mut failed = false;
    for k in 0..100_000u64 {
        if db.put(k, &[0u8; 24]).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "the write stream must eventually hit the fault");
    ctl.heal();
    // Engine remains usable.
    db.put(424_242, b"recovered").unwrap();
    assert_eq!(db.get(424_242).unwrap(), Some(b"recovered".to_vec()));
}

#[test]
fn poisoned_table_read_errors_do_not_panic() {
    let (storage, ctl) = FaultStorage::wrap(Arc::new(MemStorage::new()) as Arc<dyn Storage>);
    let db = Db::open(storage as Arc<dyn Storage>, opts()).unwrap();
    for k in 0..2_000u64 {
        db.put(k, b"x").unwrap();
    }
    db.flush().unwrap();
    // Poison all SSTables: point reads that reach the device must error.
    ctl.poison(".sst");
    let err = db.get(1_500);
    assert!(err.is_err(), "read through poisoned table must error");
    ctl.heal();
    assert_eq!(db.get(1_500).unwrap(), Some(b"x".to_vec()));
}
