//! Failure-injection tests: the engine must fail *cleanly* when storage
//! errors strike mid-flush or mid-compaction — reads keep working against
//! the last installed version, and work succeeds after the fault heals.
//!
//! Failure points are **op-indexed** (`lsm_io::CrashStorage`): the fault
//! lands after an exact count of mutating storage operations, so the runs
//! are deterministic with the WAL enabled — the historical `o.wal = false`
//! workaround (WAL appends drained a byte/write *budget* at a rate the
//! test could not predict) is gone.

use std::sync::Arc;

use learned_index::IndexKind;
use lsm_io::{CrashStorage, FaultStorage, MemStorage, Storage};
use lsm_tree::{Db, Options};

fn opts() -> Options {
    let mut o = Options::small_for_tests();
    o.index.kind = IndexKind::Pgm;
    o // WAL stays on: op-indexed failure points are deterministic
}

#[test]
fn flush_failure_is_clean_and_retryable() {
    let (storage, ctl) = CrashStorage::new();
    let db = Db::open(storage as Arc<dyn Storage>, opts()).unwrap();

    // A durable baseline.
    for k in 0..1_000u64 {
        db.put(k, b"base").unwrap();
    }
    db.flush().unwrap();

    // Fill the buffer, then halt storage at exactly the current operation
    // index: the very first flush operation (the new SSTable's create)
    // fails.
    for k in 1_000..1_200u64 {
        db.put(k, b"pending").unwrap();
    }
    ctl.crash_after(0);
    assert!(db.flush().is_err(), "flush must report the injected fault");

    // Reads against the installed state still work.
    assert_eq!(db.get(500).unwrap(), Some(b"base".to_vec()));
    // Unflushed data is still served from the memtable.
    assert_eq!(db.get(1_100).unwrap(), Some(b"pending".to_vec()));

    // After healing, the retry drains the buffer.
    ctl.disarm();
    db.flush().unwrap();
    assert_eq!(db.get(1_100).unwrap(), Some(b"pending".to_vec()));
    assert_eq!(db.get(500).unwrap(), Some(b"base".to_vec()));
}

#[test]
fn write_failure_mid_stream_surfaces_error() {
    let (storage, ctl) = CrashStorage::new();
    let db = Db::open(storage as Arc<dyn Storage>, opts()).unwrap();
    ctl.crash_after(50);
    let mut failed = false;
    for k in 0..100_000u64 {
        if db.put(k, &[0u8; 24]).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "the write stream must eventually hit the fault");
    ctl.disarm();
    // Engine remains usable.
    db.put(424_242, b"recovered").unwrap();
    assert_eq!(db.get(424_242).unwrap(), Some(b"recovered".to_vec()));
}

#[test]
fn poisoned_table_read_errors_do_not_panic() {
    let (storage, ctl) = FaultStorage::wrap(Arc::new(MemStorage::new()) as Arc<dyn Storage>);
    let db = Db::open(storage as Arc<dyn Storage>, opts()).unwrap();
    for k in 0..2_000u64 {
        db.put(k, b"x").unwrap();
    }
    db.flush().unwrap();
    // Poison all SSTables: point reads that reach the device must error.
    ctl.poison(".sst");
    let err = db.get(1_500);
    assert!(err.is_err(), "read through poisoned table must error");
    ctl.heal();
    assert_eq!(db.get(1_500).unwrap(), Some(b"x".to_vec()));
}

/// The failure point is a *count*, so the walk can land the fault on each
/// successive operation of one flush — SSTable create, data appends, sync,
/// WAL rotation, manifest seal — and every landing must leave the engine
/// readable with all acknowledged data intact, in-process and across a
/// reopen. (The epoch'd manifest guarantees an older sealed manifest
/// survives whichever operation the fault refuses.)
#[test]
fn flush_fault_walk_is_clean_at_every_op() {
    let (storage, ctl) = CrashStorage::new();
    let db = Db::open(Arc::clone(&storage) as Arc<dyn Storage>, opts()).unwrap();
    for k in 0..1_000u64 {
        db.put(k, b"base").unwrap();
    }
    db.flush().unwrap();
    // Park exactly one table in L0 so the walked flush below crosses the
    // L0 trigger and must also run a compaction — the walk then covers
    // the compaction's own fault points (input removal vs manifest seal),
    // not just the flush's.
    while db.version().levels[0].is_empty() {
        for k in 5_000..5_050u64 {
            db.put(k, b"filler").unwrap();
        }
        db.flush().unwrap();
    }
    assert_eq!(db.version().levels[0].len(), 1);
    for k in 1_000..1_200u64 {
        db.put(k, b"pending").unwrap();
    }
    let compactions_before = db.stats().snapshot().compactions;
    // Walk the fault through every operation of the flush until one run
    // succeeds: each failing index must leave the engine readable, still
    // *logging* (a failed WAL rotation must never silently drop the
    // writer), and the retry (after healing) must succeed.
    let mut n = 0;
    loop {
        ctl.crash_after(n);
        match db.flush() {
            Ok(()) => break,
            Err(_) => {
                // The raw fault-point image must always reopen with all
                // acknowledged data: at every storage-operation boundary
                // an intact sealed manifest exists whose files all exist
                // (merged inputs and retired WALs are unlinked only after
                // the next manifest seals).
                let img = Db::open(Arc::new(storage.image()), opts())
                    .unwrap_or_else(|e| panic!("fault-point {n} image unopenable: {e}"));
                assert_eq!(
                    img.get(500).unwrap(),
                    Some(b"base".to_vec()),
                    "fault at {n}"
                );
                assert_eq!(
                    img.get(1_100).unwrap(),
                    Some(b"pending".to_vec()),
                    "fault at {n}"
                );
                drop(img);
                assert_eq!(db.get(500).unwrap(), Some(b"base".to_vec()), "fault at {n}");
                assert_eq!(
                    db.get(1_100).unwrap(),
                    Some(b"pending".to_vec()),
                    "fault at {n}"
                );
                ctl.disarm();
                // Acknowledged writes after the failed flush must be
                // durable *immediately*: the engine must still be logging
                // (a failed rotation must not drop the WAL writer) into a
                // log the on-disk manifest names (a stale manifest must be
                // repaired before the ack). Prove it against a crash image
                // taken right after the acknowledgement.
                db.put(2_000 + n, b"post-fault").unwrap();
                let img = Db::open(Arc::new(storage.image()), opts()).unwrap();
                assert_eq!(
                    img.get(2_000 + n).unwrap(),
                    Some(b"post-fault".to_vec()),
                    "write acknowledged after fault {n} is not crash-durable"
                );
            }
        }
        n += 1;
        assert!(n < 10_000, "flush never succeeded");
    }
    assert!(
        n > 3,
        "the walk should cross several distinct failure points"
    );
    assert!(
        db.stats().snapshot().compactions > compactions_before,
        "the walked flush must have compacted (or the walk missed the \
         input-removal fault points)"
    );
    // And a reopen from the (healed) storage agrees — including every
    // write acknowledged after a failed flush attempt.
    ctl.disarm();
    drop(db);
    let db = Db::open(storage as Arc<dyn Storage>, opts()).unwrap();
    assert_eq!(db.get(500).unwrap(), Some(b"base".to_vec()));
    assert_eq!(db.get(1_100).unwrap(), Some(b"pending".to_vec()));
    for i in 0..n {
        assert_eq!(
            db.get(2_000 + i).unwrap(),
            Some(b"post-fault".to_vec()),
            "write acknowledged after fault {i} was lost on reopen"
        );
    }
}

/// Deterministic durable state whose next `flush` must also run a
/// compaction (one table parked in L0, trigger at 2).
fn compacting_state() -> (Arc<lsm_io::CrashStorage>, Arc<lsm_io::CrashControl>, Db) {
    compacting_state_with(opts())
}

fn compacting_state_with(o: Options) -> (Arc<lsm_io::CrashStorage>, Arc<lsm_io::CrashControl>, Db) {
    let (storage, ctl) = CrashStorage::new();
    let db = Db::open(Arc::clone(&storage) as Arc<dyn Storage>, o).unwrap();
    for k in 0..1_000u64 {
        db.put(k, b"base").unwrap();
    }
    db.flush().unwrap();
    while db.version().levels[0].is_empty() {
        for k in 5_000..5_050u64 {
            db.put(k, b"filler").unwrap();
        }
        db.flush().unwrap();
    }
    for k in 1_000..1_200u64 {
        db.put(k, b"pending").unwrap();
    }
    (storage, ctl, db)
}

/// Fresh-state crash matrix over a flush-plus-compaction: for **every**
/// storage-operation index of the pipeline (SSTable build, WAL rotation,
/// compaction outputs, input removal, manifest seal), rebuild the same
/// state, crash there, and require the raw image to reopen with all
/// acknowledged data. This is the test that pins the removal/seal
/// ordering: merged inputs (and retired WALs) may be unlinked only after
/// the manifest that stops naming them is sealed, or the crash image's
/// only manifest points at deleted files and the database is gone. (The
/// incremental walk above cannot see this — a failed attempt's removes
/// are skipped and the compaction rotates to fresh inputs — so this
/// matrix rebuilds from scratch per index, like the sharded one.)
#[test]
fn flush_compaction_crash_matrix_image_always_opens() {
    let (ctl_total, db) = {
        let (_s, ctl, db) = compacting_state();
        let before = db.stats().snapshot().compactions;
        let start = ctl.ops();
        db.flush().unwrap();
        assert!(
            db.stats().snapshot().compactions > before,
            "the measured flush must compact"
        );
        (ctl.ops() - start, db)
    };
    drop(db);
    let total = ctl_total;
    assert!(total > 10, "pipeline should span many ops: {total}");

    for n in 0..=total {
        let (storage, ctl, db) = compacting_state();
        ctl.crash_after(n);
        let outcome = db.flush();
        // A flush may report success a few ops early: everything after
        // the manifest seal is best-effort cleanup (`let _ = remove`).
        if n >= total {
            assert!(outcome.is_ok(), "full budget must flush: {n}/{total}");
        }
        drop(db);
        let img = Db::open(Arc::new(storage.image()), opts())
            .unwrap_or_else(|e| panic!("image at flush op {n}/{total} unopenable: {e}"));
        for k in (0..1_000u64).step_by(97) {
            assert_eq!(
                img.get(k).unwrap(),
                Some(b"base".to_vec()),
                "crash at {n}/{total}: lost flushed key {k}"
            );
        }
        for k in (1_000..1_200u64).step_by(13) {
            assert_eq!(
                img.get(k).unwrap(),
                Some(b"pending".to_vec()),
                "crash at {n}/{total}: lost WAL-covered key {k}"
            );
        }
    }
}

/// The same rebuild-per-index crash matrix over a **range-partitioned**
/// compaction (`max_subcompactions = 4`): parallel subcompaction threads
/// interleave their output writes, so a crash can strand several
/// half-built sub-range outputs at once — yet every fault-point image
/// must reopen with all acknowledged data (the single manifest seal means
/// old-version-or-new, never partial), and the open-time sweep must
/// unlink every output table the crashed job stranded.
#[test]
fn parallel_compaction_crash_matrix_opens_and_sweeps_orphans() {
    fn popts() -> Options {
        let mut o = opts();
        o.max_subcompactions = 4;
        o
    }
    let total = {
        let (_s, ctl, db) = compacting_state_with(popts());
        let snap = db.stats().snapshot();
        let start = ctl.ops();
        db.flush().unwrap();
        let after = db.stats().snapshot();
        assert!(
            after.compactions > snap.compactions,
            "measured flush must compact"
        );
        assert!(
            after.subcompactions - snap.subcompactions >= 2,
            "the measured compaction must actually partition"
        );
        ctl.ops() - start
    };
    assert!(total > 10, "pipeline should span many ops: {total}");

    for n in 0..=total {
        let (storage, ctl, db) = compacting_state_with(popts());
        ctl.crash_after(n);
        let outcome = db.flush();
        if n >= total {
            assert!(outcome.is_ok(), "full budget must flush: {n}/{total}");
        }
        drop(db);
        let img_storage = Arc::new(storage.image());
        let img = Db::open(Arc::clone(&img_storage) as Arc<dyn Storage>, popts())
            .unwrap_or_else(|e| panic!("image at op {n}/{total} unopenable: {e}"));
        for k in (0..1_000u64).step_by(97) {
            assert_eq!(
                img.get(k).unwrap(),
                Some(b"base".to_vec()),
                "crash at {n}/{total}: lost flushed key {k}"
            );
        }
        for k in (1_000..1_200u64).step_by(13) {
            assert_eq!(
                img.get(k).unwrap(),
                Some(b"pending".to_vec()),
                "crash at {n}/{total}: lost WAL-covered key {k}"
            );
        }
        // No orphans survive the reopen: every `.sst` in storage is named
        // by the recovered version (stranded subcompaction outputs swept).
        let live: std::collections::HashSet<String> = img
            .version()
            .levels
            .iter()
            .flatten()
            .map(|t| t.meta.name.clone())
            .collect();
        for name in img_storage.list().unwrap() {
            if name.ends_with(".sst") {
                assert!(
                    live.contains(&name),
                    "crash at {n}/{total}: orphan table {name} survived the reopen sweep"
                );
            }
        }
    }
}
