//! Lock-free concurrent skiplist — the memtable's ordered core.
//!
//! LevelDB's memtable is a skiplist precisely because a skiplist takes
//! concurrent inserts with nothing more than per-pointer CAS loops: group
//! members of the pipelined commit protocol ([`crate::db`]) insert their
//! batches **in parallel, outside the write lock**, which is what converts
//! the write path from "one core per tree" to "all cores per tree".
//!
//! The structure is deliberately *insert-only*:
//!
//! * overwrites and deletes are new entries at higher sequence numbers
//!   (tombstones are entries like any other), so nothing is ever unlinked —
//!   no node is freed until the whole list drops, which removes the entire
//!   ABA/reclamation problem a general lock-free list has to solve;
//! * readers traverse with plain `Acquire` loads and never take a lock; a
//!   cursor stays valid indefinitely because the nodes it points at can
//!   neither move nor die while the list is alive (the owning
//!   [`crate::memtable::MemTable`] is `Arc`-shared for exactly this reason);
//! * visibility of *partially applied* write groups is not this module's
//!   problem: entries above the published sequence ceiling are filtered by
//!   the read paths (the fence-publish discipline in [`crate::db`]), so the
//!   list may contain in-flight entries at any time.
//!
//! Towers are linked bottom-up with `compare_exchange` per level; a lost
//! race re-finds the splice at that level only. Keys are [`InternalKey`]s
//! (user key asc, seq desc), identical to the `BTreeMap` encoding this
//! replaces, so the flush path streams entries in SSTable order unchanged.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use crate::types::{Entry, InternalKey};

/// Maximum tower height. With branching factor 4 (LevelDB's choice),
/// 12 levels comfortably cover hundreds of millions of entries.
const MAX_HEIGHT: usize = 12;

/// One node: an immutable `(key, value)` pair plus its forward tower.
/// Nodes are heap-allocated raw and freed only by [`SkipList::drop`].
pub(crate) struct Node {
    key: InternalKey,
    value: Vec<u8>,
    /// Forward pointers, level 0 at index 0. Slots above the node's drawn
    /// height stay null and are never traversed.
    next: [AtomicPtr<Node>; MAX_HEIGHT],
}

impl Node {
    fn alloc(key: InternalKey, value: Vec<u8>) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key,
            value,
            next: Default::default(),
        }))
    }

    pub(crate) fn key(&self) -> &InternalKey {
        &self.key
    }

    pub(crate) fn value(&self) -> &[u8] {
        &self.value
    }

    /// Successor at level 0 (cursor traversal).
    pub(crate) fn next0(&self) -> *mut Node {
        self.next[0].load(Ordering::Acquire)
    }
}

/// Lock-free insert-only skiplist over [`InternalKey`]s.
///
/// All operations take `&self`; concurrent `insert`s and traversals are
/// safe. See the module docs for the reclamation argument.
pub struct SkipList {
    /// Sentinel head; its key is never read.
    head: *mut Node,
    /// Current maximum tower height in use.
    height: AtomicUsize,
    /// Entry count (records, including versions).
    len: AtomicUsize,
    /// Approximate resident bytes (entry overhead + value bytes).
    approx_bytes: AtomicUsize,
}

// SAFETY: nodes are reached only through atomic pointers with
// Acquire/Release ordering; node payloads are immutable after linking and
// are `Send`. Nothing is freed before the list itself drops.
unsafe impl Send for SkipList {}
unsafe impl Sync for SkipList {}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SkipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkipList")
            .field("len", &self.len())
            .field("approx_bytes", &self.approximate_bytes())
            .finish()
    }
}

impl SkipList {
    /// New empty list.
    pub fn new() -> Self {
        SkipList {
            head: Node::alloc(InternalKey::seek_to(0), Vec::new()),
            height: AtomicUsize::new(1),
            len: AtomicUsize::new(0),
            approx_bytes: AtomicUsize::new(0),
        }
    }

    /// Tower height for `key`: level `h+1` with probability 1/4 per level,
    /// LevelDB's branching factor. The height is a pure SplitMix-style hash
    /// of the internal key — `(user_key, seq)` pairs are unique, so heights
    /// stay geometrically distributed, and deriving them locally avoids a
    /// shared PRNG cell that every concurrent insert would contend on.
    fn height_for(key: &InternalKey) -> usize {
        let mut x = key.user_key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ key.seq.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let mut h = 1;
        while h < MAX_HEIGHT && x & 3 == 0 {
            h += 1;
            x >>= 2;
        }
        h
    }

    /// Insert `(key, value)`. Insert-only: an overwrite is a new entry at a
    /// new sequence number, so duplicates of `key` never arise in correct
    /// use (and would merely coexist if they did). `extra_bytes` is the
    /// caller's size accounting for this entry.
    pub fn insert(&self, key: InternalKey, value: Vec<u8>, extra_bytes: usize) {
        self.insert_quiet(key, value);
        self.add_stats(1, extra_bytes);
    }

    /// [`insert`](Self::insert) without touching the shared `len` /
    /// `approx_bytes` counters. Batch appliers use this to link a whole
    /// write group with zero counter traffic, then settle the accounting
    /// with one [`add_stats`](Self::add_stats) call — under many concurrent
    /// writers the per-entry `fetch_add`s are cache-line ping-pong that
    /// serializes the otherwise parallel apply phase.
    pub fn insert_quiet(&self, key: InternalKey, value: Vec<u8>) {
        let height = Self::height_for(&key);
        // Raise the list height first; a racing taller insert is fine —
        // `fetch_max` keeps the larger.
        self.height.fetch_max(height, Ordering::Relaxed);
        let node = Node::alloc(key, value);
        // Link bottom-up so a node reachable at any level is reachable at
        // every level below it (searches descend, never ascend).
        for level in 0..height {
            loop {
                let (pred, succ) = self.find_splice(&key, level);
                // SAFETY: `node` is ours until the CAS below publishes it;
                // `pred` is a live node (nothing is ever freed).
                unsafe {
                    (*node).next[level].store(succ, Ordering::Relaxed);
                    if (*pred).next[level]
                        .compare_exchange(succ, node, Ordering::Release, Ordering::Relaxed)
                        .is_ok()
                    {
                        break;
                    }
                }
                // Lost the race at this level: re-find the splice and retry.
            }
        }
    }

    /// Credit `n` entries and `bytes` resident bytes to the list's
    /// counters. Pairs with [`insert_quiet`](Self::insert_quiet): one call
    /// per applied batch instead of two `fetch_add`s per entry.
    pub fn add_stats(&self, n: usize, bytes: usize) {
        self.len.fetch_add(n, Ordering::Relaxed);
        self.approx_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// The predecessor/successor pair bracketing `key` at `level`
    /// (predecessor strictly less; successor first node ≥ `key`, possibly
    /// null).
    fn find_splice(&self, key: &InternalKey, level: usize) -> (*mut Node, *mut Node) {
        let mut pred = self.head;
        let mut l = self.height.load(Ordering::Relaxed).max(level + 1) - 1;
        loop {
            // SAFETY: `pred` is the head or a linked node; both outlive `&self`.
            let next = unsafe { (*pred).next[l].load(Ordering::Acquire) };
            if !next.is_null() && unsafe { (*next).key < *key } {
                pred = next;
            } else if l == level {
                return (pred, next);
            } else {
                l -= 1;
            }
        }
    }

    /// First node with key ≥ `key` (null when past the end).
    pub(crate) fn find_ge(&self, key: &InternalKey) -> *mut Node {
        self.find_splice(key, 0).1
    }

    /// First node of the list (null when empty).
    pub(crate) fn front(&self) -> *mut Node {
        // SAFETY: head outlives `&self`.
        unsafe { (*self.head).next0() }
    }

    /// Number of records (versions, not distinct keys).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the list holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Caller-accounted approximate resident bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.approx_bytes.load(Ordering::Relaxed)
    }

    /// Iterate all entries in internal-key order (key asc, seq desc),
    /// cloning each. Entries inserted concurrently may or may not appear —
    /// callers sequence iteration against writers (flush holds the write
    /// lock and waits for in-flight appliers) or filter by sequence.
    pub fn iter(&self) -> SkipIter<'_> {
        SkipIter {
            node: self.front(),
            _list: self,
        }
    }

    /// Iterate entries with internal key ≥ `seek`, cloning each.
    pub fn iter_from(&self, seek: InternalKey) -> SkipIter<'_> {
        SkipIter {
            node: self.find_ge(&seek),
            _list: self,
        }
    }
}

impl Drop for SkipList {
    fn drop(&mut self) {
        // Exclusive access: free the level-0 chain, which reaches every
        // node (towers share the same allocations).
        let mut cur = self.head;
        while !cur.is_null() {
            // SAFETY: each node was allocated by `Node::alloc` and is freed
            // exactly once here.
            let next = unsafe { (*cur).next0() };
            drop(unsafe { Box::from_raw(cur) });
            cur = next;
        }
    }
}

/// Borrowed forward iterator over a [`SkipList`] (see [`SkipList::iter`]).
pub struct SkipIter<'a> {
    node: *mut Node,
    _list: &'a SkipList,
}

impl Iterator for SkipIter<'_> {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        if self.node.is_null() {
            return None;
        }
        // SAFETY: non-null nodes are live for the list's lifetime.
        let n = unsafe { &*self.node };
        self.node = n.next0();
        Some(Entry {
            key: n.key,
            value: n.value.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{EntryKind, SeqNo};
    use std::sync::Arc;

    fn key(user_key: u64, seq: SeqNo) -> InternalKey {
        InternalKey {
            user_key,
            seq,
            kind: EntryKind::Put,
        }
    }

    #[test]
    fn sorted_iteration_key_asc_seq_desc() {
        let l = SkipList::new();
        l.insert(key(2, 1), b"a".to_vec(), 1);
        l.insert(key(1, 2), b"b".to_vec(), 1);
        l.insert(key(1, 9), b"c".to_vec(), 1);
        let got: Vec<(u64, SeqNo)> = l.iter().map(|e| (e.key.user_key, e.key.seq)).collect();
        assert_eq!(got, vec![(1, 9), (1, 2), (2, 1)]);
        assert_eq!(l.len(), 3);
        assert_eq!(l.approximate_bytes(), 3);
    }

    #[test]
    fn find_ge_seeks_mid_list() {
        let l = SkipList::new();
        for k in (0..100u64).rev() {
            l.insert(key(k, k + 1), vec![k as u8], 1);
        }
        let first = l.iter_from(InternalKey::seek_to(37)).next().unwrap();
        assert_eq!(first.key.user_key, 37);
        assert!(l.iter_from(InternalKey::seek_to(1000)).next().is_none());
    }

    #[test]
    fn empty_list_behaves() {
        let l = SkipList::new();
        assert!(l.is_empty());
        assert!(l.iter().next().is_none());
        assert!(l.front().is_null());
    }

    #[test]
    fn concurrent_inserts_all_land_sorted() {
        let list = Arc::new(SkipList::new());
        let threads = 8;
        let per = 2_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let l = Arc::clone(&list);
                std::thread::spawn(move || {
                    for i in 0..per {
                        // Interleave key ranges across threads so CAS races
                        // actually happen on shared splices.
                        let k = i * threads + t;
                        l.insert(key(k, k + 1), k.to_le_bytes().to_vec(), 8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let n = threads * per;
        assert_eq!(list.len() as u64, n);
        let entries: Vec<Entry> = list.iter().collect();
        assert_eq!(entries.len() as u64, n);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.key.user_key, i as u64, "dense sorted keys");
            assert_eq!(e.value, (i as u64).to_le_bytes().to_vec());
        }
        for w in entries.windows(2) {
            assert!(w[0].key < w[1].key, "strictly sorted");
        }
    }
}
