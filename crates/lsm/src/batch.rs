//! Atomic write batches (LevelDB's `WriteBatch`).
//!
//! A [`WriteBatch`] buffers puts and deletes client-side; [`crate::Db::write`]
//! assigns the whole batch **one** contiguous sequence-number range and logs
//! it inside **one** CRC-protected WAL record — possibly fused with other
//! concurrently queued batches (pipelined group commit; see the
//! [`crate::db`] module docs). Recovery applies a record all-or-nothing: a
//! torn tail drops the entire record, never a prefix; readers likewise
//! never see a partially applied batch (the fence-publish ceiling).

use crate::types::EntryKind;

/// One buffered operation inside a [`WriteBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOp {
    pub kind: EntryKind,
    pub key: u64,
    /// Value payload; empty for deletes.
    pub value: Vec<u8>,
}

/// A buffered, ordered collection of updates applied atomically.
///
/// Operations apply in insertion order, so a later `put`/`delete` of the
/// same key overrides an earlier one (it receives a higher sequence number).
///
/// ```
/// use lsm_tree::{Db, Options, WriteBatch, WriteOptions};
///
/// let db = Db::open_memory(Options::small_for_tests()).unwrap();
/// let mut batch = WriteBatch::new();
/// batch.put(1, b"one");
/// batch.put(2, b"two");
/// batch.delete(1);
/// db.write(batch, &WriteOptions::default()).unwrap();
/// assert_eq!(db.get(1).unwrap(), None);
/// assert_eq!(db.get(2).unwrap(), Some(b"two".to_vec()));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    ops: Vec<BatchOp>,
    value_bytes: usize,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `n` operations.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            ops: Vec::with_capacity(n),
            value_bytes: 0,
        }
    }

    /// Buffer an insert/overwrite of `key`.
    pub fn put(&mut self, key: u64, value: &[u8]) -> &mut Self {
        self.value_bytes += value.len();
        self.ops.push(BatchOp {
            kind: EntryKind::Put,
            key,
            value: value.to_vec(),
        });
        self
    }

    /// Buffer a delete (tombstone) of `key`.
    pub fn delete(&mut self, key: u64) -> &mut Self {
        self.ops.push(BatchOp {
            kind: EntryKind::Delete,
            key,
            value: Vec::new(),
        });
        self
    }

    /// Drop all buffered operations.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.value_bytes = 0;
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The buffered operations, in application order.
    pub fn ops(&self) -> &[BatchOp] {
        &self.ops
    }

    /// Consume the batch, yielding its operations in application order
    /// (no per-op clone — the sharding layer's batch splitter moves ops
    /// into per-shard sub-batches through this).
    pub fn into_ops(self) -> Vec<BatchOp> {
        self.ops
    }

    /// Approximate memory the batch will occupy in the memtable (same
    /// per-entry accounting as `MemTable::approximate_bytes`).
    pub fn approximate_bytes(&self) -> usize {
        self.ops.len() * crate::memtable::ENTRY_OVERHEAD + self.value_bytes
    }
}

impl Extend<BatchOp> for WriteBatch {
    fn extend<I: IntoIterator<Item = BatchOp>>(&mut self, iter: I) {
        for op in iter {
            self.value_bytes += op.value.len();
            self.ops.push(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_preserve_order_and_payload() {
        let mut b = WriteBatch::new();
        b.put(3, b"x").delete(4).put(3, b"y");
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(
            b.ops()[0],
            BatchOp {
                kind: EntryKind::Put,
                key: 3,
                value: b"x".to_vec()
            }
        );
        assert_eq!(
            b.ops()[1],
            BatchOp {
                kind: EntryKind::Delete,
                key: 4,
                value: vec![]
            }
        );
        assert_eq!(b.ops()[2].value, b"y");
    }

    #[test]
    fn clear_resets() {
        let mut b = WriteBatch::with_capacity(4);
        b.put(1, &[0u8; 100]);
        assert!(b.approximate_bytes() > 100);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.approximate_bytes(), 0);
    }

    #[test]
    fn approximate_bytes_tracks_values() {
        let mut b = WriteBatch::new();
        b.put(1, &[0u8; 64]);
        b.delete(2);
        assert_eq!(
            b.approximate_bytes(),
            2 * crate::memtable::ENTRY_OVERHEAD + 64
        );
    }
}
