//! Leveled partial compaction (paper Section 2.1 / Figure 9).
//!
//! * L0→L1 when L0 accumulates `l0_compaction_trigger` flushed buffers
//!   (all of L0 merges, because L0 tables overlap).
//! * Ln→Ln+1 (n ≥ 1) when the level exceeds its `T`-exponential target;
//!   one input table is picked round-robin (cursor per level) plus the
//!   next-level tables it overlaps — LevelDB's partial compaction.
//!
//! The merge deduplicates versions (one survivor per user key) and drops
//! tombstones when the output is the bottom-most populated level. Outputs
//! rotate at the SSTable granularity target. Index training and model
//! serialization inside [`TableBuilder::finish`] are timed separately so
//! Figure 9's breakdown falls out directly.
//!
//! **Subcompactions** ([`Options::max_subcompactions`] > 1, leveling
//! only): one logical compaction is range-partitioned into disjoint
//! user-key sub-ranges ([`plan_subcompactions`] cuts at byte-weighted
//! input-table boundaries so each sub-range carries ≈even work) and each
//! sub-range merges on its own scoped thread. Correctness at the seams
//! rests on cuts being *user-key* boundaries: every version of a user
//! key lands in exactly one sub-range, so the per-subcompaction
//! [`KeyRetention`] state machine sees complete version chains and
//! tombstone elision is identical to the single-threaded merge. The
//! caller installs all sub-outputs through **one** version edit and one
//! manifest seal — a partial compaction is never visible, and a crash
//! leaves only orphan output files (swept on the next open).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::cache::EngineCache;
use crate::iter::{MergeIter, MergeSource};
use crate::options::{CompactionPolicy, Options};
use crate::sstable::{TableBuilder, TableReader};
use crate::stats::DbStats;
use crate::types::{EntryKind, InternalKey};
use crate::version::{TableHandle, Version};
use crate::Result;
use lsm_io::Storage;
use lsm_obs::{EngineObs, EventKind};

/// Version-retention state machine for merges (flushes and compactions).
///
/// Feed it each entry in merge order (user key ascending, sequence
/// descending within a key); [`KeyRetention::keep`] answers whether the
/// entry must be written out:
///
/// * only the newest version of each user key survives (every SSTable holds
///   at most one version per key — the strictly-increasing key column is
///   what the learned index models train on);
/// * a tombstone is additionally elided when the output is the bottom of
///   the tree (`elide_tombstones`) — there is nothing underneath left to
///   mask.
///
/// Older versions pinned by a live [`crate::Snapshot`] do **not** need to
/// survive the merge: snapshots read through their pinned `Version`, whose
/// `Arc`s keep the pre-merge tables alive for as long as the handle does.
#[derive(Debug)]
pub struct KeyRetention {
    elide_tombstones: bool,
    current_key: Option<u64>,
}

impl KeyRetention {
    /// Retention for a merge whose output lands at the tree bottom iff
    /// `elide_tombstones`.
    pub fn new(elide_tombstones: bool) -> Self {
        Self {
            elide_tombstones,
            current_key: None,
        }
    }

    /// Whether the entry with internal key `key` must be written out.
    pub fn keep(&mut self, key: &InternalKey) -> bool {
        if self.current_key == Some(key.user_key) {
            return false; // shadowed by a newer version already emitted
        }
        self.current_key = Some(key.user_key);
        !(self.elide_tombstones && key.kind == EntryKind::Delete)
    }
}

/// A planned compaction.
#[derive(Debug)]
pub struct CompactionTask {
    /// Source level (0 for L0→L1).
    pub level: usize,
    /// Input tables from `level`.
    pub inputs: Vec<Arc<TableHandle>>,
    /// Overlapping tables from `level + 1`.
    pub next_inputs: Vec<Arc<TableHandle>>,
    /// Whether tombstones can be dropped (output is the bottom level).
    pub is_bottom: bool,
}

impl CompactionTask {
    /// All input file names (to delete after the edit is applied).
    pub fn input_names(&self) -> Vec<String> {
        self.inputs
            .iter()
            .chain(self.next_inputs.iter())
            .map(|t| t.meta.name.clone())
            .collect()
    }

    /// Total input bytes.
    pub fn input_bytes(&self) -> u64 {
        self.inputs
            .iter()
            .chain(self.next_inputs.iter())
            .map(|t| t.meta.file_bytes)
            .sum()
    }
}

/// Decide whether any level needs compacting. `cursors` is the per-level
/// round-robin key cursor (advanced by [`advance_cursor`]).
pub fn pick_compaction(
    version: &Version,
    opts: &Options,
    cursors: &[u64],
) -> Option<CompactionTask> {
    pick_compaction_excluding(version, opts, cursors, &HashSet::new())
}

/// [`pick_compaction`] that never selects a task whose inputs intersect
/// `busy` (tables claimed by an in-flight background compaction). A level
/// whose due work is blocked is skipped, so disjoint tasks at other levels
/// can still run concurrently. With an empty `busy` set this is exactly
/// the synchronous picker.
pub fn pick_compaction_excluding(
    version: &Version,
    opts: &Options,
    cursors: &[u64],
    busy: &HashSet<String>,
) -> Option<CompactionTask> {
    let is_busy = |t: &Arc<TableHandle>| busy.contains(&t.meta.name);
    if let CompactionPolicy::Tiering { runs_per_level } = opts.compaction {
        return pick_tiering(version, runs_per_level.max(2), &is_busy);
    }
    // L0 first: file-count pressure stalls writes soonest.
    if version.levels[0].len() >= opts.l0_compaction_trigger {
        let inputs = version.levels[0].clone();
        let min = inputs.iter().map(|t| t.meta.min_key).min()?;
        let max = inputs.iter().map(|t| t.meta.max_key).max()?;
        let next_inputs = version.overlapping(1, min, max);
        if !inputs.iter().chain(next_inputs.iter()).any(is_busy) {
            return Some(CompactionTask {
                level: 0,
                inputs,
                next_inputs,
                is_bottom: is_bottom_output(version, 1),
            });
        }
        // An L0 merge is already in flight; fall through to deeper levels.
    }
    // Size-triggered levels.
    for level in 1..version.levels.len() - 1 {
        if version.level_bytes(level) > opts.level_target_bytes(level) {
            let tables = &version.levels[level];
            if tables.is_empty() {
                continue;
            }
            // Round-robin: first table whose max key is past the cursor,
            // skipping tables (or next-level overlaps) already claimed.
            let cursor = cursors.get(level).copied().unwrap_or(0);
            let start = tables
                .iter()
                .position(|t| t.meta.max_key > cursor)
                .unwrap_or(0);
            let candidate = (0..tables.len())
                .map(|i| &tables[(start + i) % tables.len()])
                .find_map(|input| {
                    if is_busy(input) {
                        return None;
                    }
                    let next_inputs =
                        version.overlapping(level + 1, input.meta.min_key, input.meta.max_key);
                    if next_inputs.iter().any(is_busy) {
                        return None;
                    }
                    Some((Arc::clone(input), next_inputs))
                });
            if let Some((input, next_inputs)) = candidate {
                return Some(CompactionTask {
                    level,
                    inputs: vec![input],
                    next_inputs,
                    is_bottom: is_bottom_output(version, level + 1),
                });
            }
        }
    }
    None
}

/// Advance the round-robin cursor for `task`'s source level, using the
/// pre-apply `version` (the structure the task was picked from). L0 has no
/// cursor; a task that consumed the level's last table wraps to 0.
pub fn advance_cursor(version: &Version, task: &CompactionTask, cursors: &mut [u64]) {
    if task.level == 0 || task.level >= cursors.len() {
        return;
    }
    let max = task
        .inputs
        .iter()
        .map(|t| t.meta.max_key)
        .max()
        .unwrap_or(0);
    let tables = &version.levels[task.level];
    let is_last = tables.last().map(|t| t.meta.max_key <= max).unwrap_or(true);
    cursors[task.level] = if is_last { 0 } else { max };
}

/// Tiering trigger: any level holding `runs_per_level` runs merges *all*
/// of them into one new run stacked on the next level (next-level runs are
/// not touched — that is the write-amplification saving).
fn pick_tiering(
    version: &Version,
    runs_per_level: usize,
    is_busy: &dyn Fn(&Arc<TableHandle>) -> bool,
) -> Option<CompactionTask> {
    for level in 0..version.levels.len() - 1 {
        // L0 and deeper levels share one trigger: the size ratio `T`.
        let trigger = runs_per_level;
        if version.levels[level].len() >= trigger {
            let inputs = version.levels[level].clone();
            if inputs.iter().any(is_busy) {
                continue; // this level is already being merged
            }
            // Tombstones drop only when nothing deeper can hold older
            // versions (the output level itself must be empty too, since we
            // do not merge with it).
            let is_bottom =
                version.levels[level + 1].is_empty() && is_bottom_output(version, level + 1);
            return Some(CompactionTask {
                level,
                inputs,
                next_inputs: Vec::new(),
                is_bottom,
            });
        }
    }
    None
}

/// True when `output_level` is (or will be) the deepest populated level, so
/// tombstones have nothing left to mask.
fn is_bottom_output(version: &Version, output_level: usize) -> bool {
    version
        .levels
        .iter()
        .skip(output_level + 1)
        .all(Vec::is_empty)
}

/// Outcome of a compaction run.
#[derive(Debug)]
pub struct CompactionResult {
    /// Newly written tables (for `task.level + 1`), ascending and disjoint
    /// in key space across the whole job regardless of how many
    /// subcompactions produced them.
    pub outputs: Vec<Arc<TableHandle>>,
    /// Bytes read from inputs.
    pub bytes_read: u64,
    /// Bytes written to outputs.
    pub bytes_written: u64,
}

/// One disjoint slice of a compaction job's user-key space: the entries
/// with `lo ≤ user_key < hi` (either bound `None` = unbounded on that
/// side). Cuts are user-key boundaries, so every version of a key belongs
/// to exactly one sub-range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubRange {
    /// Inclusive lower bound on user keys (`None` = from the start).
    pub lo: Option<u64>,
    /// Exclusive upper bound on user keys (`None` = to the end).
    pub hi: Option<u64>,
}

impl SubRange {
    /// The whole key space — the single-threaded merge's one "partition".
    pub fn unbounded() -> SubRange {
        SubRange { lo: None, hi: None }
    }
}

/// Boundary keys sampled per input table when planning sub-range cuts.
/// More samples → finer-grained (more even) cuts at the cost of a few
/// extra point reads per table before the merge starts.
const BOUNDARY_SAMPLES_PER_TABLE: usize = 16;

/// Partition `task`'s key space into at most `max_subcompactions` disjoint
/// sub-ranges of roughly equal input **bytes**.
///
/// Each input table is sampled at `BOUNDARY_SAMPLES_PER_TABLE` evenly
/// spaced entry positions; entries are fixed-width, so position intervals
/// are byte intervals, and an anchor `(key, weight)` means "`weight` input
/// bytes lie at user keys ≤ `key` since this table's previous anchor".
/// Sorting all anchors by key yields a byte-weighted CDF of the whole
/// job's input, and cuts fall wherever it crosses the next `k/n` fraction.
/// Fewer than `max_subcompactions` ranges come back when the key space is
/// too narrow to cut evenly (tiny inputs, heavy duplication across runs).
pub fn plan_subcompactions(
    task: &CompactionTask,
    max_subcompactions: usize,
) -> Result<Vec<SubRange>> {
    if max_subcompactions <= 1 {
        return Ok(vec![SubRange::unbounded()]);
    }
    let mut anchors: Vec<(u64, u64)> = Vec::new();
    for t in task.inputs.iter().chain(task.next_inputs.iter()) {
        let len = t.reader.len();
        if len == 0 {
            continue;
        }
        let width = t.reader.entry_width() as u64;
        let samples = BOUNDARY_SAMPLES_PER_TABLE.min(len);
        let mut prev = 0usize;
        for j in 1..=samples {
            let pos = len * j / samples;
            if pos <= prev {
                continue;
            }
            anchors.push((t.reader.key_at(pos - 1)?, (pos - prev) as u64 * width));
            prev = pos;
        }
    }
    anchors.sort_unstable();
    let total: u64 = anchors.iter().map(|&(_, w)| w).sum();
    if total == 0 {
        return Ok(vec![SubRange::unbounded()]);
    }
    // A cut is placed *after* the anchor that crosses the k/n weight
    // fraction (`hi = anchor_key + 1`, exclusive): the anchor key — and
    // with it every version of that user key — stays left of the seam.
    let n = max_subcompactions as u64;
    let mut cuts: Vec<u64> = Vec::new();
    let mut acc = 0u64;
    let mut k = 1u64;
    for &(key, w) in &anchors {
        acc += w;
        if k < n && acc.saturating_mul(n) >= total.saturating_mul(k) {
            cuts.push(key.saturating_add(1));
            while k < n && acc.saturating_mul(n) >= total.saturating_mul(k) {
                k += 1;
            }
        }
    }
    cuts.dedup();
    // A cut past the global max key would only add an empty tail range.
    let max_key = task
        .inputs
        .iter()
        .chain(task.next_inputs.iter())
        .map(|t| t.meta.max_key)
        .max()
        .unwrap_or(0);
    cuts.retain(|&c| c <= max_key);
    let mut ranges = Vec::with_capacity(cuts.len() + 1);
    let mut lo = None;
    for c in cuts {
        ranges.push(SubRange { lo, hi: Some(c) });
        lo = Some(c);
    }
    ranges.push(SubRange { lo, hi: None });
    Ok(ranges)
}

/// What one sub-range merge produced; [`run_compaction`] aggregates these
/// across subcompactions before the caller installs a single version edit.
struct SubOutcome {
    outputs: Vec<Arc<TableHandle>>,
    /// Input bytes this sub-range consumed (entries popped from the merge
    /// before retention × input entry width).
    bytes_in: u64,
    bytes_written: u64,
    train_ns: u64,
    model_write_ns: u64,
}

/// Merge `task`'s inputs restricted to `range`, writing ≤-target-size
/// output tables. This is the body of the classic single-threaded
/// compaction: with an unbounded range it is byte-for-byte the old merge
/// loop. `KeyRetention` state lives entirely inside one call — safe under
/// parallelism because sub-ranges are disjoint in user-key space.
fn merge_sub_range(
    storage: &dyn Storage,
    task: &CompactionTask,
    opts: &Options,
    next_file_no: &AtomicU64,
    cache: Option<Arc<EngineCache>>,
    range: SubRange,
) -> Result<SubOutcome> {
    let sources: Vec<MergeSource> = task
        .inputs
        .iter()
        .chain(task.next_inputs.iter())
        // No-fill: a compaction sweep reads every input block exactly once;
        // letting it populate the cache would evict the hot read set in
        // favor of blocks whose tables are deleted when the merge commits.
        .map(|t| MergeSource::table_with(Arc::clone(&t.reader), false))
        .collect();
    let mut merge = MergeIter::new(sources);
    match range.lo {
        Some(lo) => merge.seek(lo)?,
        None => merge.seek_to_first(),
    }

    let in_width = crate::sstable::format::entry_width(opts.value_width) as u64;
    let mut out = SubOutcome {
        outputs: Vec::new(),
        bytes_in: 0,
        bytes_written: 0,
        train_ns: 0,
        model_write_ns: 0,
    };
    let mut builder: Option<TableBuilder> = None;
    let mut retention = KeyRetention::new(task.is_bottom);

    let finish_builder = |b: TableBuilder, out: &mut SubOutcome| -> Result<()> {
        if b.is_empty() {
            return Ok(());
        }
        let meta = b.finish()?;
        out.bytes_written += meta.file_bytes;
        out.train_ns += meta.train_ns;
        out.model_write_ns += meta.model_write_ns;
        let reader = Arc::new(
            TableReader::open_with(storage, &meta.name, cache.clone())?
                .with_search_strategy(opts.search),
        );
        out.outputs.push(Arc::new(TableHandle { meta, reader }));
        Ok(())
    };

    while let Some(entry) = merge.next_entry()? {
        if range.hi.is_some_and(|hi| entry.key.user_key >= hi) {
            break; // seam: the next sub-range owns this key onward
        }
        out.bytes_in += in_width;
        // Dedup: internal-key order puts the newest version of a user key
        // first; all later versions of the same key are obsolete here
        // (live snapshots read through their own pinned `Version`).
        if !retention.keep(&entry.key) {
            continue;
        }

        // Tiering keeps one table per run; leveling rotates at the
        // granularity target. (Retention emits one version per user key, so
        // a rotation boundary is always also a user-key boundary and sorted
        // runs stay non-overlapping.)
        let rotate = matches!(opts.compaction, CompactionPolicy::Leveling)
            && builder
                .as_ref()
                .is_some_and(|b| b.data_bytes() >= opts.sstable_target_bytes);
        if rotate {
            let full = builder.take().expect("non-empty builder");
            finish_builder(full, &mut out)?;
        }

        if builder.is_none() {
            let name = format!("{:06}.sst", next_file_no.fetch_add(1, Ordering::Relaxed));
            let file = storage.create(&name)?;
            builder = Some(TableBuilder::new(
                file,
                name,
                opts.index_for_level(task.level + 1),
                opts.value_width,
                opts.bloom_bits_for_level(task.level + 1),
            ));
        }
        let b = builder.as_mut().expect("builder just created");
        b.add(&entry)?;
    }
    if let Some(b) = builder.take() {
        finish_builder(b, &mut out)?;
    }
    Ok(out)
}

/// Execute `task`: merge inputs, write ≤-target-size output tables, record
/// the stage breakdown into `stats`. `next_file_no` supplies output names —
/// an atomic, so background workers (and parallel subcompaction threads)
/// can name outputs without holding the tree lock for the duration of the
/// merge.
///
/// When [`Options::max_subcompactions`] > 1 under leveling, the job's key
/// space is range-partitioned by [`plan_subcompactions`] and each
/// sub-range merges on its own scoped thread; `max_subcompactions = 1`
/// (the default) runs the exact single-threaded merge. Outputs come back
/// in key order either way, and the caller commits them through **one**
/// version edit + manifest seal — a failed or crashed job leaves only
/// orphan output files, never a partial compaction.
///
/// Freshly built outputs are registered eagerly in the table-handle cache
/// under `cache_scope` (when `cache` is present), so the first
/// post-compaction read does not pay a cold-handle miss.
///
/// When observability is on, `obs` brackets the run in a
/// `compaction_begin` / `compaction_end` span (begin carries the source
/// level, end the input/output byte totals); a partitioned run nests one
/// `subcompaction_begin` / `subcompaction_end` sub-span per sub-range,
/// whose begin event carries the parent span id in `a`.
#[allow(clippy::too_many_arguments)] // one call site family; a config struct would just rename these
pub fn run_compaction(
    storage: &dyn Storage,
    task: &CompactionTask,
    opts: &Options,
    stats: &DbStats,
    next_file_no: &AtomicU64,
    cache: Option<Arc<EngineCache>>,
    cache_scope: u64,
    obs: Option<&EngineObs>,
) -> Result<CompactionResult> {
    let total_start = Instant::now();
    let span = obs.map(|o| {
        let span = o.span();
        o.emit(EventKind::CompactionBegin, span, task.level as u64, 0);
        span
    });

    // Range-partition only under leveling: a tiering merge must emit one
    // sorted run, which a partitioned job would split into several.
    let ranges =
        if matches!(opts.compaction, CompactionPolicy::Leveling) && opts.max_subcompactions > 1 {
            plan_subcompactions(task, opts.max_subcompactions)?
        } else {
            vec![SubRange::unbounded()]
        };
    let partitioned = ranges.len() > 1;

    let run_one = |idx: usize, range: SubRange| -> Result<SubOutcome> {
        let sub_span = if partitioned {
            obs.zip(span).map(|(o, parent)| {
                let s = o.span();
                o.emit(EventKind::SubcompactionBegin, s, parent, idx as u64);
                s
            })
        } else {
            None // unpartitioned: keep the default obs timeline unchanged
        };
        let outcome = merge_sub_range(storage, task, opts, next_file_no, cache.clone(), range)?;
        if let (Some(o), Some(s)) = (obs, sub_span) {
            o.emit(
                EventKind::SubcompactionEnd,
                s,
                outcome.bytes_in,
                outcome.bytes_written,
            );
        }
        Ok(outcome)
    };

    let outcomes: Vec<Result<SubOutcome>> = if partitioned {
        // Borrow extra threads from the process-wide maintenance budget;
        // this job's own thread counts as one, so a lease of k runs the
        // ranges on k+1 scoped threads. Contiguous chunks keep partition
        // order, and a short lease just folds more ranges per thread.
        let lease = crate::scheduler::borrow_subcompaction_threads(ranges.len() - 1);
        let threads = lease.extra() + 1;
        let per_thread = ranges.len().div_ceil(threads);
        let run_one = &run_one;
        std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .chunks(per_thread)
                .enumerate()
                .map(|(chunk_no, chunk)| {
                    s.spawn(move || -> Vec<Result<SubOutcome>> {
                        chunk
                            .iter()
                            .enumerate()
                            .map(|(i, &range)| run_one(chunk_no * per_thread + i, range))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("subcompaction thread panicked"))
                .collect()
        })
    } else {
        vec![run_one(0, ranges[0])]
    };

    // Aggregate in partition order (ranges ascend, outputs within a range
    // ascend, so the concatenation is globally sorted and disjoint). On
    // any sub-range error nothing was installed — drop the sibling
    // outputs' handles and best-effort unlink their files so an in-process
    // failure leaks nothing (a crash instead leaves orphans for the
    // open-time sweep).
    let mut ok = Vec::with_capacity(outcomes.len());
    let mut first_err = None;
    for r in outcomes {
        match r {
            Ok(o) => ok.push(o),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_err {
        for o in ok {
            for t in o.outputs {
                let name = t.meta.name.clone();
                drop(t);
                let _ = storage.remove(&name);
            }
        }
        return Err(e);
    }

    let mut outputs = Vec::new();
    let mut bytes_written = 0u64;
    let mut train_ns = 0u64;
    let mut model_write_ns = 0u64;
    for o in ok {
        outputs.extend(o.outputs);
        bytes_written += o.bytes_written;
        train_ns += o.train_ns;
        model_write_ns += o.model_write_ns;
    }

    // Eager registration: the outputs' readers are already open — publish
    // them so the first post-compaction read doesn't re-open the table.
    if let Some(cache) = &cache {
        for t in &outputs {
            cache
                .tables()
                .insert(cache_scope, &t.meta.name, Arc::clone(&t.reader));
        }
    }

    let total_ns = total_start.elapsed().as_nanos() as u64;
    let bytes_read = task.input_bytes();
    stats.compactions.fetch_add(1, Ordering::Relaxed);
    stats
        .subcompactions
        .fetch_add(ranges.len() as u64, Ordering::Relaxed);
    stats
        .compact_total_ns
        .fetch_add(total_ns, Ordering::Relaxed);
    stats
        .compact_train_ns
        .fetch_add(train_ns, Ordering::Relaxed);
    stats
        .compact_model_write_ns
        .fetch_add(model_write_ns, Ordering::Relaxed);
    stats.compact_kv_io_ns.fetch_add(
        total_ns.saturating_sub(train_ns + model_write_ns),
        Ordering::Relaxed,
    );
    stats
        .compact_bytes_read
        .fetch_add(bytes_read, Ordering::Relaxed);
    stats
        .compact_bytes_written
        .fetch_add(bytes_written, Ordering::Relaxed);
    // Per-level write-amp attribution: inputs are read from their source
    // levels, every output byte lands on `level + 1`.
    let level_in: u64 = task.inputs.iter().map(|t| t.meta.file_bytes).sum();
    let next_in: u64 = task.next_inputs.iter().map(|t| t.meta.file_bytes).sum();
    stats.record_compact_read(task.level, level_in);
    stats.record_compact_read(task.level + 1, next_in);
    stats.record_compact_write(task.level + 1, bytes_written);

    if let (Some(obs), Some(span)) = (obs, span) {
        obs.emit(EventKind::CompactionEnd, span, bytes_read, bytes_written);
    }

    Ok(CompactionResult {
        outputs,
        bytes_read,
        bytes_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::IndexChoice;
    use crate::types::Entry;
    use learned_index::IndexKind;
    use lsm_io::MemStorage;

    fn handle_with(storage: &MemStorage, name: &str, entries: Vec<Entry>) -> Arc<TableHandle> {
        let file = storage.create(name).unwrap();
        let mut b = TableBuilder::new(
            file,
            name.into(),
            IndexChoice::new(IndexKind::Pgm, 4),
            32,
            10,
        );
        for e in &entries {
            b.add(e).unwrap();
        }
        let meta = b.finish().unwrap();
        let reader = Arc::new(TableReader::open(storage, name).unwrap());
        Arc::new(TableHandle { meta, reader })
    }

    fn puts(range: std::ops::Range<u64>, seq: u64) -> Vec<Entry> {
        range
            .map(|k| Entry::put(k, seq, vec![k as u8; 4]))
            .collect()
    }

    #[test]
    fn l0_pressure_triggers_compaction() {
        let storage = MemStorage::new();
        let mut opts = Options::small_for_tests();
        opts.l0_compaction_trigger = 2;
        let mut v = Version::new(4);
        v.levels[0].push(handle_with(&storage, "a", puts(0..10, 5)));
        v.levels[0].push(handle_with(&storage, "b", puts(5..15, 3)));
        let task = pick_compaction(&v, &opts, &[0; 4]).expect("L0 compaction due");
        assert_eq!(task.level, 0);
        assert_eq!(task.inputs.len(), 2);
        assert!(task.is_bottom);
    }

    #[test]
    fn merge_keeps_newest_version() {
        let storage = MemStorage::new();
        let opts = Options::small_for_tests();
        let stats = DbStats::new();
        let newer = handle_with(&storage, "new", puts(0..10, 9));
        let older = handle_with(&storage, "old", puts(0..10, 1));
        let task = CompactionTask {
            level: 0,
            inputs: vec![newer, older],
            next_inputs: vec![],
            is_bottom: true,
        };
        let fno = AtomicU64::new(100);
        let result = run_compaction(&storage, &task, &opts, &stats, &fno, None, 0, None).unwrap();
        assert_eq!(result.outputs.len(), 1);
        let out = &result.outputs[0];
        assert_eq!(out.meta.n, 10, "one survivor per key");
        assert_eq!(out.meta.max_seq, 9, "newest versions kept");
    }

    #[test]
    fn bottom_compaction_drops_tombstones() {
        let storage = MemStorage::new();
        let opts = Options::small_for_tests();
        let stats = DbStats::new();
        let entries = vec![
            Entry::put(0, 2, vec![0; 4]),
            Entry::put(1, 2, vec![1; 4]),
            Entry::tombstone(2, 8),
            Entry::put(3, 2, vec![3; 4]),
            Entry::put(4, 2, vec![4; 4]),
        ];
        let t = handle_with(&storage, "in", entries);
        let task = CompactionTask {
            level: 0,
            inputs: vec![t],
            next_inputs: vec![],
            is_bottom: true,
        };
        let fno = AtomicU64::new(200);
        let result = run_compaction(&storage, &task, &opts, &stats, &fno, None, 0, None).unwrap();
        let out = &result.outputs[0];
        assert_eq!(out.meta.n, 4, "tombstone dropped at bottom");
        let got = out.reader.get(2, u64::MAX >> 8, &stats).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn non_bottom_compaction_keeps_tombstones() {
        let storage = MemStorage::new();
        let opts = Options::small_for_tests();
        let stats = DbStats::new();
        let t = handle_with(&storage, "in", vec![Entry::tombstone(7, 3)]);
        let task = CompactionTask {
            level: 0,
            inputs: vec![t],
            next_inputs: vec![],
            is_bottom: false,
        };
        let fno = AtomicU64::new(300);
        let result = run_compaction(&storage, &task, &opts, &stats, &fno, None, 0, None).unwrap();
        assert_eq!(result.outputs[0].meta.n, 1, "tombstone must survive");
    }

    #[test]
    fn outputs_rotate_at_target_size() {
        let storage = MemStorage::new();
        let mut opts = Options::small_for_tests();
        opts.sstable_target_bytes = 2048;
        opts.value_width = 32;
        let stats = DbStats::new();
        let t = handle_with(&storage, "in", puts(0..200, 1));
        let task = CompactionTask {
            level: 0,
            inputs: vec![t],
            next_inputs: vec![],
            is_bottom: true,
        };
        let fno = AtomicU64::new(400);
        let result = run_compaction(&storage, &task, &opts, &stats, &fno, None, 0, None).unwrap();
        assert!(result.outputs.len() > 1, "must split into multiple tables");
        let total: u64 = result.outputs.iter().map(|t| t.meta.n).sum();
        assert_eq!(total, 200);
        // Outputs are disjoint and ordered.
        for w in result.outputs.windows(2) {
            assert!(w[0].meta.max_key < w[1].meta.min_key);
        }
    }

    /// Read every entry of every output, in output order (outputs are
    /// globally sorted, so this is the merged sequence).
    fn dump(outputs: &[Arc<TableHandle>]) -> Vec<(u64, u64, EntryKind, Vec<u8>)> {
        let mut all = Vec::new();
        for t in outputs {
            let mut m = MergeIter::new(vec![MergeSource::table_with(Arc::clone(&t.reader), false)]);
            m.seek_to_first();
            while let Some(e) = m.next_entry().unwrap() {
                all.push((e.key.user_key, e.key.seq, e.key.kind, e.value));
            }
        }
        all
    }

    /// Two overlapping L0 runs plus an overlapping L1 table — a job with
    /// real cross-run version shadowing for the partitioned merge to get
    /// right at every seam.
    fn overlapping_task(storage: &MemStorage) -> CompactionTask {
        let a = handle_with(storage, "a", puts(0..600, 9));
        let b = handle_with(
            storage,
            "b",
            (300..900).map(|k| Entry::put(k, 5, vec![7; 4])).collect(),
        );
        let c = handle_with(storage, "c", puts(100..800, 1));
        CompactionTask {
            level: 0,
            inputs: vec![a, b],
            next_inputs: vec![c],
            is_bottom: true,
        }
    }

    #[test]
    fn plan_cuts_tile_the_key_space() {
        let storage = MemStorage::new();
        let task = overlapping_task(&storage);
        let ranges = plan_subcompactions(&task, 4).unwrap();
        assert!(
            ranges.len() > 1 && ranges.len() <= 4,
            "900 distinct keys must admit cuts: {ranges:?}"
        );
        assert_eq!(ranges.first().unwrap().lo, None);
        assert_eq!(ranges.last().unwrap().hi, None);
        for w in ranges.windows(2) {
            assert_eq!(w[0].hi, w[1].lo, "contiguous, disjoint tiling");
            assert!(w[0].hi.is_some());
        }
        assert_eq!(
            plan_subcompactions(&task, 1).unwrap(),
            vec![SubRange::unbounded()],
            "knob = 1 never partitions"
        );
    }

    #[test]
    fn partitioned_merge_matches_single_threaded() {
        let storage = MemStorage::new();
        let task = overlapping_task(&storage);
        let mut opts = Options::small_for_tests();
        opts.sstable_target_bytes = 4096;

        let fno = AtomicU64::new(100);
        let stats = DbStats::new();
        let single = run_compaction(&storage, &task, &opts, &stats, &fno, None, 0, None).unwrap();
        let expected = dump(&single.outputs);

        for n in [2, 4, 8] {
            opts.max_subcompactions = n;
            let stats = DbStats::new();
            let parallel =
                run_compaction(&storage, &task, &opts, &stats, &fno, None, 0, None).unwrap();
            assert_eq!(
                dump(&parallel.outputs),
                expected,
                "n={n}: same survivors in the same order"
            );
            for w in parallel.outputs.windows(2) {
                assert!(
                    w[0].meta.max_key < w[1].meta.min_key,
                    "n={n}: outputs sorted and disjoint across sub-ranges"
                );
            }
            let snap = stats.snapshot();
            assert_eq!(snap.compactions, 1);
            assert!(
                snap.subcompactions >= 2,
                "n={n}: the job must actually have partitioned"
            );
        }
    }

    #[test]
    fn tombstone_elision_survives_partition_seams() {
        let storage = MemStorage::new();
        // Newer run tombstones every 3rd key; older run has every key.
        let dels: Vec<Entry> = (0..900)
            .step_by(3)
            .map(|k| Entry::tombstone(k, 9))
            .collect();
        let newer = handle_with(&storage, "del", dels);
        let older = handle_with(&storage, "old", puts(0..900, 1));
        let task = CompactionTask {
            level: 0,
            inputs: vec![newer],
            next_inputs: vec![older],
            is_bottom: true,
        };
        let mut opts = Options::small_for_tests();
        opts.max_subcompactions = 4;
        let stats = DbStats::new();
        let fno = AtomicU64::new(0);
        let result = run_compaction(&storage, &task, &opts, &stats, &fno, None, 0, None).unwrap();
        let total: u64 = result.outputs.iter().map(|t| t.meta.n).sum();
        assert_eq!(total, 600, "300 tombstoned keys fully elided at the bottom");
        for (key, _, kind, _) in dump(&result.outputs) {
            assert_ne!(kind, EntryKind::Delete, "no tombstone escapes");
            assert_ne!(key % 3, 0, "no deleted key resurrects at a seam");
        }
    }

    #[test]
    fn outputs_register_eagerly_in_table_cache() {
        let storage = MemStorage::new();
        let task = overlapping_task(&storage);
        let mut opts = Options::small_for_tests();
        opts.max_subcompactions = 2;
        let stats = DbStats::new();
        let fno = AtomicU64::new(0);
        let cache = Arc::new(EngineCache::new(1 << 20, 0, 64));
        let scope = cache.next_scope();
        let result = run_compaction(
            &storage,
            &task,
            &opts,
            &stats,
            &fno,
            Some(Arc::clone(&cache)),
            scope,
            None,
        )
        .unwrap();
        assert!(!result.outputs.is_empty());
        for t in &result.outputs {
            assert!(
                cache.tables().get(scope, &t.meta.name).is_some(),
                "output {} must be resident before the first read",
                t.meta.name
            );
        }
    }

    #[test]
    fn write_amp_counters_attribute_bytes_per_level() {
        let storage = MemStorage::new();
        let task = overlapping_task(&storage);
        let l0_bytes: u64 = task.inputs.iter().map(|t| t.meta.file_bytes).sum();
        let l1_bytes: u64 = task.next_inputs.iter().map(|t| t.meta.file_bytes).sum();
        let opts = Options::small_for_tests();
        let stats = DbStats::new();
        let fno = AtomicU64::new(0);
        let result = run_compaction(&storage, &task, &opts, &stats, &fno, None, 0, None).unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.compact_level_bytes_read[0], l0_bytes);
        assert_eq!(snap.compact_level_bytes_read[1], l1_bytes);
        assert_eq!(snap.compact_level_bytes_written[1], result.bytes_written);
        assert_eq!(snap.compact_bytes_written, result.bytes_written);
    }

    #[test]
    fn stats_record_breakdown() {
        let storage = MemStorage::new();
        let opts = Options::small_for_tests();
        let stats = DbStats::new();
        let t = handle_with(&storage, "in", puts(0..500, 1));
        let task = CompactionTask {
            level: 0,
            inputs: vec![t],
            next_inputs: vec![],
            is_bottom: true,
        };
        let fno = AtomicU64::new(500);
        run_compaction(&storage, &task, &opts, &stats, &fno, None, 0, None).unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.compactions, 1);
        assert!(snap.compact_total_ns > 0);
        assert!(snap.compact_train_ns > 0);
        assert!(snap.compact_total_ns >= snap.compact_train_ns + snap.compact_model_write_ns);
        assert!(snap.compact_bytes_read > 0);
        assert!(snap.compact_bytes_written > 0);
    }
}
