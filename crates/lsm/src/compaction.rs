//! Leveled partial compaction (paper Section 2.1 / Figure 9).
//!
//! * L0→L1 when L0 accumulates `l0_compaction_trigger` flushed buffers
//!   (all of L0 merges, because L0 tables overlap).
//! * Ln→Ln+1 (n ≥ 1) when the level exceeds its `T`-exponential target;
//!   one input table is picked round-robin (cursor per level) plus the
//!   next-level tables it overlaps — LevelDB's partial compaction.
//!
//! The merge deduplicates versions (one survivor per user key) and drops
//! tombstones when the output is the bottom-most populated level. Outputs
//! rotate at the SSTable granularity target. Index training and model
//! serialization inside [`TableBuilder::finish`] are timed separately so
//! Figure 9's breakdown falls out directly.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::cache::EngineCache;
use crate::iter::{MergeIter, MergeSource};
use crate::options::{CompactionPolicy, Options};
use crate::sstable::{TableBuilder, TableReader};
use crate::stats::DbStats;
use crate::types::{EntryKind, InternalKey};
use crate::version::{TableHandle, Version};
use crate::Result;
use lsm_io::Storage;
use lsm_obs::{EngineObs, EventKind};

/// Version-retention state machine for merges (flushes and compactions).
///
/// Feed it each entry in merge order (user key ascending, sequence
/// descending within a key); [`KeyRetention::keep`] answers whether the
/// entry must be written out:
///
/// * only the newest version of each user key survives (every SSTable holds
///   at most one version per key — the strictly-increasing key column is
///   what the learned index models train on);
/// * a tombstone is additionally elided when the output is the bottom of
///   the tree (`elide_tombstones`) — there is nothing underneath left to
///   mask.
///
/// Older versions pinned by a live [`crate::Snapshot`] do **not** need to
/// survive the merge: snapshots read through their pinned `Version`, whose
/// `Arc`s keep the pre-merge tables alive for as long as the handle does.
#[derive(Debug)]
pub struct KeyRetention {
    elide_tombstones: bool,
    current_key: Option<u64>,
}

impl KeyRetention {
    /// Retention for a merge whose output lands at the tree bottom iff
    /// `elide_tombstones`.
    pub fn new(elide_tombstones: bool) -> Self {
        Self {
            elide_tombstones,
            current_key: None,
        }
    }

    /// Whether the entry with internal key `key` must be written out.
    pub fn keep(&mut self, key: &InternalKey) -> bool {
        if self.current_key == Some(key.user_key) {
            return false; // shadowed by a newer version already emitted
        }
        self.current_key = Some(key.user_key);
        !(self.elide_tombstones && key.kind == EntryKind::Delete)
    }
}

/// A planned compaction.
#[derive(Debug)]
pub struct CompactionTask {
    /// Source level (0 for L0→L1).
    pub level: usize,
    /// Input tables from `level`.
    pub inputs: Vec<Arc<TableHandle>>,
    /// Overlapping tables from `level + 1`.
    pub next_inputs: Vec<Arc<TableHandle>>,
    /// Whether tombstones can be dropped (output is the bottom level).
    pub is_bottom: bool,
}

impl CompactionTask {
    /// All input file names (to delete after the edit is applied).
    pub fn input_names(&self) -> Vec<String> {
        self.inputs
            .iter()
            .chain(self.next_inputs.iter())
            .map(|t| t.meta.name.clone())
            .collect()
    }

    /// Total input bytes.
    pub fn input_bytes(&self) -> u64 {
        self.inputs
            .iter()
            .chain(self.next_inputs.iter())
            .map(|t| t.meta.file_bytes)
            .sum()
    }
}

/// Decide whether any level needs compacting. `cursors` is the per-level
/// round-robin key cursor (advanced by [`advance_cursor`]).
pub fn pick_compaction(
    version: &Version,
    opts: &Options,
    cursors: &[u64],
) -> Option<CompactionTask> {
    pick_compaction_excluding(version, opts, cursors, &HashSet::new())
}

/// [`pick_compaction`] that never selects a task whose inputs intersect
/// `busy` (tables claimed by an in-flight background compaction). A level
/// whose due work is blocked is skipped, so disjoint tasks at other levels
/// can still run concurrently. With an empty `busy` set this is exactly
/// the synchronous picker.
pub fn pick_compaction_excluding(
    version: &Version,
    opts: &Options,
    cursors: &[u64],
    busy: &HashSet<String>,
) -> Option<CompactionTask> {
    let is_busy = |t: &Arc<TableHandle>| busy.contains(&t.meta.name);
    if let CompactionPolicy::Tiering { runs_per_level } = opts.compaction {
        return pick_tiering(version, runs_per_level.max(2), &is_busy);
    }
    // L0 first: file-count pressure stalls writes soonest.
    if version.levels[0].len() >= opts.l0_compaction_trigger {
        let inputs = version.levels[0].clone();
        let min = inputs.iter().map(|t| t.meta.min_key).min()?;
        let max = inputs.iter().map(|t| t.meta.max_key).max()?;
        let next_inputs = version.overlapping(1, min, max);
        if !inputs.iter().chain(next_inputs.iter()).any(is_busy) {
            return Some(CompactionTask {
                level: 0,
                inputs,
                next_inputs,
                is_bottom: is_bottom_output(version, 1),
            });
        }
        // An L0 merge is already in flight; fall through to deeper levels.
    }
    // Size-triggered levels.
    for level in 1..version.levels.len() - 1 {
        if version.level_bytes(level) > opts.level_target_bytes(level) {
            let tables = &version.levels[level];
            if tables.is_empty() {
                continue;
            }
            // Round-robin: first table whose max key is past the cursor,
            // skipping tables (or next-level overlaps) already claimed.
            let cursor = cursors.get(level).copied().unwrap_or(0);
            let start = tables
                .iter()
                .position(|t| t.meta.max_key > cursor)
                .unwrap_or(0);
            let candidate = (0..tables.len())
                .map(|i| &tables[(start + i) % tables.len()])
                .find_map(|input| {
                    if is_busy(input) {
                        return None;
                    }
                    let next_inputs =
                        version.overlapping(level + 1, input.meta.min_key, input.meta.max_key);
                    if next_inputs.iter().any(is_busy) {
                        return None;
                    }
                    Some((Arc::clone(input), next_inputs))
                });
            if let Some((input, next_inputs)) = candidate {
                return Some(CompactionTask {
                    level,
                    inputs: vec![input],
                    next_inputs,
                    is_bottom: is_bottom_output(version, level + 1),
                });
            }
        }
    }
    None
}

/// Advance the round-robin cursor for `task`'s source level, using the
/// pre-apply `version` (the structure the task was picked from). L0 has no
/// cursor; a task that consumed the level's last table wraps to 0.
pub fn advance_cursor(version: &Version, task: &CompactionTask, cursors: &mut [u64]) {
    if task.level == 0 || task.level >= cursors.len() {
        return;
    }
    let max = task
        .inputs
        .iter()
        .map(|t| t.meta.max_key)
        .max()
        .unwrap_or(0);
    let tables = &version.levels[task.level];
    let is_last = tables.last().map(|t| t.meta.max_key <= max).unwrap_or(true);
    cursors[task.level] = if is_last { 0 } else { max };
}

/// Tiering trigger: any level holding `runs_per_level` runs merges *all*
/// of them into one new run stacked on the next level (next-level runs are
/// not touched — that is the write-amplification saving).
fn pick_tiering(
    version: &Version,
    runs_per_level: usize,
    is_busy: &dyn Fn(&Arc<TableHandle>) -> bool,
) -> Option<CompactionTask> {
    for level in 0..version.levels.len() - 1 {
        // L0 and deeper levels share one trigger: the size ratio `T`.
        let trigger = runs_per_level;
        if version.levels[level].len() >= trigger {
            let inputs = version.levels[level].clone();
            if inputs.iter().any(is_busy) {
                continue; // this level is already being merged
            }
            // Tombstones drop only when nothing deeper can hold older
            // versions (the output level itself must be empty too, since we
            // do not merge with it).
            let is_bottom =
                version.levels[level + 1].is_empty() && is_bottom_output(version, level + 1);
            return Some(CompactionTask {
                level,
                inputs,
                next_inputs: Vec::new(),
                is_bottom,
            });
        }
    }
    None
}

/// True when `output_level` is (or will be) the deepest populated level, so
/// tombstones have nothing left to mask.
fn is_bottom_output(version: &Version, output_level: usize) -> bool {
    version
        .levels
        .iter()
        .skip(output_level + 1)
        .all(Vec::is_empty)
}

/// Outcome of a compaction run.
#[derive(Debug)]
pub struct CompactionResult {
    /// Newly written tables (for `task.level + 1`).
    pub outputs: Vec<Arc<TableHandle>>,
    /// Bytes read from inputs.
    pub bytes_read: u64,
    /// Bytes written to outputs.
    pub bytes_written: u64,
}

/// Execute `task`: merge inputs, write ≤-target-size output tables, record
/// the stage breakdown into `stats`. `next_file_no` supplies output names —
/// an atomic, so background workers can name outputs without holding the
/// tree lock for the duration of the merge. When observability is on,
/// `obs` brackets the run in a `compaction_begin` / `compaction_end` span
/// (begin carries the source level, end the input/output byte totals).
pub fn run_compaction(
    storage: &dyn Storage,
    task: &CompactionTask,
    opts: &Options,
    stats: &DbStats,
    next_file_no: &AtomicU64,
    cache: Option<Arc<EngineCache>>,
    obs: Option<&EngineObs>,
) -> Result<CompactionResult> {
    let total_start = Instant::now();
    let span = obs.map(|o| {
        let span = o.span();
        o.emit(EventKind::CompactionBegin, span, task.level as u64, 0);
        span
    });

    let sources: Vec<MergeSource> = task
        .inputs
        .iter()
        .chain(task.next_inputs.iter())
        // No-fill: a compaction sweep reads every input block exactly once;
        // letting it populate the cache would evict the hot read set in
        // favor of blocks whose tables are deleted when the merge commits.
        .map(|t| MergeSource::table_with(Arc::clone(&t.reader), false))
        .collect();
    let mut merge = MergeIter::new(sources);
    merge.seek_to_first();

    let mut outputs = Vec::new();
    let mut builder: Option<TableBuilder> = None;
    let mut retention = KeyRetention::new(task.is_bottom);
    let mut bytes_written = 0u64;
    let mut train_ns = 0u64;
    let mut model_write_ns = 0u64;

    let finish_builder = |b: TableBuilder,
                          outputs: &mut Vec<Arc<TableHandle>>,
                          bytes_written: &mut u64,
                          train_ns: &mut u64,
                          model_write_ns: &mut u64|
     -> Result<()> {
        if b.is_empty() {
            return Ok(());
        }
        let meta = b.finish()?;
        *bytes_written += meta.file_bytes;
        *train_ns += meta.train_ns;
        *model_write_ns += meta.model_write_ns;
        let reader = Arc::new(
            TableReader::open_with(storage, &meta.name, cache.clone())?
                .with_search_strategy(opts.search),
        );
        outputs.push(Arc::new(TableHandle { meta, reader }));
        Ok(())
    };

    while let Some(entry) = merge.next_entry()? {
        // Dedup: internal-key order puts the newest version of a user key
        // first; all later versions of the same key are obsolete here
        // (live snapshots read through their own pinned `Version`).
        if !retention.keep(&entry.key) {
            continue;
        }

        // Tiering keeps one table per run; leveling rotates at the
        // granularity target. (Retention emits one version per user key, so
        // a rotation boundary is always also a user-key boundary and sorted
        // runs stay non-overlapping.)
        let rotate = matches!(opts.compaction, CompactionPolicy::Leveling)
            && builder
                .as_ref()
                .is_some_and(|b| b.data_bytes() >= opts.sstable_target_bytes);
        if rotate {
            let full = builder.take().expect("non-empty builder");
            finish_builder(
                full,
                &mut outputs,
                &mut bytes_written,
                &mut train_ns,
                &mut model_write_ns,
            )?;
        }

        if builder.is_none() {
            let name = format!("{:06}.sst", next_file_no.fetch_add(1, Ordering::Relaxed));
            let file = storage.create(&name)?;
            builder = Some(TableBuilder::new(
                file,
                name,
                opts.index_for_level(task.level + 1),
                opts.value_width,
                opts.bloom_bits_for_level(task.level + 1),
            ));
        }
        let b = builder.as_mut().expect("builder just created");
        b.add(&entry)?;
    }
    if let Some(b) = builder.take() {
        finish_builder(
            b,
            &mut outputs,
            &mut bytes_written,
            &mut train_ns,
            &mut model_write_ns,
        )?;
    }

    let total_ns = total_start.elapsed().as_nanos() as u64;
    let bytes_read = task.input_bytes();
    stats.compactions.fetch_add(1, Ordering::Relaxed);
    stats
        .compact_total_ns
        .fetch_add(total_ns, Ordering::Relaxed);
    stats
        .compact_train_ns
        .fetch_add(train_ns, Ordering::Relaxed);
    stats
        .compact_model_write_ns
        .fetch_add(model_write_ns, Ordering::Relaxed);
    stats.compact_kv_io_ns.fetch_add(
        total_ns.saturating_sub(train_ns + model_write_ns),
        Ordering::Relaxed,
    );
    stats
        .compact_bytes_read
        .fetch_add(bytes_read, Ordering::Relaxed);
    stats
        .compact_bytes_written
        .fetch_add(bytes_written, Ordering::Relaxed);

    if let (Some(obs), Some(span)) = (obs, span) {
        obs.emit(EventKind::CompactionEnd, span, bytes_read, bytes_written);
    }

    Ok(CompactionResult {
        outputs,
        bytes_read,
        bytes_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::IndexChoice;
    use crate::types::Entry;
    use learned_index::IndexKind;
    use lsm_io::MemStorage;

    fn handle_with(storage: &MemStorage, name: &str, entries: Vec<Entry>) -> Arc<TableHandle> {
        let file = storage.create(name).unwrap();
        let mut b = TableBuilder::new(
            file,
            name.into(),
            IndexChoice::new(IndexKind::Pgm, 4),
            32,
            10,
        );
        for e in &entries {
            b.add(e).unwrap();
        }
        let meta = b.finish().unwrap();
        let reader = Arc::new(TableReader::open(storage, name).unwrap());
        Arc::new(TableHandle { meta, reader })
    }

    fn puts(range: std::ops::Range<u64>, seq: u64) -> Vec<Entry> {
        range
            .map(|k| Entry::put(k, seq, vec![k as u8; 4]))
            .collect()
    }

    #[test]
    fn l0_pressure_triggers_compaction() {
        let storage = MemStorage::new();
        let mut opts = Options::small_for_tests();
        opts.l0_compaction_trigger = 2;
        let mut v = Version::new(4);
        v.levels[0].push(handle_with(&storage, "a", puts(0..10, 5)));
        v.levels[0].push(handle_with(&storage, "b", puts(5..15, 3)));
        let task = pick_compaction(&v, &opts, &[0; 4]).expect("L0 compaction due");
        assert_eq!(task.level, 0);
        assert_eq!(task.inputs.len(), 2);
        assert!(task.is_bottom);
    }

    #[test]
    fn merge_keeps_newest_version() {
        let storage = MemStorage::new();
        let opts = Options::small_for_tests();
        let stats = DbStats::new();
        let newer = handle_with(&storage, "new", puts(0..10, 9));
        let older = handle_with(&storage, "old", puts(0..10, 1));
        let task = CompactionTask {
            level: 0,
            inputs: vec![newer, older],
            next_inputs: vec![],
            is_bottom: true,
        };
        let fno = AtomicU64::new(100);
        let result = run_compaction(&storage, &task, &opts, &stats, &fno, None, None).unwrap();
        assert_eq!(result.outputs.len(), 1);
        let out = &result.outputs[0];
        assert_eq!(out.meta.n, 10, "one survivor per key");
        assert_eq!(out.meta.max_seq, 9, "newest versions kept");
    }

    #[test]
    fn bottom_compaction_drops_tombstones() {
        let storage = MemStorage::new();
        let opts = Options::small_for_tests();
        let stats = DbStats::new();
        let entries = vec![
            Entry::put(0, 2, vec![0; 4]),
            Entry::put(1, 2, vec![1; 4]),
            Entry::tombstone(2, 8),
            Entry::put(3, 2, vec![3; 4]),
            Entry::put(4, 2, vec![4; 4]),
        ];
        let t = handle_with(&storage, "in", entries);
        let task = CompactionTask {
            level: 0,
            inputs: vec![t],
            next_inputs: vec![],
            is_bottom: true,
        };
        let fno = AtomicU64::new(200);
        let result = run_compaction(&storage, &task, &opts, &stats, &fno, None, None).unwrap();
        let out = &result.outputs[0];
        assert_eq!(out.meta.n, 4, "tombstone dropped at bottom");
        let got = out.reader.get(2, u64::MAX >> 8, &stats).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn non_bottom_compaction_keeps_tombstones() {
        let storage = MemStorage::new();
        let opts = Options::small_for_tests();
        let stats = DbStats::new();
        let t = handle_with(&storage, "in", vec![Entry::tombstone(7, 3)]);
        let task = CompactionTask {
            level: 0,
            inputs: vec![t],
            next_inputs: vec![],
            is_bottom: false,
        };
        let fno = AtomicU64::new(300);
        let result = run_compaction(&storage, &task, &opts, &stats, &fno, None, None).unwrap();
        assert_eq!(result.outputs[0].meta.n, 1, "tombstone must survive");
    }

    #[test]
    fn outputs_rotate_at_target_size() {
        let storage = MemStorage::new();
        let mut opts = Options::small_for_tests();
        opts.sstable_target_bytes = 2048;
        opts.value_width = 32;
        let stats = DbStats::new();
        let t = handle_with(&storage, "in", puts(0..200, 1));
        let task = CompactionTask {
            level: 0,
            inputs: vec![t],
            next_inputs: vec![],
            is_bottom: true,
        };
        let fno = AtomicU64::new(400);
        let result = run_compaction(&storage, &task, &opts, &stats, &fno, None, None).unwrap();
        assert!(result.outputs.len() > 1, "must split into multiple tables");
        let total: u64 = result.outputs.iter().map(|t| t.meta.n).sum();
        assert_eq!(total, 200);
        // Outputs are disjoint and ordered.
        for w in result.outputs.windows(2) {
            assert!(w[0].meta.max_key < w[1].meta.min_key);
        }
    }

    #[test]
    fn stats_record_breakdown() {
        let storage = MemStorage::new();
        let opts = Options::small_for_tests();
        let stats = DbStats::new();
        let t = handle_with(&storage, "in", puts(0..500, 1));
        let task = CompactionTask {
            level: 0,
            inputs: vec![t],
            next_inputs: vec![],
            is_bottom: true,
        };
        let fno = AtomicU64::new(500);
        run_compaction(&storage, &task, &opts, &stats, &fno, None, None).unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.compactions, 1);
        assert!(snap.compact_total_ns > 0);
        assert!(snap.compact_train_ns > 0);
        assert!(snap.compact_total_ns >= snap.compact_train_ns + snap.compact_model_write_ns);
        assert!(snap.compact_bytes_read > 0);
        assert!(snap.compact_bytes_written > 0);
    }
}
