//! Immutable sorted tables with pluggable (learned or fence-pointer)
//! indexes: the `LearnedIndexTable` of the paper's testbed (Figure 4).

pub mod builder;
pub mod format;
pub mod reader;

pub use builder::{TableBuilder, TableMeta};
pub use reader::{TableIter, TableReader};
