//! SSTable reader — the paper's `InternalGet` and `NewIter` interfaces.
//!
//! A point lookup is exactly the paper's four-stage pipeline (Table 1):
//! table locate (done by the caller), *prediction* (inner index + model),
//! *disk I/O* (one `pread` of the position boundary), and *binary search*
//! within the fetched range. Each stage is timed into [`DbStats`].

use std::sync::Arc;
use std::time::Instant;

use learned_index::{IndexKind, SearchBound, SegmentIndex};

use crate::bloom::BloomFilter;
use crate::cache::{BlockKey, EngineCache, TABLE_HANDLE_OVERHEAD};
use crate::options::SearchStrategy;
use crate::sstable::format::{self, Footer};
use crate::stats::DbStats;
use crate::types::{Entry, SeqNo};
use crate::{Error, Result};
use lsm_io::{RandomAccessFile, Storage};

/// Cache block granularity (matches the device model's 4 KiB blocks).
const CACHE_BLOCK: u64 = 4096;

/// An open, immutable SSTable.
pub struct TableReader {
    file: Arc<dyn RandomAccessFile>,
    name: String,
    n: usize,
    value_width: usize,
    entry_width: usize,
    min_key: u64,
    max_key: u64,
    index: Box<dyn SegmentIndex>,
    bloom: BloomFilter,
    cache: Option<Arc<EngineCache>>,
    /// Bytes charged against the cache budget while this handle is open
    /// (index model + bloom + fixed overhead); released on drop.
    pinned_bytes: usize,
    table_id: u64,
    search: SearchStrategy,
}

/// Process-unique table ids for cache keys.
fn next_table_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl std::fmt::Debug for TableReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableReader")
            .field("name", &self.name)
            .field("n", &self.n)
            .field("min_key", &self.min_key)
            .field("max_key", &self.max_key)
            .field("index_kind", &self.index.kind())
            .finish()
    }
}

impl TableReader {
    /// Open `name` from `storage`, loading index + bloom into memory.
    pub fn open(storage: &dyn Storage, name: &str) -> Result<Self> {
        Self::open_with(storage, name, None)
    }

    /// Open with an optional shared engine cache. Block reads go through
    /// the cache's block half; the handle's resident bytes (index model +
    /// bloom filter + fixed overhead) are charged against the shared
    /// budget as *pinned* for as long as the reader lives.
    pub fn open_with(
        storage: &dyn Storage,
        name: &str,
        cache: Option<Arc<EngineCache>>,
    ) -> Result<Self> {
        let file = storage.open_read(name)?;
        let len = file.len();
        if len < format::FOOTER_LEN as u64 {
            return Err(Error::Corruption(format!("{name}: too short ({len} B)")));
        }
        let mut fbuf = vec![0u8; format::FOOTER_LEN];
        file.read_exact_at(len - format::FOOTER_LEN as u64, &mut fbuf)?;
        let footer = Footer::decode(&fbuf)?;

        let mut ibuf = vec![0u8; footer.index_len as usize];
        file.read_exact_at(footer.index_off, &mut ibuf)?;
        let index = IndexKind::decode(&ibuf)?;
        if index.key_count() != footer.n as usize {
            return Err(Error::Corruption(format!(
                "{name}: index covers {} keys, footer says {}",
                index.key_count(),
                footer.n
            )));
        }

        let mut bbuf = vec![0u8; footer.bloom_len as usize];
        file.read_exact_at(footer.bloom_off, &mut bbuf)?;
        let bloom = BloomFilter::decode(&bbuf)
            .ok_or_else(|| Error::Corruption(format!("{name}: bad bloom payload")))?;

        let pinned_bytes = match &cache {
            Some(c) => {
                let bytes = index.size_bytes() + bloom.size_bytes() + TABLE_HANDLE_OVERHEAD;
                c.charge_table(bytes);
                bytes
            }
            None => 0,
        };
        Ok(Self {
            file,
            name: name.to_string(),
            n: footer.n as usize,
            value_width: footer.value_width as usize,
            entry_width: format::entry_width(footer.value_width as usize),
            min_key: footer.min_key,
            max_key: footer.max_key,
            index,
            bloom,
            cache,
            pinned_bytes,
            table_id: next_table_id(),
            search: SearchStrategy::Binary,
        })
    }

    /// Select the in-segment search strategy (builder style).
    pub fn with_search_strategy(mut self, search: SearchStrategy) -> Self {
        self.search = search;
        self
    }

    /// Process-unique id of this table (cache key component).
    pub fn table_id(&self) -> u64 {
        self.table_id
    }

    /// Table file name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Smallest user key.
    pub fn min_key(&self) -> u64 {
        self.min_key
    }

    /// Largest user key.
    pub fn max_key(&self) -> u64 {
        self.max_key
    }

    /// In-memory index size (the memory axis of the figures).
    pub fn index_bytes(&self) -> usize {
        self.index.size_bytes()
    }

    /// Bloom filter size in memory.
    pub fn bloom_bytes(&self) -> usize {
        self.bloom.size_bytes()
    }

    /// Index kind in use.
    pub fn index_kind(&self) -> IndexKind {
        self.index.kind()
    }

    /// The index itself (ablation benches swap predictions).
    pub fn index(&self) -> &dyn SegmentIndex {
        self.index.as_ref()
    }

    /// Width of one on-disk entry.
    pub fn entry_width(&self) -> usize {
        self.entry_width
    }

    /// Point lookup.
    ///
    /// * `Ok(None)` — key not in this table (search deeper).
    /// * `Ok(Some(None))` — tombstone visible at `snapshot` (stop searching).
    /// * `Ok(Some(Some(value)))` — live value.
    pub fn get(
        &self,
        key: u64,
        snapshot: SeqNo,
        stats: &DbStats,
    ) -> Result<Option<Option<Vec<u8>>>> {
        self.get_opts(key, snapshot, stats, true)
    }

    /// [`TableReader::get`] with an explicit block-cache fill policy: when
    /// `fill_cache` is false, blocks fetched for this lookup are served from
    /// the cache if present but never inserted into it
    /// (`ReadOptions::fill_cache`).
    pub fn get_opts(
        &self,
        key: u64,
        snapshot: SeqNo,
        stats: &DbStats,
        fill_cache: bool,
    ) -> Result<Option<Option<Vec<u8>>>> {
        if self.n == 0 || key < self.min_key || key > self.max_key {
            return Ok(None);
        }
        stats
            .bloom_checks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if !self.bloom.may_contain(key) {
            stats
                .bloom_negatives
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(None);
        }

        // Stage: prediction (inner index + model).
        let t = Instant::now();
        let bound = self.index.predict(key);
        stats.add_predict_ns(t.elapsed().as_nanos() as u64);
        if bound.is_empty() {
            return Ok(None);
        }

        // Stage: disk I/O — one pread of the position boundary.
        let t = Instant::now();
        let buf = self.read_positions_opts(bound, fill_cache)?;
        stats.add_io_cpu_ns(t.elapsed().as_nanos() as u64);

        // Stage: binary search within the fetched range.
        let t = Instant::now();
        let result = self.search_buffer(&buf, bound, key, snapshot)?;
        stats.add_search_ns(t.elapsed().as_nanos() as u64);
        Ok(result)
    }

    /// Point lookup constrained to positions `[lo, hi)` — used by
    /// level-grained models that predict a range themselves and bypass the
    /// table's own index (Bourbon's `LevelModel`, paper Section 5.2). Stage
    /// timings for I/O and search are still recorded.
    pub fn get_in_positions(
        &self,
        key: u64,
        lo: usize,
        hi: usize,
        snapshot: SeqNo,
        stats: &DbStats,
    ) -> Result<Option<Option<Vec<u8>>>> {
        let bound = SearchBound {
            lo: lo.min(self.n),
            hi: hi.min(self.n),
        };
        if bound.is_empty() {
            return Ok(None);
        }
        let t = Instant::now();
        let buf = self.read_positions_opts(bound, true)?;
        stats.add_io_cpu_ns(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        let result = self.search_buffer(&buf, bound, key, snapshot)?;
        stats.add_search_ns(t.elapsed().as_nanos() as u64);
        Ok(result)
    }

    /// Read entries `[bound.lo, bound.hi)` in one positional read, through
    /// the block cache when one is attached, honouring `fill_cache`: a
    /// no-fill read is served from the cache when the blocks are resident
    /// but never inserts, so scans and compactions cannot evict the
    /// point-lookup working set.
    fn read_positions_opts(&self, bound: SearchBound, fill_cache: bool) -> Result<Vec<u8>> {
        let lo_byte = (bound.lo * self.entry_width) as u64;
        let len = (bound.hi - bound.lo) * self.entry_width;
        match &self.cache {
            None => {
                let mut buf = vec![0u8; len];
                self.file.read_exact_at(lo_byte, &mut buf)?;
                Ok(buf)
            }
            Some(cache) => self.read_span_cached(cache, lo_byte, len, fill_cache),
        }
    }

    /// Assemble `[off, off+len)` from cached 4 KiB blocks, loading misses
    /// from the device (inserted into the cache only when `fill_cache`).
    fn read_span_cached(
        &self,
        cache: &Arc<EngineCache>,
        off: u64,
        len: usize,
        fill_cache: bool,
    ) -> Result<Vec<u8>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let file_len = self.file.len();
        let first = off / CACHE_BLOCK;
        let last = (off + len as u64 - 1) / CACHE_BLOCK;
        let mut out = vec![0u8; len];
        for b in first..=last {
            let key = BlockKey {
                table_id: self.table_id,
                block_no: b,
            };
            let block = match cache.blocks().get(key) {
                Some(block) => block,
                None => {
                    let start = b * CACHE_BLOCK;
                    let blen = (CACHE_BLOCK).min(file_len.saturating_sub(start)) as usize;
                    let mut buf = vec![0u8; blen];
                    self.file.read_exact_at(start, &mut buf)?;
                    let block = Arc::new(buf);
                    if fill_cache {
                        cache.blocks().insert(key, Arc::clone(&block));
                    }
                    block
                }
            };
            // Copy this block's overlap with the requested span.
            let block_start = b * CACHE_BLOCK;
            let copy_from = off.max(block_start);
            let copy_to = (off + len as u64).min(block_start + block.len() as u64);
            if copy_from < copy_to {
                let src = (copy_from - block_start) as usize..(copy_to - block_start) as usize;
                let dst = (copy_from - off) as usize..(copy_to - off) as usize;
                out[dst].copy_from_slice(&block[src]);
            }
        }
        Ok(out)
    }

    /// Lower-bound position of `key` within the fetched buffer of `count`
    /// fixed-width entries, using the configured strategy.
    fn lower_bound_in(&self, buf: &[u8], count: usize, key: u64) -> usize {
        let key_at = |i: usize| format::decode_entry_key(&buf[i * self.entry_width..]);
        match self.search {
            SearchStrategy::Binary => {
                let mut lo = 0usize;
                let mut hi = count;
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if key_at(mid) < key {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
            SearchStrategy::Exponential => {
                // Gallop outward from the centre (the model's prediction sits
                // at the centre of the fetched boundary by construction).
                if count == 0 {
                    return 0;
                }
                let start = count / 2;
                let (mut lo, mut hi);
                if key_at(start) < key {
                    // Bracket to the right: [start+step/2, start+step].
                    let mut step = 1usize;
                    while start + step < count && key_at(start + step) < key {
                        step *= 2;
                    }
                    lo = start + step / 2;
                    hi = (start + step + 1).min(count);
                } else {
                    // Bracket to the left.
                    let mut step = 1usize;
                    while step <= start && key_at(start - step) >= key {
                        step *= 2;
                    }
                    lo = start.saturating_sub(step);
                    hi = start + 1;
                }
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if key_at(mid) < key {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
        }
    }

    /// Search the fetched fixed-width entries for `key`.
    fn search_buffer(
        &self,
        buf: &[u8],
        bound: SearchBound,
        key: u64,
        snapshot: SeqNo,
    ) -> Result<Option<Option<Vec<u8>>>> {
        let count = bound.hi - bound.lo;
        let lo = self.lower_bound_in(buf, count, key);
        if lo >= count {
            return Ok(None);
        }
        let off = lo * self.entry_width;
        let k = format::decode_entry_key(&buf[off..]);
        if k != key {
            return Ok(None);
        }
        let entry = format::decode_entry(&buf[off..], self.value_width)?;
        if entry.key.seq > snapshot {
            // The only version in this table is newer than the snapshot.
            return Ok(None);
        }
        Ok(Some(match entry.key.kind {
            crate::types::EntryKind::Put => Some(entry.value),
            crate::types::EntryKind::Delete => None,
        }))
    }

    /// Position of the first entry with user key ≥ `key` (= `n` if none),
    /// resolved with one index prediction + one bounded read.
    pub fn seek_position(&self, key: u64) -> Result<usize> {
        self.seek_position_opts(key, true)
    }

    /// [`TableReader::seek_position`] with an explicit cache fill policy.
    pub fn seek_position_opts(&self, key: u64, fill_cache: bool) -> Result<usize> {
        if self.n == 0 || key <= self.min_key {
            return Ok(0);
        }
        if key > self.max_key {
            return Ok(self.n);
        }
        let bound = self.index.predict(key);
        let buf = self.read_positions_opts(bound, fill_cache)?;
        let count = bound.hi - bound.lo;
        let lo = self.lower_bound_in(buf.as_slice(), count, key);
        let mut pos = bound.lo + lo;
        // The learned bound contains the insertion point for absent keys at
        // its edge in rare rounding cases; walk forward defensively.
        if lo == count {
            while pos < self.n && self.key_at(pos)? < key {
                pos += 1;
            }
        }
        Ok(pos)
    }

    /// Read the user key of the entry at `pos` (one small read).
    pub fn key_at(&self, pos: usize) -> Result<u64> {
        debug_assert!(pos < self.n);
        let mut kb = [0u8; lsm_workloads::KEY_LEN];
        self.file
            .read_exact_at((pos * self.entry_width) as u64, &mut kb)?;
        Ok(format::decode_entry_key(&kb))
    }

    /// Read the full entry at `pos`.
    pub fn entry_at(&self, pos: usize) -> Result<Entry> {
        let mut buf = vec![0u8; self.entry_width];
        self.file
            .read_exact_at((pos * self.entry_width) as u64, &mut buf)?;
        format::decode_entry(&buf, self.value_width)
    }

    /// Read entries `[lo, hi)` with one pread (compaction / range scans).
    pub fn entries_in(&self, lo: usize, hi: usize) -> Result<Vec<Entry>> {
        self.entries_in_opts(lo, hi, true)
    }

    /// [`TableReader::entries_in`] with an explicit cache fill policy —
    /// compaction inputs and opt-out scans read with `fill_cache = false`.
    pub fn entries_in_opts(&self, lo: usize, hi: usize, fill_cache: bool) -> Result<Vec<Entry>> {
        let hi = hi.min(self.n);
        if lo >= hi {
            return Ok(Vec::new());
        }
        let buf = self.read_positions_opts(SearchBound { lo, hi }, fill_cache)?;
        let mut out = Vec::with_capacity(hi - lo);
        for i in 0..hi - lo {
            out.push(format::decode_entry(
                &buf[i * self.entry_width..],
                self.value_width,
            )?);
        }
        Ok(out)
    }

    /// All user keys, read sequentially (used to train level-grained
    /// models). A one-shot full-table sweep: it never fills the block
    /// cache — training a model must not evict the read working set.
    pub fn read_all_keys(&self) -> Result<Vec<u64>> {
        let mut keys = Vec::with_capacity(self.n);
        const CHUNK_ENTRIES: usize = 4096;
        let mut pos = 0usize;
        while pos < self.n {
            let hi = (pos + CHUNK_ENTRIES).min(self.n);
            let buf = self.read_positions_opts(SearchBound { lo: pos, hi }, false)?;
            for i in 0..hi - pos {
                keys.push(format::decode_entry_key(&buf[i * self.entry_width..]));
            }
            pos = hi;
        }
        Ok(keys)
    }
}

impl Drop for TableReader {
    fn drop(&mut self) {
        if let Some(cache) = &self.cache {
            cache.release_table(self.pinned_bytes);
        }
    }
}

/// Sequential cursor over one table, fetching one I/O block's worth of
/// entries at a time (the paper's range-lookup implementation reads one
/// 4096-byte block per step).
pub struct TableIter {
    reader: Arc<TableReader>,
    pos: usize,
    chunk: Vec<Entry>,
    chunk_start: usize,
    /// Entries fetched per refill.
    chunk_entries: usize,
    /// Whether this cursor's reads may populate the block cache
    /// (`ReadOptions::fill_cache`; compaction inputs always read no-fill).
    fill_cache: bool,
}

impl TableIter {
    /// New iterator positioned before the first entry (cache-filling).
    pub fn new(reader: Arc<TableReader>) -> Self {
        Self::with_fill(reader, true)
    }

    /// New iterator with an explicit cache fill policy.
    pub fn with_fill(reader: Arc<TableReader>, fill_cache: bool) -> Self {
        let chunk_entries = (4096 / reader.entry_width).max(1);
        Self {
            reader,
            pos: 0,
            chunk: Vec::new(),
            chunk_start: 0,
            chunk_entries,
            fill_cache,
        }
    }

    /// Position at the first entry with user key ≥ `key`.
    pub fn seek(&mut self, key: u64) -> Result<()> {
        self.pos = self.reader.seek_position_opts(key, self.fill_cache)?;
        self.chunk.clear();
        Ok(())
    }

    /// Position at the first entry.
    pub fn seek_to_first(&mut self) {
        self.pos = 0;
        self.chunk.clear();
    }

    /// Current entry, refilling the block buffer as needed; `None` at EOF.
    pub fn current(&mut self) -> Result<Option<&Entry>> {
        if self.pos >= self.reader.len() {
            return Ok(None);
        }
        let in_chunk = self.pos.wrapping_sub(self.chunk_start);
        if self.chunk.is_empty() || in_chunk >= self.chunk.len() {
            let hi = (self.pos + self.chunk_entries).min(self.reader.len());
            self.chunk = self.reader.entries_in_opts(self.pos, hi, self.fill_cache)?;
            self.chunk_start = self.pos;
        }
        Ok(self.chunk.get(self.pos - self.chunk_start))
    }

    /// Advance one entry.
    pub fn advance(&mut self) {
        self.pos += 1;
    }

    /// Entries remaining from the current position.
    pub fn remaining(&self) -> usize {
        self.reader.len().saturating_sub(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::IndexChoice;
    use crate::sstable::builder::TableBuilder;
    use lsm_io::MemStorage;

    fn make_table(keys: &[u64], kind: IndexKind) -> (MemStorage, Arc<TableReader>) {
        let storage = MemStorage::new();
        let file = storage.create("t.sst").unwrap();
        let mut b = TableBuilder::new(file, "t.sst".into(), IndexChoice::new(kind, 8), 24, 10);
        for (i, &k) in keys.iter().enumerate() {
            let v = format!("val-{k}");
            b.add(&Entry::put(k, i as u64 + 1, v.into_bytes())).unwrap();
        }
        b.finish().unwrap();
        let reader = Arc::new(TableReader::open(&storage, "t.sst").unwrap());
        (storage, reader)
    }

    #[test]
    fn get_finds_every_key_for_every_index_kind() {
        let keys: Vec<u64> = (0..2_000u64).map(|i| i * 7 + 1).collect();
        for kind in IndexKind::ALL {
            let (_s, r) = make_table(&keys, kind);
            let stats = DbStats::new();
            for &k in keys.iter().step_by(13) {
                let got = r.get(k, u64::MAX >> 8, &stats).unwrap();
                assert_eq!(
                    got,
                    Some(Some(format!("val-{k}").into_bytes())),
                    "{kind} key={k}"
                );
            }
            // Absent keys.
            assert_eq!(r.get(3, u64::MAX >> 8, &stats).unwrap(), None, "{kind}");
            assert_eq!(
                r.get(1_000_000, u64::MAX >> 8, &stats).unwrap(),
                None,
                "{kind}"
            );
        }
    }

    #[test]
    fn snapshot_hides_newer_version() {
        let keys = [10u64, 20, 30];
        let (_s, r) = make_table(&keys, IndexKind::Plr);
        let stats = DbStats::new();
        // Entries were written with seq = pos + 1.
        assert_eq!(r.get(20, 1, &stats).unwrap(), None, "seq 2 > snapshot 1");
        assert!(r.get(20, 2, &stats).unwrap().is_some());
    }

    #[test]
    fn tombstones_visible() {
        let storage = MemStorage::new();
        let file = storage.create("t").unwrap();
        let mut b = TableBuilder::new(file, "t".into(), IndexChoice::default(), 16, 10);
        b.add(&Entry::put(1, 5, b"a".to_vec())).unwrap();
        b.add(&Entry::tombstone(2, 6)).unwrap();
        b.finish().unwrap();
        let r = TableReader::open(&storage, "t").unwrap();
        let stats = DbStats::new();
        assert_eq!(r.get(2, u64::MAX >> 8, &stats).unwrap(), Some(None));
        assert_eq!(
            r.get(1, u64::MAX >> 8, &stats).unwrap(),
            Some(Some(b"a".to_vec()))
        );
    }

    #[test]
    fn seek_position_matches_partition_point() {
        let keys: Vec<u64> = (0..3_000u64).map(|i| i * 10).collect();
        for kind in [IndexKind::Pgm, IndexKind::FencePointers, IndexKind::Rmi] {
            let (_s, r) = make_table(&keys, kind);
            for probe in [0u64, 5, 10, 29_990, 29_995, 30_000, 123_456] {
                let want = keys.partition_point(|&k| k < probe);
                assert_eq!(
                    r.seek_position(probe).unwrap(),
                    want,
                    "{kind} probe={probe}"
                );
            }
        }
    }

    #[test]
    fn iterator_scans_in_order() {
        let keys: Vec<u64> = (0..500u64).map(|i| i * 3).collect();
        let (_s, r) = make_table(&keys, IndexKind::RadixSpline);
        let mut it = TableIter::new(r);
        it.seek_to_first();
        let mut seen = Vec::new();
        while let Some(e) = it.current().unwrap() {
            seen.push(e.key.user_key);
            it.advance();
        }
        assert_eq!(seen, keys);
    }

    #[test]
    fn iterator_seek_mid_stream() {
        let keys: Vec<u64> = (0..500u64).map(|i| i * 3).collect();
        let (_s, r) = make_table(&keys, IndexKind::Plex);
        let mut it = TableIter::new(r);
        it.seek(100).unwrap(); // between 99 and 102
        let first = it.current().unwrap().unwrap().key.user_key;
        assert_eq!(first, 102);
        assert_eq!(it.remaining(), 500 - 34);
    }

    #[test]
    fn read_all_keys_roundtrip() {
        let keys: Vec<u64> = (0..5_000u64).map(|i| i * 13 + 5).collect();
        let (_s, r) = make_table(&keys, IndexKind::Pgm);
        assert_eq!(r.read_all_keys().unwrap(), keys);
    }

    #[test]
    fn corrupt_file_rejected() {
        let storage = MemStorage::new();
        let mut f = storage.create("bad").unwrap();
        f.append(&[0u8; 50]).unwrap();
        drop(f);
        assert!(TableReader::open(&storage, "bad").is_err());
    }
}
