//! SSTable builder — the paper's `BuildTable` interface.
//!
//! Receives key-sorted, deduplicated entries (from a flush or compaction
//! merge), streams the fixed-width data section to storage, then *trains the
//! index over the buffered keys*, serializes it, appends the Bloom filter and
//! footer. Training and model-write durations are recorded separately
//! because Figure 9 breaks compaction time into exactly those stages.

use std::time::Instant;

use learned_index::IndexKind;

use crate::bloom::BloomFilter;
use crate::options::IndexChoice;
use crate::sstable::format::{self, Footer};
use crate::types::{Entry, SeqNo};
use crate::{Error, Result};
use lsm_io::WritableFile;

/// Everything the engine needs to know about a finished table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Storage file name.
    pub name: String,
    /// Entry count.
    pub n: u64,
    /// Smallest / largest user key.
    pub min_key: u64,
    pub max_key: u64,
    /// Largest sequence number contained.
    pub max_seq: SeqNo,
    /// Total file bytes.
    pub file_bytes: u64,
    /// In-memory size of the table's index structure.
    pub index_bytes: usize,
    /// Serialized index payload bytes on disk.
    pub index_payload_bytes: usize,
    /// Bloom filter bytes.
    pub bloom_bytes: usize,
    /// Index kind used.
    pub index_kind: IndexKind,
    /// Nanoseconds spent training the index model.
    pub train_ns: u64,
    /// Nanoseconds spent serializing + appending the model.
    pub model_write_ns: u64,
}

/// Streaming builder for one SSTable.
pub struct TableBuilder {
    file: Box<dyn WritableFile>,
    name: String,
    index: IndexChoice,
    value_width: usize,
    bloom_bits_per_key: usize,
    keys: Vec<u64>,
    buf: Vec<u8>,
    max_seq: SeqNo,
    last_key: Option<u64>,
}

/// Flush the write buffer to the file once it exceeds this size.
const WRITE_CHUNK: usize = 1 << 20;

impl TableBuilder {
    /// Start building `name` on `file`.
    pub fn new(
        file: Box<dyn WritableFile>,
        name: String,
        index: IndexChoice,
        value_width: usize,
        bloom_bits_per_key: usize,
    ) -> Self {
        Self {
            file,
            name,
            index,
            value_width,
            bloom_bits_per_key,
            keys: Vec::new(),
            buf: Vec::with_capacity(WRITE_CHUNK + 4096),
            max_seq: 0,
            last_key: None,
        }
    }

    /// Append one entry. Entries must arrive in strictly increasing user-key
    /// order (the caller deduplicates versions).
    pub fn add(&mut self, e: &Entry) -> Result<()> {
        if let Some(last) = self.last_key {
            if e.key.user_key <= last {
                return Err(Error::Corruption(format!(
                    "out-of-order key {} after {last}",
                    e.key.user_key
                )));
            }
        }
        if e.value.len() > self.value_width {
            return Err(Error::Corruption(format!(
                "value of {} bytes exceeds table slot {}",
                e.value.len(),
                self.value_width
            )));
        }
        self.last_key = Some(e.key.user_key);
        self.keys.push(e.key.user_key);
        self.max_seq = self.max_seq.max(e.key.seq);
        format::encode_entry(&mut self.buf, e, self.value_width);
        if self.buf.len() >= WRITE_CHUNK {
            self.file.append(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Number of entries added so far.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Estimated file size so far (data section only).
    pub fn data_bytes(&self) -> u64 {
        (self.keys.len() * format::entry_width(self.value_width)) as u64
    }

    /// Train the index, write index + bloom + footer, and return the meta.
    pub fn finish(mut self) -> Result<TableMeta> {
        if !self.buf.is_empty() {
            self.file.append(&self.buf)?;
            self.buf.clear();
        }
        let data_len = self.data_bytes();

        // --- train (Figure 9 "Learn" stage) ---
        let t0 = Instant::now();
        let index = self.index.kind.build(&self.keys, &self.index.config);
        let train_ns = t0.elapsed().as_nanos() as u64;

        // --- serialize + append model (Figure 9 "Write Model" stage) ---
        let t1 = Instant::now();
        let payload = index.encode();
        self.file.append(&payload)?;
        let model_write_ns = t1.elapsed().as_nanos() as u64;

        // --- bloom ---
        let bloom = BloomFilter::build(&self.keys, self.bloom_bits_per_key);
        let mut bloom_buf = Vec::with_capacity(bloom.size_bytes() + 8);
        bloom.encode_into(&mut bloom_buf);
        self.file.append(&bloom_buf)?;

        // --- footer ---
        let footer = Footer {
            n: self.keys.len() as u64,
            value_width: self.value_width as u32,
            index_off: data_len,
            index_len: payload.len() as u64,
            bloom_off: data_len + payload.len() as u64,
            bloom_len: bloom_buf.len() as u64,
            min_key: self.keys.first().copied().unwrap_or(0),
            max_key: self.keys.last().copied().unwrap_or(0),
            max_seq: self.max_seq,
        };
        let mut fbuf = Vec::with_capacity(format::FOOTER_LEN);
        footer.encode_into(&mut fbuf);
        self.file.append(&fbuf)?;
        self.file.sync()?;

        Ok(TableMeta {
            name: self.name,
            n: footer.n,
            min_key: footer.min_key,
            max_key: footer.max_key,
            max_seq: footer.max_seq,
            file_bytes: self.file.written(),
            index_bytes: index.size_bytes(),
            index_payload_bytes: payload.len(),
            bloom_bytes: bloom_buf.len(),
            index_kind: index.kind(),
            train_ns,
            model_write_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::IndexChoice;
    use lsm_io::{MemStorage, Storage};

    fn build_table(keys: &[u64], kind: IndexKind) -> (MemStorage, TableMeta) {
        let storage = MemStorage::new();
        let file = storage.create("000001.sst").unwrap();
        let mut b = TableBuilder::new(file, "000001.sst".into(), IndexChoice::new(kind, 8), 32, 10);
        for (i, &k) in keys.iter().enumerate() {
            b.add(&Entry::put(k, i as u64 + 1, vec![b'x'; 10])).unwrap();
        }
        let meta = b.finish().unwrap();
        (storage, meta)
    }

    #[test]
    fn meta_reflects_contents() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 3 + 7).collect();
        let (storage, meta) = build_table(&keys, IndexKind::Pgm);
        assert_eq!(meta.n, 1000);
        assert_eq!(meta.min_key, 7);
        assert_eq!(meta.max_key, 999 * 3 + 7);
        assert_eq!(meta.max_seq, 1000);
        assert_eq!(meta.index_kind, IndexKind::Pgm);
        assert!(meta.train_ns > 0);
        assert_eq!(storage.size_of("000001.sst").unwrap(), meta.file_bytes);
        // data + index + bloom + footer
        let expected_min = 1000 * format::entry_width(32) as u64 + meta.index_payload_bytes as u64;
        assert!(meta.file_bytes > expected_min);
    }

    #[test]
    fn rejects_out_of_order_keys() {
        let storage = MemStorage::new();
        let file = storage.create("t").unwrap();
        let mut b = TableBuilder::new(file, "t".into(), IndexChoice::default(), 16, 10);
        b.add(&Entry::put(5, 1, vec![])).unwrap();
        assert!(b.add(&Entry::put(5, 2, vec![])).is_err(), "duplicate key");
        assert!(b.add(&Entry::put(4, 3, vec![])).is_err(), "descending key");
    }

    #[test]
    fn rejects_oversized_value() {
        let storage = MemStorage::new();
        let file = storage.create("t").unwrap();
        let mut b = TableBuilder::new(file, "t".into(), IndexChoice::default(), 4, 10);
        assert!(b.add(&Entry::put(1, 1, vec![0u8; 5])).is_err());
    }

    #[test]
    fn every_index_kind_builds() {
        let keys: Vec<u64> = (0..500u64).map(|i| i * 11).collect();
        for kind in IndexKind::ALL {
            let (_s, meta) = build_table(&keys, kind);
            assert_eq!(meta.index_kind, kind);
            assert!(meta.index_payload_bytes > 0, "{kind}");
        }
    }

    #[test]
    fn empty_table_finishes() {
        let storage = MemStorage::new();
        let file = storage.create("t").unwrap();
        let b = TableBuilder::new(file, "t".into(), IndexChoice::default(), 16, 10);
        let meta = b.finish().unwrap();
        assert_eq!(meta.n, 0);
    }
}
