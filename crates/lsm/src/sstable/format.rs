//! On-disk SSTable layout.
//!
//! ```text
//! ┌──────────────────────────────┐
//! │ entry 0 │ entry 1 │ ...      │  n fixed-width entries, key-sorted
//! ├──────────────────────────────┤
//! │ index payload                │  serialized SegmentIndex (any kind)
//! ├──────────────────────────────┤
//! │ bloom payload                │
//! ├──────────────────────────────┤
//! │ footer (fixed width)         │
//! └──────────────────────────────┘
//! ```
//!
//! Entries are *fixed width* — `[24 B key][1 B kind][7 B seq][4 B vlen]
//! [value_width B payload]` — so a learned model's position prediction maps
//! to a byte offset with one multiply. This is the data-clustered layout of
//! Section 3: physically continuous, sorted key-value pairs. Each table
//! holds at most one version per user key (compaction deduplicates), so the
//! key column is strictly increasing, which is what the index models train
//! on.

use crate::types::{Entry, EntryKind, InternalKey, SeqNo};
use crate::{Error, Result};
use lsm_workloads::{decode_key, encode_key, KEY_LEN};

/// Fixed entry header: key slot + kind + seq + value length.
pub const ENTRY_HEADER: usize = KEY_LEN + 1 + 7 + 4;

/// Footer magic ("LSMLRND1").
pub const MAGIC: u64 = 0x4C53_4D4C_524E_4431;

/// Fixed footer size in bytes.
pub const FOOTER_LEN: usize = 8 * 9 + 4;

/// Width of one on-disk entry for a table with `value_width`-byte value slots.
#[inline]
pub fn entry_width(value_width: usize) -> usize {
    ENTRY_HEADER + value_width
}

/// Serialize one entry into `out` (appends exactly `entry_width` bytes).
pub fn encode_entry(out: &mut Vec<u8>, e: &Entry, value_width: usize) {
    debug_assert!(e.value.len() <= value_width, "value exceeds table slot");
    out.extend_from_slice(&encode_key(e.key.user_key));
    out.push(e.key.kind.tag());
    let seq_bytes = e.key.seq.to_le_bytes();
    out.extend_from_slice(&seq_bytes[..7]);
    out.extend_from_slice(&(e.value.len() as u32).to_le_bytes());
    out.extend_from_slice(&e.value);
    out.resize(out.len() + (value_width - e.value.len()), 0);
}

/// Parse the entry at `buf[0..entry_width]`.
pub fn decode_entry(buf: &[u8], value_width: usize) -> Result<Entry> {
    if buf.len() < entry_width(value_width) {
        return Err(Error::Corruption("entry buffer too short".into()));
    }
    let user_key = decode_key(&buf[..KEY_LEN]);
    let kind = EntryKind::from_tag(buf[KEY_LEN])
        .ok_or_else(|| Error::Corruption(format!("bad entry kind {}", buf[KEY_LEN])))?;
    let mut seq_bytes = [0u8; 8];
    seq_bytes[..7].copy_from_slice(&buf[KEY_LEN + 1..KEY_LEN + 8]);
    let seq = SeqNo::from_le_bytes(seq_bytes);
    let vlen = u32::from_le_bytes(buf[KEY_LEN + 8..KEY_LEN + 12].try_into().unwrap()) as usize;
    if vlen > value_width {
        return Err(Error::Corruption(format!(
            "value length {vlen} exceeds slot {value_width}"
        )));
    }
    let value = buf[ENTRY_HEADER..ENTRY_HEADER + vlen].to_vec();
    Ok(Entry {
        key: InternalKey {
            user_key,
            seq,
            kind,
        },
        value,
    })
}

/// Read only the user key of the entry at `buf[0..]` (hot path of in-segment
/// binary search — avoids copying the value).
#[inline]
pub fn decode_entry_key(buf: &[u8]) -> u64 {
    decode_key(&buf[..KEY_LEN])
}

/// Table footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    pub n: u64,
    pub value_width: u32,
    pub index_off: u64,
    pub index_len: u64,
    pub bloom_off: u64,
    pub bloom_len: u64,
    pub min_key: u64,
    pub max_key: u64,
    pub max_seq: u64,
}

impl Footer {
    /// Serialize (fixed width, magic last).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.n.to_le_bytes());
        out.extend_from_slice(&self.value_width.to_le_bytes());
        out.extend_from_slice(&self.index_off.to_le_bytes());
        out.extend_from_slice(&self.index_len.to_le_bytes());
        out.extend_from_slice(&self.bloom_off.to_le_bytes());
        out.extend_from_slice(&self.bloom_len.to_le_bytes());
        out.extend_from_slice(&self.min_key.to_le_bytes());
        out.extend_from_slice(&self.max_key.to_le_bytes());
        out.extend_from_slice(&self.max_seq.to_le_bytes());
        out.extend_from_slice(&MAGIC.to_le_bytes());
    }

    /// Decode a `FOOTER_LEN`-byte buffer.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() != FOOTER_LEN {
            return Err(Error::Corruption(format!(
                "footer length {} != {FOOTER_LEN}",
                buf.len()
            )));
        }
        let u64_at = |i: usize| u64::from_le_bytes(buf[i..i + 8].try_into().unwrap());
        let magic = u64_at(FOOTER_LEN - 8);
        if magic != MAGIC {
            return Err(Error::Corruption(format!("bad magic {magic:#x}")));
        }
        Ok(Footer {
            n: u64_at(0),
            value_width: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            index_off: u64_at(12),
            index_len: u64_at(20),
            bloom_off: u64_at(28),
            bloom_len: u64_at(36),
            min_key: u64_at(44),
            max_key: u64_at(52),
            max_seq: u64_at(60),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_roundtrip() {
        let e = Entry::put(0xdead_beef, 42, b"hello".to_vec());
        let mut buf = Vec::new();
        encode_entry(&mut buf, &e, 16);
        assert_eq!(buf.len(), entry_width(16));
        let back = decode_entry(&buf, 16).unwrap();
        assert_eq!(back, e);
        assert_eq!(decode_entry_key(&buf), 0xdead_beef);
    }

    #[test]
    fn tombstone_roundtrip() {
        let e = Entry::tombstone(7, 9);
        let mut buf = Vec::new();
        encode_entry(&mut buf, &e, 8);
        let back = decode_entry(&buf, 8).unwrap();
        assert_eq!(back.key.kind, EntryKind::Delete);
        assert!(back.value.is_empty());
    }

    #[test]
    fn corrupt_entry_rejected() {
        assert!(decode_entry(&[0u8; 4], 16).is_err());
        let mut buf = Vec::new();
        encode_entry(&mut buf, &Entry::put(1, 1, vec![1, 2, 3]), 8);
        buf[KEY_LEN] = 9; // bad kind tag
        assert!(decode_entry(&buf, 8).is_err());
    }

    #[test]
    fn footer_roundtrip() {
        let f = Footer {
            n: 1000,
            value_width: 100,
            index_off: 36_000,
            index_len: 512,
            bloom_off: 36_512,
            bloom_len: 1300,
            min_key: 3,
            max_key: 999_999,
            max_seq: 1234,
        };
        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        assert_eq!(buf.len(), FOOTER_LEN);
        assert_eq!(Footer::decode(&buf).unwrap(), f);
    }

    #[test]
    fn footer_rejects_bad_magic() {
        let f = Footer {
            n: 1,
            value_width: 1,
            index_off: 0,
            index_len: 0,
            bloom_off: 0,
            bloom_len: 0,
            min_key: 0,
            max_key: 0,
            max_seq: 0,
        };
        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        buf[FOOTER_LEN - 1] ^= 0xff;
        assert!(Footer::decode(&buf).is_err());
        assert!(Footer::decode(&buf[..10]).is_err());
    }

    #[test]
    fn large_seq_survives_7_byte_encoding() {
        let seq = (1u64 << 55) - 1;
        let e = Entry::put(1, seq, vec![]);
        let mut buf = Vec::new();
        encode_entry(&mut buf, &e, 4);
        assert_eq!(decode_entry(&buf, 4).unwrap().key.seq, seq);
    }
}
