//! Write-ahead log: durability for the memtable, with group commit.
//!
//! LevelDB logs every write before applying it to the memtable so that a
//! crash loses nothing. Since the `WriteBatch` redesign the unit of logging
//! is the **batch**: one CRC-framed record per [`crate::WriteBatch`], no
//! matter how many operations it carries, which is what makes batched
//! writes cheap (one frame, one CRC pass, one storage append) and atomic
//! (a torn or corrupt tail drops the *whole* batch on replay — never a
//! prefix of it). One log file exists per memtable generation — a flush
//! seals the table and retires the log.
//!
//! Record layout (little-endian):
//!
//! ```text
//! frame   = [crc32 u32][payload_len u32][payload]
//! payload = [format u8 = 1][first_seq u64][count u32] count × op
//!         | [format u8 = 2][first_seq u64][count u32]
//!           [global_first u64][global_last u64]
//!           [participant_count u16] participant_count × [shard u16]
//!           count × op                                   (cross-shard)
//! op      = [kind u8][user_key u64][value_len u32][value bytes]
//! ```
//!
//! Operation `i` of a record receives sequence number `first_seq + i`, so a
//! batch occupies one contiguous sequence range. The `format` byte versions
//! the payload encoding; replay rejects formats it does not understand.
//!
//! Format 2 is the **cross-shard prepare record**: the fragment of a
//! multi-shard batch that landed on this shard, tagged with the batch's
//! *global* sequence range and the set of participant shards. A prepare
//! record is not self-certifying — whether it replays is decided by the
//! recovery coordinator against the per-database `COMMIT` marker log (see
//! [`crate::sharding`]): marker present → the batch committed everywhere,
//! apply; marker absent → the commit never sealed, suppress the fragment.
//! Format-1 records always apply (single-shard commits are sealed by their
//! own frame CRC).

use crate::batch::BatchOp;
use crate::types::{Entry, EntryKind, InternalKey, SeqNo};
use crate::{Error, Result};
use lsm_io::{Storage, WritableFile};

/// WAL payload format for plain (single-shard) batches.
pub const BATCH_FORMAT: u8 = 1;

/// WAL payload format for cross-shard prepare records.
pub const CROSS_BATCH_FORMAT: u8 = 2;

/// Fixed bytes of a batch payload before its operations.
const BATCH_HEADER: usize = 1 + 8 + 4;

/// Extra fixed bytes of a cross-shard payload before its participant list.
const CROSS_HEADER: usize = 8 + 8 + 2;

/// The cross-shard identity of a prepare record: which global batch this
/// fragment belongs to and which shards participate in it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossBatchTag {
    /// First sequence number of the *whole* batch (across all shards).
    pub global_first: SeqNo,
    /// Last sequence number of the whole batch.
    pub global_last: SeqNo,
    /// **Stable shard ids** (the numbers in `shard-<id>/` directory
    /// names) the batch touches, sorted and unique. Stable ids — not
    /// routing positions — because the routing topology can change
    /// between the prepare and its recovery (a live split shifts
    /// positions around), while a shard's id and directory never move.
    pub participants: Vec<u16>,
}

/// One decoded WAL record: the fragment's entries plus, for cross-shard
/// prepare records, the tag the recovery coordinator resolves against the
/// commit-marker log.
#[derive(Debug, Clone)]
pub struct ReplayedRecord {
    pub entries: Vec<Entry>,
    pub cross: Option<CrossBatchTag>,
}

/// Fixed bytes of one operation before its value payload.
const OP_HEADER: usize = 1 + 8 + 4;

/// CRC-32 (IEEE) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Slicing-by-8 tables: `CRC32_TABLES[k][b]` is the CRC contribution of
/// byte `b` seen `k` positions before the end of an 8-byte window, so one
/// loop iteration digests 8 bytes with 8 independent table loads.
/// `CRC32_TABLES[0]` is the classic per-byte table above.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    tables[0] = CRC32_TABLE;
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ CRC32_TABLE[(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// CRC-32 (IEEE) over `data`, slicing-by-8 — this frames every record in
/// the commit leader's serial section (and re-checks them on replay), so
/// it digests 8 bytes per step instead of paying a per-byte dependency
/// chain. The tail shorter than 8 bytes falls back to the per-byte table.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        crc = CRC32_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC32_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[4][(lo >> 24) as usize]
            ^ CRC32_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC32_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Frame one record payload for a CRC-framed log:
/// `[crc32 u32][payload_len u32][payload]`. Shared by the WAL and the
/// sharding layer's commit-marker log so both encode (and therefore
/// crash-tear) identically.
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encode a batch's per-op region — `[kind u8][key u64][value_len u32]
/// [value]` per op, byte-identical to what [`WalWriter::append_batch`]
/// produces after the record header (ops carry no sequence numbers; replay
/// derives them from the header's `first_seq`). Writers pre-encode their
/// own batches with this *before* queueing, so the commit leader's serial
/// section only concatenates regions and CRC-frames
/// ([`WalWriter::append_encoded_group`]). An op whose value overflows the
/// u32 length prefix yields an oversized region the append's payload check
/// rejects before anything reaches the log.
pub(crate) fn encode_ops(ops: &[BatchOp]) -> Vec<u8> {
    let cap = ops
        .iter()
        .map(|op| OP_HEADER + op.value.len())
        .fold(0usize, usize::saturating_add);
    let mut out = Vec::with_capacity(cap.min(u32::MAX as usize));
    for op in ops {
        out.push(op.kind.tag());
        out.extend_from_slice(&op.key.to_le_bytes());
        out.extend_from_slice(&(op.value.len() as u32).to_le_bytes());
        out.extend_from_slice(&op.value);
    }
    out
}

/// Iterator over the **intact** frame payloads of a log byte stream. The
/// scan ends cleanly (no error, no item) at the first torn or CRC-corrupt
/// frame — a crash mid-append is expected, and everything behind the tear
/// is by definition unsealed. What an intact payload *means* is the
/// caller's business.
pub(crate) struct FrameIter<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.pos + 8 > self.data.len() {
            return None;
        }
        let crc = u32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().unwrap());
        let len =
            u32::from_le_bytes(self.data[self.pos + 4..self.pos + 8].try_into().unwrap()) as usize;
        let body_start = self.pos + 8;
        let body = self.data.get(body_start..body_start + len)?; // torn tail
        if crc32(body) != crc {
            return None; // corrupt tail
        }
        self.pos = body_start + len;
        Some(body)
    }
}

/// The intact frames of `data`, in append order.
pub(crate) fn intact_frames(data: &[u8]) -> FrameIter<'_> {
    FrameIter { data, pos: 0 }
}

/// Append side of the write-ahead log.
pub struct WalWriter {
    file: Box<dyn WritableFile>,
    name: String,
    buf: Vec<u8>,
}

impl WalWriter {
    /// Create a fresh log file named `name`.
    pub fn create(storage: &dyn Storage, name: &str) -> Result<WalWriter> {
        Ok(WalWriter {
            file: storage.create(name)?,
            name: name.to_string(),
            buf: Vec::with_capacity(512),
        })
    }

    /// Log file name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append one batch as a single framed record. Operation `i` is logged
    /// with sequence `first_seq + i`. Returns the framed bytes written.
    ///
    /// Fails with `Corruption` (before touching the log) when the batch
    /// exceeds the record format's u32 fields — silently wrapping the
    /// length prefixes would write an undecodable frame and lose every
    /// batch behind it on replay.
    pub fn append_batch(&mut self, first_seq: SeqNo, ops: &[BatchOp]) -> Result<u64> {
        self.append_batch_tagged(first_seq, ops, None)
    }

    /// [`WalWriter::append_batch`], optionally tagging the record as a
    /// cross-shard **prepare** (format 2): replay hands the tag to the
    /// recovery coordinator instead of applying the fragment
    /// unconditionally.
    pub fn append_batch_tagged(
        &mut self,
        first_seq: SeqNo,
        ops: &[BatchOp],
        cross: Option<&CrossBatchTag>,
    ) -> Result<u64> {
        self.append_slices(first_seq, &[ops], cross)
    }

    /// Append a whole **commit group** — several member batches — as one
    /// fused framed record (format 1). The pipelined group commit
    /// ([`crate::db`]) claims one contiguous sequence range for the queue
    /// and logs it with one frame, one CRC pass, one storage append; replay
    /// cannot tell a fused record from a single large batch, so recovery
    /// stays all-or-nothing per *group* — which is safe precisely because
    /// the visible ceiling is only published once the whole group applied.
    pub fn append_batch_group(&mut self, first_seq: SeqNo, groups: &[&[BatchOp]]) -> Result<u64> {
        self.append_slices(first_seq, groups, None)
    }

    /// [`WalWriter::append_batch_group`] over **pre-encoded** member
    /// regions (`encode_ops`): the commit leader only concatenates and
    /// CRC-frames here, because each writer encoded its own ops outside
    /// the lock — the per-op byte shuffling leaves the pipeline's serial
    /// section. `count` is the total op count across `parts` (the caller
    /// tracks it; encoded bytes don't carry it).
    pub fn append_encoded_group(
        &mut self,
        first_seq: SeqNo,
        count: usize,
        parts: &[&[u8]],
    ) -> Result<u64> {
        debug_assert!(count > 0, "empty batches are not logged");
        if count > u32::MAX as usize {
            return Err(Error::Corruption(format!(
                "wal batch of {count} ops exceeds the record format"
            )));
        }
        let payload: usize = BATCH_HEADER
            + parts
                .iter()
                .map(|p| p.len())
                .fold(0usize, usize::saturating_add);
        if payload > u32::MAX as usize {
            return Err(Error::Corruption(format!(
                "wal batch payload of {payload} bytes exceeds the record format"
            )));
        }
        self.buf.clear();
        self.buf.push(BATCH_FORMAT);
        self.buf.extend_from_slice(&first_seq.to_le_bytes());
        self.buf.extend_from_slice(&(count as u32).to_le_bytes());
        for p in parts {
            self.buf.extend_from_slice(p);
        }
        let framed = frame(&self.buf);
        self.file.append(&framed)?;
        Ok(framed.len() as u64)
    }

    /// Shared encoder: `slices` are concatenated in order, op `i` of the
    /// concatenation logged at `first_seq + i`.
    fn append_slices(
        &mut self,
        first_seq: SeqNo,
        slices: &[&[BatchOp]],
        cross: Option<&CrossBatchTag>,
    ) -> Result<u64> {
        let count: usize = slices
            .iter()
            .map(|s| s.len())
            .fold(0usize, usize::saturating_add);
        debug_assert!(count > 0, "empty batches are not logged");
        if count > u32::MAX as usize {
            return Err(Error::Corruption(format!(
                "wal batch of {count} ops exceeds the record format"
            )));
        }
        if cross.is_some_and(|t| t.participants.len() > u16::MAX as usize) {
            return Err(Error::Corruption(
                "wal cross-shard tag exceeds the record format".into(),
            ));
        }
        let header = BATCH_HEADER + cross.map_or(0, |t| CROSS_HEADER + 2 * t.participants.len());
        let payload: usize = header
            + slices
                .iter()
                .flat_map(|s| s.iter())
                .map(|op| {
                    if op.value.len() > u32::MAX as usize {
                        usize::MAX
                    } else {
                        OP_HEADER + op.value.len()
                    }
                })
                .fold(0usize, usize::saturating_add);
        if payload > u32::MAX as usize {
            return Err(Error::Corruption(format!(
                "wal batch payload of {payload} bytes exceeds the record format"
            )));
        }
        self.buf.clear();
        self.buf.push(if cross.is_some() {
            CROSS_BATCH_FORMAT
        } else {
            BATCH_FORMAT
        });
        self.buf.extend_from_slice(&first_seq.to_le_bytes());
        self.buf.extend_from_slice(&(count as u32).to_le_bytes());
        if let Some(tag) = cross {
            self.buf.extend_from_slice(&tag.global_first.to_le_bytes());
            self.buf.extend_from_slice(&tag.global_last.to_le_bytes());
            self.buf
                .extend_from_slice(&(tag.participants.len() as u16).to_le_bytes());
            for &shard in &tag.participants {
                self.buf.extend_from_slice(&shard.to_le_bytes());
            }
        }
        for op in slices.iter().flat_map(|s| s.iter()) {
            self.buf.push(op.kind.tag());
            self.buf.extend_from_slice(&op.key.to_le_bytes());
            self.buf
                .extend_from_slice(&(op.value.len() as u32).to_le_bytes());
            self.buf.extend_from_slice(&op.value);
        }

        let framed = frame(&self.buf);
        self.file.append(&framed)?;
        Ok(framed.len() as u64)
    }

    /// Append one single-operation record (convenience for tests).
    pub fn append(&mut self, key: u64, seq: SeqNo, kind: EntryKind, value: &[u8]) -> Result<()> {
        self.append_batch(
            seq,
            &[BatchOp {
                kind,
                key,
                value: value.to_vec(),
            }],
        )?;
        Ok(())
    }

    /// Flush the log to the storage medium.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync()?;
        Ok(())
    }

    /// Bytes appended so far.
    pub fn written(&self) -> u64 {
        self.file.written()
    }
}

/// Decode one intact batch payload into its entries and, for cross-shard
/// prepare records, its resolution tag.
fn decode_batch(body: &[u8]) -> Result<ReplayedRecord> {
    if body.len() < BATCH_HEADER {
        return Err(Error::Corruption(format!(
            "wal batch header too short: {}",
            body.len()
        )));
    }
    if body[0] != BATCH_FORMAT && body[0] != CROSS_BATCH_FORMAT {
        return Err(Error::Corruption(format!(
            "wal batch format {} unsupported (expected {BATCH_FORMAT} or {CROSS_BATCH_FORMAT})",
            body[0]
        )));
    }
    let first_seq = SeqNo::from_le_bytes(body[1..9].try_into().unwrap());
    let count = u32::from_le_bytes(body[9..13].try_into().unwrap()) as usize;
    if count == 0 {
        return Err(Error::Corruption("wal batch with zero operations".into()));
    }
    let mut pos = BATCH_HEADER;
    let cross = if body[0] == CROSS_BATCH_FORMAT {
        if body.len() < pos + CROSS_HEADER {
            return Err(Error::Corruption(format!(
                "wal cross-shard header too short: {}",
                body.len()
            )));
        }
        let global_first = SeqNo::from_le_bytes(body[pos..pos + 8].try_into().unwrap());
        let global_last = SeqNo::from_le_bytes(body[pos + 8..pos + 16].try_into().unwrap());
        let nparts = u16::from_le_bytes(body[pos + 16..pos + 18].try_into().unwrap()) as usize;
        pos += CROSS_HEADER;
        if body.len() < pos + 2 * nparts {
            return Err(Error::Corruption(format!(
                "wal cross-shard record claims {nparts} participants in a {}-byte record",
                body.len()
            )));
        }
        if global_last < global_first {
            return Err(Error::Corruption(format!(
                "wal cross-shard record with inverted range {global_first}..{global_last}"
            )));
        }
        let participants = (0..nparts)
            .map(|i| u16::from_le_bytes(body[pos + 2 * i..pos + 2 * i + 2].try_into().unwrap()))
            .collect();
        pos += 2 * nparts;
        Some(CrossBatchTag {
            global_first,
            global_last,
            participants,
        })
    } else {
        None
    };
    // Bound the claimed count by what the body could possibly hold before
    // allocating — a CRC-valid but malformed record must produce a clean
    // corruption error, not a giant allocation.
    if count > (body.len() - pos) / OP_HEADER {
        return Err(Error::Corruption(format!(
            "wal batch claims {count} ops in a {}-byte record",
            body.len()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        if pos + OP_HEADER > body.len() {
            return Err(Error::Corruption(format!(
                "wal batch truncated at op {i}/{count}"
            )));
        }
        let kind = EntryKind::from_tag(body[pos])
            .ok_or_else(|| Error::Corruption(format!("wal bad kind {}", body[pos])))?;
        let user_key = u64::from_le_bytes(body[pos + 1..pos + 9].try_into().unwrap());
        let vlen = u32::from_le_bytes(body[pos + 9..pos + 13].try_into().unwrap()) as usize;
        pos += OP_HEADER;
        if pos + vlen > body.len() {
            return Err(Error::Corruption(format!(
                "wal batch value overruns record at op {i}/{count}"
            )));
        }
        out.push(Entry {
            key: InternalKey {
                user_key,
                seq: first_seq + i as SeqNo,
                kind,
            },
            value: body[pos..pos + vlen].to_vec(),
        });
        pos += vlen;
    }
    if pos != body.len() {
        return Err(Error::Corruption(format!(
            "wal batch has {} trailing bytes",
            body.len() - pos
        )));
    }
    Ok(ReplayedRecord {
        entries: out,
        cross,
    })
}

/// Replay a log file into its records, batch-atomically.
///
/// Returns the decoded records in append order, each carrying its
/// cross-shard tag when present — recovery resolves tagged fragments
/// against the commit-marker log before applying them. A torn or
/// CRC-corrupt tail frame terminates the replay without error (a crash
/// mid-append is expected) and drops that frame's **entire batch** —
/// recovery never applies a batch prefix. A malformed payload *inside* an
/// intact frame is reported as corruption, since the CRC passing means
/// real damage.
pub fn replay_records(storage: &dyn Storage, name: &str) -> Result<Vec<ReplayedRecord>> {
    if !storage.exists(name) {
        return Ok(Vec::new());
    }
    let data = lsm_io::read_all(storage, name)?;
    intact_frames(&data).map(decode_batch).collect()
}

/// [`replay_records`] flattened to entries, applying every record
/// unconditionally — for callers outside the sharded recovery protocol
/// (and for tests).
pub fn replay(storage: &dyn Storage, name: &str) -> Result<Vec<Entry>> {
    Ok(replay_records(storage, name)?
        .into_iter()
        .flat_map(|r| r.entries)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_io::MemStorage;

    #[test]
    fn crc32_known_vectors() {
        // CRC-32/IEEE check values (see e.g. the reveng catalogue).
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
        assert_eq!(crc32(&[0xFFu8; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn crc32_table_matches_bitwise_reference() {
        fn bitwise(data: &[u8]) -> u32 {
            let mut crc: u32 = !0;
            for &b in data {
                crc ^= b as u32;
                for _ in 0..8 {
                    let mask = (crc & 1).wrapping_neg();
                    crc = (crc >> 1) ^ (0xEDB88320 & mask);
                }
            }
            !crc
        }
        let mut payload = Vec::new();
        for i in 0..1024u32 {
            payload.push((i.wrapping_mul(2654435761) >> 13) as u8);
        }
        for window in [0usize, 1, 7, 64, 1000, 1024] {
            assert_eq!(crc32(&payload[..window]), bitwise(&payload[..window]));
        }
    }

    #[test]
    fn append_replay_roundtrip() {
        let storage = MemStorage::new();
        let mut w = WalWriter::create(&storage, "wal").unwrap();
        w.append(7, 1, EntryKind::Put, b"seven").unwrap();
        w.append(8, 2, EntryKind::Delete, b"").unwrap();
        w.append(9, 3, EntryKind::Put, &[0xab; 100]).unwrap();
        w.sync().unwrap();
        drop(w);

        let entries = replay(&storage, "wal").unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].key.user_key, 7);
        assert_eq!(entries[0].value, b"seven");
        assert_eq!(entries[1].key.kind, EntryKind::Delete);
        assert_eq!(entries[2].value, vec![0xab; 100]);
        assert_eq!(entries[2].key.seq, 3);
    }

    #[test]
    fn batch_record_assigns_contiguous_seqs() {
        let storage = MemStorage::new();
        let mut w = WalWriter::create(&storage, "wal").unwrap();
        let ops = vec![
            BatchOp {
                kind: EntryKind::Put,
                key: 10,
                value: b"a".to_vec(),
            },
            BatchOp {
                kind: EntryKind::Delete,
                key: 11,
                value: vec![],
            },
            BatchOp {
                kind: EntryKind::Put,
                key: 12,
                value: b"c".to_vec(),
            },
        ];
        w.append_batch(40, &ops).unwrap();
        drop(w);
        let entries = replay(&storage, "wal").unwrap();
        let seqs: Vec<u64> = entries.iter().map(|e| e.key.seq).collect();
        assert_eq!(seqs, vec![40, 41, 42]);
        assert_eq!(entries[1].key.kind, EntryKind::Delete);
    }

    #[test]
    fn fused_group_record_is_one_frame_one_contiguous_range() {
        let storage = MemStorage::new();
        let mut w = WalWriter::create(&storage, "wal").unwrap();
        let a = vec![
            BatchOp {
                kind: EntryKind::Put,
                key: 1,
                value: b"a1".to_vec(),
            },
            BatchOp {
                kind: EntryKind::Delete,
                key: 2,
                value: vec![],
            },
        ];
        let b = vec![BatchOp {
            kind: EntryKind::Put,
            key: 3,
            value: b"b1".to_vec(),
        }];
        w.append_batch_group(20, &[&a, &b]).unwrap();
        drop(w);
        // One frame holding every member's ops, seqs contiguous across the
        // member boundary.
        let records = replay_records(&storage, "wal").unwrap();
        assert_eq!(records.len(), 1, "the group is one record");
        let seqs: Vec<u64> = records[0].entries.iter().map(|e| e.key.seq).collect();
        assert_eq!(seqs, vec![20, 21, 22]);
        assert_eq!(records[0].entries[2].key.user_key, 3);
        assert_eq!(records[0].cross, None, "fused groups are plain format 1");
    }

    #[test]
    fn torn_tail_drops_whole_batch_never_a_prefix() {
        let storage = MemStorage::new();
        let mut w = WalWriter::create(&storage, "wal").unwrap();
        w.append(1, 1, EntryKind::Put, b"full").unwrap();
        let ops: Vec<BatchOp> = (0..5u64)
            .map(|k| BatchOp {
                kind: EntryKind::Put,
                key: 100 + k,
                value: vec![7; 20],
            })
            .collect();
        w.append_batch(2, &ops).unwrap();
        drop(w);
        // Truncate mid-batch: only the final op's bytes are missing, but the
        // whole 5-op batch must vanish.
        let full = lsm_io::read_all(&storage, "wal").unwrap();
        let mut f = storage.create("wal").unwrap();
        f.append(&full[..full.len() - 5]).unwrap();
        drop(f);

        let entries = replay(&storage, "wal").unwrap();
        assert_eq!(entries.len(), 1, "only the intact first record survives");
        assert_eq!(entries[0].key.user_key, 1);
    }

    #[test]
    fn corrupt_tail_crc_stops_replay() {
        let storage = MemStorage::new();
        let mut w = WalWriter::create(&storage, "wal").unwrap();
        w.append(1, 1, EntryKind::Put, b"ok").unwrap();
        w.append(2, 2, EntryKind::Put, b"bad").unwrap();
        drop(w);
        let mut full = lsm_io::read_all(&storage, "wal").unwrap();
        let n = full.len();
        full[n - 1] ^= 0xff; // flip a bit in the last record's value
        let mut f = storage.create("wal").unwrap();
        f.append(&full).unwrap();
        drop(f);

        let entries = replay(&storage, "wal").unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn unknown_format_is_corruption() {
        let storage = MemStorage::new();
        let mut w = WalWriter::create(&storage, "wal").unwrap();
        w.append(1, 1, EntryKind::Put, b"x").unwrap();
        drop(w);
        let mut full = lsm_io::read_all(&storage, "wal").unwrap();
        full[8] = 99; // payload format byte
        let body_len = full.len() - 8;
        let crc = crc32(&full[8..8 + body_len]);
        full[0..4].copy_from_slice(&crc.to_le_bytes());
        let mut f = storage.create("wal").unwrap();
        f.append(&full).unwrap();
        drop(f);
        assert!(replay(&storage, "wal").is_err(), "valid CRC + bad format");
    }

    #[test]
    fn absurd_op_count_is_corruption_not_allocation() {
        // A frame whose CRC validates but whose count field claims far more
        // ops than the body holds must error cleanly (never allocate for
        // the claimed count).
        let mut body = vec![BATCH_FORMAT];
        body.extend_from_slice(&1u64.to_le_bytes()); // first_seq
        body.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd count
        body.extend_from_slice(&[0u8; 13]); // room for exactly one op header
        let mut frame = Vec::new();
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);

        let storage = MemStorage::new();
        let mut f = storage.create("wal").unwrap();
        f.append(&frame).unwrap();
        drop(f);
        assert!(replay(&storage, "wal").is_err());
    }

    #[test]
    fn cross_record_roundtrips_tag_and_entries() {
        let storage = MemStorage::new();
        let mut w = WalWriter::create(&storage, "wal").unwrap();
        let tag = CrossBatchTag {
            global_first: 100,
            global_last: 111,
            participants: vec![0, 2, 5],
        };
        let ops = vec![
            BatchOp {
                kind: EntryKind::Put,
                key: 7,
                value: b"frag".to_vec(),
            },
            BatchOp {
                kind: EntryKind::Delete,
                key: 8,
                value: vec![],
            },
        ];
        // This shard's fragment holds seqs 103..=104 of the global batch.
        w.append_batch_tagged(103, &ops, Some(&tag)).unwrap();
        w.append(9, 105, EntryKind::Put, b"plain").unwrap();
        drop(w);

        let records = replay_records(&storage, "wal").unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].cross.as_ref(), Some(&tag));
        assert_eq!(records[0].entries.len(), 2);
        assert_eq!(records[0].entries[0].key.seq, 103);
        assert_eq!(records[0].entries[1].key.kind, EntryKind::Delete);
        assert_eq!(records[1].cross, None);
        assert_eq!(records[1].entries[0].value, b"plain");
        // The flattened view applies everything.
        assert_eq!(replay(&storage, "wal").unwrap().len(), 3);
    }

    #[test]
    fn cross_record_malformed_headers_are_corruption() {
        // An intact CRC with a cross header whose participant list overruns
        // the record must error cleanly.
        let mut body = vec![CROSS_BATCH_FORMAT];
        body.extend_from_slice(&1u64.to_le_bytes()); // first_seq
        body.extend_from_slice(&1u32.to_le_bytes()); // count
        body.extend_from_slice(&1u64.to_le_bytes()); // global_first
        body.extend_from_slice(&2u64.to_le_bytes()); // global_last
        body.extend_from_slice(&u16::MAX.to_le_bytes()); // absurd participants
        let mut frame = Vec::new();
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        let storage = MemStorage::new();
        let mut f = storage.create("wal").unwrap();
        f.append(&frame).unwrap();
        drop(f);
        assert!(replay_records(&storage, "wal").is_err());
    }

    #[test]
    fn missing_log_is_empty() {
        let storage = MemStorage::new();
        assert!(replay(&storage, "nope").unwrap().is_empty());
    }

    #[test]
    fn empty_values_and_large_keys() {
        let storage = MemStorage::new();
        let mut w = WalWriter::create(&storage, "wal").unwrap();
        w.append(u64::MAX, u64::MAX >> 9, EntryKind::Put, b"")
            .unwrap();
        drop(w);
        let entries = replay(&storage, "wal").unwrap();
        assert_eq!(entries[0].key.user_key, u64::MAX);
        assert_eq!(entries[0].key.seq, u64::MAX >> 9);
    }
}
